file(REMOVE_RECURSE
  "../bench/baseline_stackpi"
  "../bench/baseline_stackpi.pdb"
  "CMakeFiles/baseline_stackpi.dir/baseline_stackpi.cpp.o"
  "CMakeFiles/baseline_stackpi.dir/baseline_stackpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_stackpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
