# Empty compiler generated dependencies file for baseline_stackpi.
# This may be replaced when dependencies are built.
