# Empty compiler generated dependencies file for ablation_partial_deployment.
# This may be replaced when dependencies are built.
