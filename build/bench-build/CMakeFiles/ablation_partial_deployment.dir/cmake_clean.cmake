file(REMOVE_RECURSE
  "../bench/ablation_partial_deployment"
  "../bench/ablation_partial_deployment.pdb"
  "CMakeFiles/ablation_partial_deployment.dir/ablation_partial_deployment.cpp.o"
  "CMakeFiles/ablation_partial_deployment.dir/ablation_partial_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partial_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
