file(REMOVE_RECURSE
  "../bench/fig8_timeplot"
  "../bench/fig8_timeplot.pdb"
  "CMakeFiles/fig8_timeplot.dir/fig8_timeplot.cpp.o"
  "CMakeFiles/fig8_timeplot.dir/fig8_timeplot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_timeplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
