# Empty dependencies file for fig8_timeplot.
# This may be replaced when dependencies are built.
