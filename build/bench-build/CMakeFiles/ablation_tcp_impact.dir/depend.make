# Empty dependencies file for ablation_tcp_impact.
# This may be replaced when dependencies are built.
