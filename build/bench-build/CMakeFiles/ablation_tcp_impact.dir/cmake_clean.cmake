file(REMOVE_RECURSE
  "../bench/ablation_tcp_impact"
  "../bench/ablation_tcp_impact.pdb"
  "CMakeFiles/ablation_tcp_impact.dir/ablation_tcp_impact.cpp.o"
  "CMakeFiles/ablation_tcp_impact.dir/ablation_tcp_impact.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcp_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
