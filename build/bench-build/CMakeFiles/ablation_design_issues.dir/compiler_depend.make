# Empty compiler generated dependencies file for ablation_design_issues.
# This may be replaced when dependencies are built.
