file(REMOVE_RECURSE
  "../bench/ablation_design_issues"
  "../bench/ablation_design_issues.pdb"
  "CMakeFiles/ablation_design_issues.dir/ablation_design_issues.cpp.o"
  "CMakeFiles/ablation_design_issues.dir/ablation_design_issues.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_design_issues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
