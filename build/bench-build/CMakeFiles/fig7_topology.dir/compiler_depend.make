# Empty compiler generated dependencies file for fig7_topology.
# This may be replaced when dependencies are built.
