file(REMOVE_RECURSE
  "../bench/fig7_topology"
  "../bench/fig7_topology.pdb"
  "CMakeFiles/fig7_topology.dir/fig7_topology.cpp.o"
  "CMakeFiles/fig7_topology.dir/fig7_topology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
