# Empty compiler generated dependencies file for baseline_ppm.
# This may be replaced when dependencies are built.
