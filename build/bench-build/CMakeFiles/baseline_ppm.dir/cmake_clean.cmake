file(REMOVE_RECURSE
  "../bench/baseline_ppm"
  "../bench/baseline_ppm.pdb"
  "CMakeFiles/baseline_ppm.dir/baseline_ppm.cpp.o"
  "CMakeFiles/baseline_ppm.dir/baseline_ppm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
