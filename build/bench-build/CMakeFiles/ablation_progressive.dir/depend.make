# Empty dependencies file for ablation_progressive.
# This may be replaced when dependencies are built.
