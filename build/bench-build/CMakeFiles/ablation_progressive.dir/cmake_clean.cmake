file(REMOVE_RECURSE
  "../bench/ablation_progressive"
  "../bench/ablation_progressive.pdb"
  "CMakeFiles/ablation_progressive.dir/ablation_progressive.cpp.o"
  "CMakeFiles/ablation_progressive.dir/ablation_progressive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
