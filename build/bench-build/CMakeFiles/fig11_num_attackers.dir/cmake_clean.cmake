file(REMOVE_RECURSE
  "../bench/fig11_num_attackers"
  "../bench/fig11_num_attackers.pdb"
  "CMakeFiles/fig11_num_attackers.dir/fig11_num_attackers.cpp.o"
  "CMakeFiles/fig11_num_attackers.dir/fig11_num_attackers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_num_attackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
