# Empty compiler generated dependencies file for fig11_num_attackers.
# This may be replaced when dependencies are built.
