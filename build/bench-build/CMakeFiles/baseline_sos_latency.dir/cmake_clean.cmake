file(REMOVE_RECURSE
  "../bench/baseline_sos_latency"
  "../bench/baseline_sos_latency.pdb"
  "CMakeFiles/baseline_sos_latency.dir/baseline_sos_latency.cpp.o"
  "CMakeFiles/baseline_sos_latency.dir/baseline_sos_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sos_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
