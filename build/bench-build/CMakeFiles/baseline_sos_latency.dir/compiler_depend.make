# Empty compiler generated dependencies file for baseline_sos_latency.
# This may be replaced when dependencies are built.
