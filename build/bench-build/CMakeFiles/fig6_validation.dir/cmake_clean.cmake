file(REMOVE_RECURSE
  "../bench/fig6_validation"
  "../bench/fig6_validation.pdb"
  "CMakeFiles/fig6_validation.dir/fig6_validation.cpp.o"
  "CMakeFiles/fig6_validation.dir/fig6_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
