file(REMOVE_RECURSE
  "../bench/fig9_params"
  "../bench/fig9_params.pdb"
  "CMakeFiles/fig9_params.dir/fig9_params.cpp.o"
  "CMakeFiles/fig9_params.dir/fig9_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
