# Empty compiler generated dependencies file for fig9_params.
# This may be replaced when dependencies are built.
