# Empty dependencies file for baseline_ingress_filtering.
# This may be replaced when dependencies are built.
