file(REMOVE_RECURSE
  "../bench/baseline_ingress_filtering"
  "../bench/baseline_ingress_filtering.pdb"
  "CMakeFiles/baseline_ingress_filtering.dir/baseline_ingress_filtering.cpp.o"
  "CMakeFiles/baseline_ingress_filtering.dir/baseline_ingress_filtering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_ingress_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
