file(REMOVE_RECURSE
  "../bench/fig5_analysis"
  "../bench/fig5_analysis.pdb"
  "CMakeFiles/fig5_analysis.dir/fig5_analysis.cpp.o"
  "CMakeFiles/fig5_analysis.dir/fig5_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
