# Empty compiler generated dependencies file for fig12_attack_rate.
# This may be replaced when dependencies are built.
