file(REMOVE_RECURSE
  "../bench/fig12_attack_rate"
  "../bench/fig12_attack_rate.pdb"
  "CMakeFiles/fig12_attack_rate.dir/fig12_attack_rate.cpp.o"
  "CMakeFiles/fig12_attack_rate.dir/fig12_attack_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_attack_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
