# Empty dependencies file for baseline_spie.
# This may be replaced when dependencies are built.
