file(REMOVE_RECURSE
  "../bench/baseline_spie"
  "../bench/baseline_spie.pdb"
  "CMakeFiles/baseline_spie.dir/baseline_spie.cpp.o"
  "CMakeFiles/baseline_spie.dir/baseline_spie.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_spie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
