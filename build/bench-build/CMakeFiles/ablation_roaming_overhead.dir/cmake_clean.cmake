file(REMOVE_RECURSE
  "../bench/ablation_roaming_overhead"
  "../bench/ablation_roaming_overhead.pdb"
  "CMakeFiles/ablation_roaming_overhead.dir/ablation_roaming_overhead.cpp.o"
  "CMakeFiles/ablation_roaming_overhead.dir/ablation_roaming_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_roaming_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
