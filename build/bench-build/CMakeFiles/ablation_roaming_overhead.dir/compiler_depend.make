# Empty compiler generated dependencies file for ablation_roaming_overhead.
# This may be replaced when dependencies are built.
