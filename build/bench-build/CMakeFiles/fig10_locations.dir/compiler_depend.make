# Empty compiler generated dependencies file for fig10_locations.
# This may be replaced when dependencies are built.
