file(REMOVE_RECURSE
  "../bench/fig10_locations"
  "../bench/fig10_locations.pdb"
  "CMakeFiles/fig10_locations.dir/fig10_locations.cpp.o"
  "CMakeFiles/fig10_locations.dir/fig10_locations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
