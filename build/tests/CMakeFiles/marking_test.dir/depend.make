# Empty dependencies file for marking_test.
# This may be replaced when dependencies are built.
