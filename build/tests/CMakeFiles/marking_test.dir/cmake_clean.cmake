file(REMOVE_RECURSE
  "CMakeFiles/marking_test.dir/marking/ingress_filter_test.cpp.o"
  "CMakeFiles/marking_test.dir/marking/ingress_filter_test.cpp.o.d"
  "CMakeFiles/marking_test.dir/marking/ppm_collector_test.cpp.o"
  "CMakeFiles/marking_test.dir/marking/ppm_collector_test.cpp.o.d"
  "CMakeFiles/marking_test.dir/marking/ppm_test.cpp.o"
  "CMakeFiles/marking_test.dir/marking/ppm_test.cpp.o.d"
  "CMakeFiles/marking_test.dir/marking/spie_test.cpp.o"
  "CMakeFiles/marking_test.dir/marking/spie_test.cpp.o.d"
  "CMakeFiles/marking_test.dir/marking/stackpi_test.cpp.o"
  "CMakeFiles/marking_test.dir/marking/stackpi_test.cpp.o.d"
  "marking_test"
  "marking_test.pdb"
  "marking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
