
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/control_plane_test.cpp" "tests/CMakeFiles/net_test.dir/net/control_plane_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/control_plane_test.cpp.o.d"
  "/root/repo/tests/net/link_test.cpp" "tests/CMakeFiles/net_test.dir/net/link_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/link_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/net_test.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/network_test.cpp.o.d"
  "/root/repo/tests/net/queue_test.cpp" "tests/CMakeFiles/net_test.dir/net/queue_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/queue_test.cpp.o.d"
  "/root/repo/tests/net/router_test.cpp" "tests/CMakeFiles/net_test.dir/net/router_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/router_test.cpp.o.d"
  "/root/repo/tests/net/switch_test.cpp" "tests/CMakeFiles/net_test.dir/net/switch_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net/switch_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/hbp_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pushback/CMakeFiles/hbp_pushback.dir/DependInfo.cmake"
  "/root/repo/build/src/honeypot/CMakeFiles/hbp_honeypot.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hbp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/hbp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/hbp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/marking/CMakeFiles/hbp_marking.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hbp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hbp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
