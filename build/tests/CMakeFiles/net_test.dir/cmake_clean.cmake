file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net/control_plane_test.cpp.o"
  "CMakeFiles/net_test.dir/net/control_plane_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/link_test.cpp.o"
  "CMakeFiles/net_test.dir/net/link_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/network_test.cpp.o"
  "CMakeFiles/net_test.dir/net/network_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/queue_test.cpp.o"
  "CMakeFiles/net_test.dir/net/queue_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/router_test.cpp.o"
  "CMakeFiles/net_test.dir/net/router_test.cpp.o.d"
  "CMakeFiles/net_test.dir/net/switch_test.cpp.o"
  "CMakeFiles/net_test.dir/net/switch_test.cpp.o.d"
  "net_test"
  "net_test.pdb"
  "net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
