file(REMOVE_RECURSE
  "CMakeFiles/pushback_test.dir/pushback/agent_test.cpp.o"
  "CMakeFiles/pushback_test.dir/pushback/agent_test.cpp.o.d"
  "CMakeFiles/pushback_test.dir/pushback/maxmin_test.cpp.o"
  "CMakeFiles/pushback_test.dir/pushback/maxmin_test.cpp.o.d"
  "CMakeFiles/pushback_test.dir/pushback/token_bucket_test.cpp.o"
  "CMakeFiles/pushback_test.dir/pushback/token_bucket_test.cpp.o.d"
  "pushback_test"
  "pushback_test.pdb"
  "pushback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
