# Empty dependencies file for pushback_test.
# This may be replaced when dependencies are built.
