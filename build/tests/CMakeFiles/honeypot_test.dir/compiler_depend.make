# Empty compiler generated dependencies file for honeypot_test.
# This may be replaced when dependencies are built.
