file(REMOVE_RECURSE
  "CMakeFiles/honeypot_test.dir/honeypot/hash_chain_test.cpp.o"
  "CMakeFiles/honeypot_test.dir/honeypot/hash_chain_test.cpp.o.d"
  "CMakeFiles/honeypot_test.dir/honeypot/pool_client_test.cpp.o"
  "CMakeFiles/honeypot_test.dir/honeypot/pool_client_test.cpp.o.d"
  "CMakeFiles/honeypot_test.dir/honeypot/schedule_test.cpp.o"
  "CMakeFiles/honeypot_test.dir/honeypot/schedule_test.cpp.o.d"
  "CMakeFiles/honeypot_test.dir/honeypot/subscription_blacklist_test.cpp.o"
  "CMakeFiles/honeypot_test.dir/honeypot/subscription_blacklist_test.cpp.o.d"
  "CMakeFiles/honeypot_test.dir/honeypot/tcp_client_test.cpp.o"
  "CMakeFiles/honeypot_test.dir/honeypot/tcp_client_test.cpp.o.d"
  "CMakeFiles/honeypot_test.dir/honeypot/window_sweep_test.cpp.o"
  "CMakeFiles/honeypot_test.dir/honeypot/window_sweep_test.cpp.o.d"
  "honeypot_test"
  "honeypot_test.pdb"
  "honeypot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/honeypot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
