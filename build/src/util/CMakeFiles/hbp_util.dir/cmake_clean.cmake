file(REMOVE_RECURSE
  "CMakeFiles/hbp_util.dir/bloom.cpp.o"
  "CMakeFiles/hbp_util.dir/bloom.cpp.o.d"
  "CMakeFiles/hbp_util.dir/flags.cpp.o"
  "CMakeFiles/hbp_util.dir/flags.cpp.o.d"
  "CMakeFiles/hbp_util.dir/rng.cpp.o"
  "CMakeFiles/hbp_util.dir/rng.cpp.o.d"
  "CMakeFiles/hbp_util.dir/sha256.cpp.o"
  "CMakeFiles/hbp_util.dir/sha256.cpp.o.d"
  "CMakeFiles/hbp_util.dir/stats.cpp.o"
  "CMakeFiles/hbp_util.dir/stats.cpp.o.d"
  "CMakeFiles/hbp_util.dir/table.cpp.o"
  "CMakeFiles/hbp_util.dir/table.cpp.o.d"
  "CMakeFiles/hbp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hbp_util.dir/thread_pool.cpp.o.d"
  "libhbp_util.a"
  "libhbp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
