# Empty dependencies file for hbp_util.
# This may be replaced when dependencies are built.
