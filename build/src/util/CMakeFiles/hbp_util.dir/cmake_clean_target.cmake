file(REMOVE_RECURSE
  "libhbp_util.a"
)
