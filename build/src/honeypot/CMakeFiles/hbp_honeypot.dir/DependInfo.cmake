
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/honeypot/blacklist.cpp" "src/honeypot/CMakeFiles/hbp_honeypot.dir/blacklist.cpp.o" "gcc" "src/honeypot/CMakeFiles/hbp_honeypot.dir/blacklist.cpp.o.d"
  "/root/repo/src/honeypot/checkpoint.cpp" "src/honeypot/CMakeFiles/hbp_honeypot.dir/checkpoint.cpp.o" "gcc" "src/honeypot/CMakeFiles/hbp_honeypot.dir/checkpoint.cpp.o.d"
  "/root/repo/src/honeypot/client.cpp" "src/honeypot/CMakeFiles/hbp_honeypot.dir/client.cpp.o" "gcc" "src/honeypot/CMakeFiles/hbp_honeypot.dir/client.cpp.o.d"
  "/root/repo/src/honeypot/hash_chain.cpp" "src/honeypot/CMakeFiles/hbp_honeypot.dir/hash_chain.cpp.o" "gcc" "src/honeypot/CMakeFiles/hbp_honeypot.dir/hash_chain.cpp.o.d"
  "/root/repo/src/honeypot/schedule.cpp" "src/honeypot/CMakeFiles/hbp_honeypot.dir/schedule.cpp.o" "gcc" "src/honeypot/CMakeFiles/hbp_honeypot.dir/schedule.cpp.o.d"
  "/root/repo/src/honeypot/server_pool.cpp" "src/honeypot/CMakeFiles/hbp_honeypot.dir/server_pool.cpp.o" "gcc" "src/honeypot/CMakeFiles/hbp_honeypot.dir/server_pool.cpp.o.d"
  "/root/repo/src/honeypot/subscription.cpp" "src/honeypot/CMakeFiles/hbp_honeypot.dir/subscription.cpp.o" "gcc" "src/honeypot/CMakeFiles/hbp_honeypot.dir/subscription.cpp.o.d"
  "/root/repo/src/honeypot/tcp_client.cpp" "src/honeypot/CMakeFiles/hbp_honeypot.dir/tcp_client.cpp.o" "gcc" "src/honeypot/CMakeFiles/hbp_honeypot.dir/tcp_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hbp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/hbp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/hbp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
