file(REMOVE_RECURSE
  "libhbp_honeypot.a"
)
