file(REMOVE_RECURSE
  "CMakeFiles/hbp_honeypot.dir/blacklist.cpp.o"
  "CMakeFiles/hbp_honeypot.dir/blacklist.cpp.o.d"
  "CMakeFiles/hbp_honeypot.dir/checkpoint.cpp.o"
  "CMakeFiles/hbp_honeypot.dir/checkpoint.cpp.o.d"
  "CMakeFiles/hbp_honeypot.dir/client.cpp.o"
  "CMakeFiles/hbp_honeypot.dir/client.cpp.o.d"
  "CMakeFiles/hbp_honeypot.dir/hash_chain.cpp.o"
  "CMakeFiles/hbp_honeypot.dir/hash_chain.cpp.o.d"
  "CMakeFiles/hbp_honeypot.dir/schedule.cpp.o"
  "CMakeFiles/hbp_honeypot.dir/schedule.cpp.o.d"
  "CMakeFiles/hbp_honeypot.dir/server_pool.cpp.o"
  "CMakeFiles/hbp_honeypot.dir/server_pool.cpp.o.d"
  "CMakeFiles/hbp_honeypot.dir/subscription.cpp.o"
  "CMakeFiles/hbp_honeypot.dir/subscription.cpp.o.d"
  "CMakeFiles/hbp_honeypot.dir/tcp_client.cpp.o"
  "CMakeFiles/hbp_honeypot.dir/tcp_client.cpp.o.d"
  "libhbp_honeypot.a"
  "libhbp_honeypot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_honeypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
