# Empty dependencies file for hbp_honeypot.
# This may be replaced when dependencies are built.
