file(REMOVE_RECURSE
  "CMakeFiles/hbp_topo.dir/as_map.cpp.o"
  "CMakeFiles/hbp_topo.dir/as_map.cpp.o.d"
  "CMakeFiles/hbp_topo.dir/distributions.cpp.o"
  "CMakeFiles/hbp_topo.dir/distributions.cpp.o.d"
  "CMakeFiles/hbp_topo.dir/string_topo.cpp.o"
  "CMakeFiles/hbp_topo.dir/string_topo.cpp.o.d"
  "CMakeFiles/hbp_topo.dir/tree.cpp.o"
  "CMakeFiles/hbp_topo.dir/tree.cpp.o.d"
  "libhbp_topo.a"
  "libhbp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
