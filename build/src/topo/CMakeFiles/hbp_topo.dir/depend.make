# Empty dependencies file for hbp_topo.
# This may be replaced when dependencies are built.
