
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/as_map.cpp" "src/topo/CMakeFiles/hbp_topo.dir/as_map.cpp.o" "gcc" "src/topo/CMakeFiles/hbp_topo.dir/as_map.cpp.o.d"
  "/root/repo/src/topo/distributions.cpp" "src/topo/CMakeFiles/hbp_topo.dir/distributions.cpp.o" "gcc" "src/topo/CMakeFiles/hbp_topo.dir/distributions.cpp.o.d"
  "/root/repo/src/topo/string_topo.cpp" "src/topo/CMakeFiles/hbp_topo.dir/string_topo.cpp.o" "gcc" "src/topo/CMakeFiles/hbp_topo.dir/string_topo.cpp.o.d"
  "/root/repo/src/topo/tree.cpp" "src/topo/CMakeFiles/hbp_topo.dir/tree.cpp.o" "gcc" "src/topo/CMakeFiles/hbp_topo.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hbp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
