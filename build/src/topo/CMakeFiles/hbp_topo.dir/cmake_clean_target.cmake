file(REMOVE_RECURSE
  "libhbp_topo.a"
)
