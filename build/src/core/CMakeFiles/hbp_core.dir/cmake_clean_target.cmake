file(REMOVE_RECURSE
  "libhbp_core.a"
)
