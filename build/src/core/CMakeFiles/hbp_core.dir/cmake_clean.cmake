file(REMOVE_RECURSE
  "CMakeFiles/hbp_core.dir/defense.cpp.o"
  "CMakeFiles/hbp_core.dir/defense.cpp.o.d"
  "CMakeFiles/hbp_core.dir/hsm.cpp.o"
  "CMakeFiles/hbp_core.dir/hsm.cpp.o.d"
  "CMakeFiles/hbp_core.dir/messages.cpp.o"
  "CMakeFiles/hbp_core.dir/messages.cpp.o.d"
  "CMakeFiles/hbp_core.dir/progressive.cpp.o"
  "CMakeFiles/hbp_core.dir/progressive.cpp.o.d"
  "libhbp_core.a"
  "libhbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
