# Empty dependencies file for hbp_core.
# This may be replaced when dependencies are built.
