
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/defense.cpp" "src/core/CMakeFiles/hbp_core.dir/defense.cpp.o" "gcc" "src/core/CMakeFiles/hbp_core.dir/defense.cpp.o.d"
  "/root/repo/src/core/hsm.cpp" "src/core/CMakeFiles/hbp_core.dir/hsm.cpp.o" "gcc" "src/core/CMakeFiles/hbp_core.dir/hsm.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/hbp_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/hbp_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/progressive.cpp" "src/core/CMakeFiles/hbp_core.dir/progressive.cpp.o" "gcc" "src/core/CMakeFiles/hbp_core.dir/progressive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/honeypot/CMakeFiles/hbp_honeypot.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/hbp_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hbp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/hbp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/hbp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
