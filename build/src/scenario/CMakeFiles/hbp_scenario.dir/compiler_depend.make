# Empty compiler generated dependencies file for hbp_scenario.
# This may be replaced when dependencies are built.
