file(REMOVE_RECURSE
  "libhbp_scenario.a"
)
