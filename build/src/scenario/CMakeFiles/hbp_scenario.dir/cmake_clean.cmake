file(REMOVE_RECURSE
  "CMakeFiles/hbp_scenario.dir/metrics.cpp.o"
  "CMakeFiles/hbp_scenario.dir/metrics.cpp.o.d"
  "CMakeFiles/hbp_scenario.dir/string_experiment.cpp.o"
  "CMakeFiles/hbp_scenario.dir/string_experiment.cpp.o.d"
  "CMakeFiles/hbp_scenario.dir/tree_experiment.cpp.o"
  "CMakeFiles/hbp_scenario.dir/tree_experiment.cpp.o.d"
  "libhbp_scenario.a"
  "libhbp_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
