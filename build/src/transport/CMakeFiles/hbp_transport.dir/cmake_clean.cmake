file(REMOVE_RECURSE
  "CMakeFiles/hbp_transport.dir/tcp.cpp.o"
  "CMakeFiles/hbp_transport.dir/tcp.cpp.o.d"
  "libhbp_transport.a"
  "libhbp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
