file(REMOVE_RECURSE
  "libhbp_transport.a"
)
