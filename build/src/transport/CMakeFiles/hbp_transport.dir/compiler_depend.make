# Empty compiler generated dependencies file for hbp_transport.
# This may be replaced when dependencies are built.
