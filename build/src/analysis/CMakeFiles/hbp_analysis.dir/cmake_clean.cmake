file(REMOVE_RECURSE
  "CMakeFiles/hbp_analysis.dir/capture_time.cpp.o"
  "CMakeFiles/hbp_analysis.dir/capture_time.cpp.o.d"
  "libhbp_analysis.a"
  "libhbp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
