# Empty dependencies file for hbp_analysis.
# This may be replaced when dependencies are built.
