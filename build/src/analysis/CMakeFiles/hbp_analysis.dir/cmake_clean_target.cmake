file(REMOVE_RECURSE
  "libhbp_analysis.a"
)
