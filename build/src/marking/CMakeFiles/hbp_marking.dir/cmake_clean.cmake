file(REMOVE_RECURSE
  "CMakeFiles/hbp_marking.dir/ingress_filter.cpp.o"
  "CMakeFiles/hbp_marking.dir/ingress_filter.cpp.o.d"
  "CMakeFiles/hbp_marking.dir/ppm.cpp.o"
  "CMakeFiles/hbp_marking.dir/ppm.cpp.o.d"
  "CMakeFiles/hbp_marking.dir/spie.cpp.o"
  "CMakeFiles/hbp_marking.dir/spie.cpp.o.d"
  "CMakeFiles/hbp_marking.dir/stackpi.cpp.o"
  "CMakeFiles/hbp_marking.dir/stackpi.cpp.o.d"
  "libhbp_marking.a"
  "libhbp_marking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
