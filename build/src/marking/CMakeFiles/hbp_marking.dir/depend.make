# Empty dependencies file for hbp_marking.
# This may be replaced when dependencies are built.
