
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marking/ingress_filter.cpp" "src/marking/CMakeFiles/hbp_marking.dir/ingress_filter.cpp.o" "gcc" "src/marking/CMakeFiles/hbp_marking.dir/ingress_filter.cpp.o.d"
  "/root/repo/src/marking/ppm.cpp" "src/marking/CMakeFiles/hbp_marking.dir/ppm.cpp.o" "gcc" "src/marking/CMakeFiles/hbp_marking.dir/ppm.cpp.o.d"
  "/root/repo/src/marking/spie.cpp" "src/marking/CMakeFiles/hbp_marking.dir/spie.cpp.o" "gcc" "src/marking/CMakeFiles/hbp_marking.dir/spie.cpp.o.d"
  "/root/repo/src/marking/stackpi.cpp" "src/marking/CMakeFiles/hbp_marking.dir/stackpi.cpp.o" "gcc" "src/marking/CMakeFiles/hbp_marking.dir/stackpi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hbp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
