file(REMOVE_RECURSE
  "libhbp_marking.a"
)
