# CMake generated Testfile for 
# Source directory: /root/repo/src/marking
# Build directory: /root/repo/build/src/marking
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
