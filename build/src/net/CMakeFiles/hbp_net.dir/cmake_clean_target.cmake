file(REMOVE_RECURSE
  "libhbp_net.a"
)
