file(REMOVE_RECURSE
  "CMakeFiles/hbp_net.dir/control_plane.cpp.o"
  "CMakeFiles/hbp_net.dir/control_plane.cpp.o.d"
  "CMakeFiles/hbp_net.dir/host.cpp.o"
  "CMakeFiles/hbp_net.dir/host.cpp.o.d"
  "CMakeFiles/hbp_net.dir/link.cpp.o"
  "CMakeFiles/hbp_net.dir/link.cpp.o.d"
  "CMakeFiles/hbp_net.dir/network.cpp.o"
  "CMakeFiles/hbp_net.dir/network.cpp.o.d"
  "CMakeFiles/hbp_net.dir/queue.cpp.o"
  "CMakeFiles/hbp_net.dir/queue.cpp.o.d"
  "CMakeFiles/hbp_net.dir/router.cpp.o"
  "CMakeFiles/hbp_net.dir/router.cpp.o.d"
  "CMakeFiles/hbp_net.dir/switch_node.cpp.o"
  "CMakeFiles/hbp_net.dir/switch_node.cpp.o.d"
  "libhbp_net.a"
  "libhbp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
