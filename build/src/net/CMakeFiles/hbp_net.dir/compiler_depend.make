# Empty compiler generated dependencies file for hbp_net.
# This may be replaced when dependencies are built.
