
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/control_plane.cpp" "src/net/CMakeFiles/hbp_net.dir/control_plane.cpp.o" "gcc" "src/net/CMakeFiles/hbp_net.dir/control_plane.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/hbp_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/hbp_net.dir/host.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/hbp_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/hbp_net.dir/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/hbp_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/hbp_net.dir/network.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/net/CMakeFiles/hbp_net.dir/queue.cpp.o" "gcc" "src/net/CMakeFiles/hbp_net.dir/queue.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/net/CMakeFiles/hbp_net.dir/router.cpp.o" "gcc" "src/net/CMakeFiles/hbp_net.dir/router.cpp.o.d"
  "/root/repo/src/net/switch_node.cpp" "src/net/CMakeFiles/hbp_net.dir/switch_node.cpp.o" "gcc" "src/net/CMakeFiles/hbp_net.dir/switch_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
