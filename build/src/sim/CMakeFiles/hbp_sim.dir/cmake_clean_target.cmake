file(REMOVE_RECURSE
  "libhbp_sim.a"
)
