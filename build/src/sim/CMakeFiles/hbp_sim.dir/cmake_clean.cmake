file(REMOVE_RECURSE
  "CMakeFiles/hbp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hbp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hbp_sim.dir/simulator.cpp.o"
  "CMakeFiles/hbp_sim.dir/simulator.cpp.o.d"
  "libhbp_sim.a"
  "libhbp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
