# Empty compiler generated dependencies file for hbp_sim.
# This may be replaced when dependencies are built.
