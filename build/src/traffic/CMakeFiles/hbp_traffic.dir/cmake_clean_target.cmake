file(REMOVE_RECURSE
  "libhbp_traffic.a"
)
