file(REMOVE_RECURSE
  "CMakeFiles/hbp_traffic.dir/cbr.cpp.o"
  "CMakeFiles/hbp_traffic.dir/cbr.cpp.o.d"
  "CMakeFiles/hbp_traffic.dir/follower.cpp.o"
  "CMakeFiles/hbp_traffic.dir/follower.cpp.o.d"
  "CMakeFiles/hbp_traffic.dir/onoff.cpp.o"
  "CMakeFiles/hbp_traffic.dir/onoff.cpp.o.d"
  "CMakeFiles/hbp_traffic.dir/probe.cpp.o"
  "CMakeFiles/hbp_traffic.dir/probe.cpp.o.d"
  "CMakeFiles/hbp_traffic.dir/spoof.cpp.o"
  "CMakeFiles/hbp_traffic.dir/spoof.cpp.o.d"
  "libhbp_traffic.a"
  "libhbp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
