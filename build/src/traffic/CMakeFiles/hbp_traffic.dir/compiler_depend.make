# Empty compiler generated dependencies file for hbp_traffic.
# This may be replaced when dependencies are built.
