
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/cbr.cpp" "src/traffic/CMakeFiles/hbp_traffic.dir/cbr.cpp.o" "gcc" "src/traffic/CMakeFiles/hbp_traffic.dir/cbr.cpp.o.d"
  "/root/repo/src/traffic/follower.cpp" "src/traffic/CMakeFiles/hbp_traffic.dir/follower.cpp.o" "gcc" "src/traffic/CMakeFiles/hbp_traffic.dir/follower.cpp.o.d"
  "/root/repo/src/traffic/onoff.cpp" "src/traffic/CMakeFiles/hbp_traffic.dir/onoff.cpp.o" "gcc" "src/traffic/CMakeFiles/hbp_traffic.dir/onoff.cpp.o.d"
  "/root/repo/src/traffic/probe.cpp" "src/traffic/CMakeFiles/hbp_traffic.dir/probe.cpp.o" "gcc" "src/traffic/CMakeFiles/hbp_traffic.dir/probe.cpp.o.d"
  "/root/repo/src/traffic/spoof.cpp" "src/traffic/CMakeFiles/hbp_traffic.dir/spoof.cpp.o" "gcc" "src/traffic/CMakeFiles/hbp_traffic.dir/spoof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hbp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
