# Empty dependencies file for hbp_pushback.
# This may be replaced when dependencies are built.
