file(REMOVE_RECURSE
  "libhbp_pushback.a"
)
