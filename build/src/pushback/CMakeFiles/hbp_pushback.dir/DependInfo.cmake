
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pushback/agent.cpp" "src/pushback/CMakeFiles/hbp_pushback.dir/agent.cpp.o" "gcc" "src/pushback/CMakeFiles/hbp_pushback.dir/agent.cpp.o.d"
  "/root/repo/src/pushback/maxmin.cpp" "src/pushback/CMakeFiles/hbp_pushback.dir/maxmin.cpp.o" "gcc" "src/pushback/CMakeFiles/hbp_pushback.dir/maxmin.cpp.o.d"
  "/root/repo/src/pushback/token_bucket.cpp" "src/pushback/CMakeFiles/hbp_pushback.dir/token_bucket.cpp.o" "gcc" "src/pushback/CMakeFiles/hbp_pushback.dir/token_bucket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hbp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
