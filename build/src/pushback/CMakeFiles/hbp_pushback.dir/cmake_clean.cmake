file(REMOVE_RECURSE
  "CMakeFiles/hbp_pushback.dir/agent.cpp.o"
  "CMakeFiles/hbp_pushback.dir/agent.cpp.o.d"
  "CMakeFiles/hbp_pushback.dir/maxmin.cpp.o"
  "CMakeFiles/hbp_pushback.dir/maxmin.cpp.o.d"
  "CMakeFiles/hbp_pushback.dir/token_bucket.cpp.o"
  "CMakeFiles/hbp_pushback.dir/token_bucket.cpp.o.d"
  "libhbp_pushback.a"
  "libhbp_pushback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbp_pushback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
