# Empty dependencies file for tcp_download.
# This may be replaced when dependencies are built.
