file(REMOVE_RECURSE
  "CMakeFiles/tcp_download.dir/tcp_download.cpp.o"
  "CMakeFiles/tcp_download.dir/tcp_download.cpp.o.d"
  "tcp_download"
  "tcp_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
