# Empty compiler generated dependencies file for partial_deployment.
# This may be replaced when dependencies are built.
