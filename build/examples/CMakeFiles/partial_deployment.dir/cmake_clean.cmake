file(REMOVE_RECURSE
  "CMakeFiles/partial_deployment.dir/partial_deployment.cpp.o"
  "CMakeFiles/partial_deployment.dir/partial_deployment.cpp.o.d"
  "partial_deployment"
  "partial_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
