file(REMOVE_RECURSE
  "CMakeFiles/low_rate_onoff.dir/low_rate_onoff.cpp.o"
  "CMakeFiles/low_rate_onoff.dir/low_rate_onoff.cpp.o.d"
  "low_rate_onoff"
  "low_rate_onoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_rate_onoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
