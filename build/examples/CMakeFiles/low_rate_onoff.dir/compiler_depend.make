# Empty compiler generated dependencies file for low_rate_onoff.
# This may be replaced when dependencies are built.
