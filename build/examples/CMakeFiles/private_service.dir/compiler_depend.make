# Empty compiler generated dependencies file for private_service.
# This may be replaced when dependencies are built.
