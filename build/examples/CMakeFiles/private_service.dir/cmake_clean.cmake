file(REMOVE_RECURSE
  "CMakeFiles/private_service.dir/private_service.cpp.o"
  "CMakeFiles/private_service.dir/private_service.cpp.o.d"
  "private_service"
  "private_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
