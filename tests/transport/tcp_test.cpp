#include "transport/tcp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/router.hpp"

namespace hbp::transport {
namespace {

// A filter that drops every Nth matching packet — loss injection.
class PeriodicDropper : public net::PacketFilter {
 public:
  PeriodicDropper(sim::PacketType type, int period)
      : type_(type), period_(period) {}
  net::FilterAction on_packet(const sim::Packet& p, int) override {
    if (p.type != type_) return net::FilterAction::kPass;
    if (++count_ % period_ == 0) {
      ++dropped_;
      return net::FilterAction::kDrop;
    }
    return net::FilterAction::kPass;
  }
  int dropped() const { return dropped_; }

 private:
  sim::PacketType type_;
  int period_;
  int count_ = 0;
  int dropped_ = 0;
};

struct TcpFixture : public ::testing::Test {
  void SetUp() override { build(8e6, sim::SimTime::millis(5), 64'000); }

  void build(double bps, sim::SimTime delay, std::int64_t queue_bytes) {
    simulator = std::make_unique<sim::Simulator>();
    network = std::make_unique<net::Network>(*simulator);
    router = &network->add_node<net::Router>("r");
    client = &network->add_node<net::Host>("client");
    server = &network->add_node<net::Host>("server");
    net::LinkParams link;
    link.capacity_bps = bps;
    link.delay = delay;
    link.queue_bytes = queue_bytes;
    network->connect(client->id(), router->id(), link);
    network->connect(router->id(), server->id(), link);
    client->set_address(network->assign_address(client->id()));
    server->set_address(network->assign_address(server->id()));
    network->compute_routes();

    sender = std::make_unique<TcpSender>(*simulator, *client);
    receiver = std::make_unique<TcpReceiver>(*simulator, *server);
    receiver->attach();
  }

  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<net::Network> network;
  net::Router* router = nullptr;
  net::Host* client = nullptr;
  net::Host* server = nullptr;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
};

TEST_F(TcpFixture, HandshakeEstablishes) {
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(1));
  EXPECT_TRUE(sender->established());
  EXPECT_EQ(sender->handshakes(), 1u);
}

TEST_F(TcpFixture, BulkTransferSaturatesLink) {
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(20));
  // 8 Mb/s for ~20 s = ~20 MB; allow slow-start ramp and header overhead.
  const double goodput_bps =
      static_cast<double>(receiver->total_bytes_delivered()) * 8.0 / 20.0;
  EXPECT_GT(goodput_bps, 0.85 * 8e6);
  // ACKs still in flight: acked <= delivered, within one window.
  EXPECT_LE(sender->bytes_acked(), receiver->total_bytes_delivered());
  EXPECT_GT(sender->bytes_acked(), receiver->total_bytes_delivered() - 200'000);
}

TEST_F(TcpFixture, SlowStartGrowsExponentially) {
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::millis(120));  // a few RTTs (RTT=20ms)
  EXPECT_GT(sender->cwnd_segments(), 8.0);
}

TEST_F(TcpFixture, RecoversFromPeriodicDataLoss) {
  PeriodicDropper dropper(sim::PacketType::kTcpData, 50);
  router->add_filter(&dropper);
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(30));
  router->remove_filter(&dropper);
  EXPECT_GT(dropper.dropped(), 5);
  EXPECT_GT(sender->retransmits(), 0u);
  // Stream stays contiguous despite losses.
  EXPECT_LE(sender->bytes_acked(), receiver->total_bytes_delivered());
  EXPECT_GT(receiver->total_bytes_delivered(), 1'000'000);
}

TEST_F(TcpFixture, RecoversFromAckPathLoss) {
  // The paper's quoted damage mode: ACKs dropped on the reverse path.
  PeriodicDropper dropper(sim::PacketType::kTcpAck, 10);
  router->add_filter(&dropper);
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(30));
  router->remove_filter(&dropper);
  // Cumulative ACKs absorb individual losses; transfer keeps progressing.
  EXPECT_GT(receiver->total_bytes_delivered(), 1'000'000);
}

TEST_F(TcpFixture, HeavyAckLossDegradesThroughput) {
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(10));
  const auto clean = receiver->total_bytes_delivered();

  build(8e6, sim::SimTime::millis(5), 64'000);  // fresh network
  PeriodicDropper dropper(sim::PacketType::kTcpAck, 2);  // 50% ACK loss
  router->add_filter(&dropper);
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(10));
  router->remove_filter(&dropper);
  EXPECT_LT(receiver->total_bytes_delivered(), clean);
}

TEST_F(TcpFixture, RtoRecoversFromBlackout) {
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(2));
  const auto before = receiver->total_bytes_delivered();

  // Total blackout for 3 seconds.
  PeriodicDropper dropper(sim::PacketType::kTcpData, 1);
  PeriodicDropper ack_dropper(sim::PacketType::kTcpAck, 1);
  router->add_filter(&dropper);
  router->add_filter(&ack_dropper);
  simulator->run_until(sim::SimTime::seconds(5));
  router->remove_filter(&dropper);
  router->remove_filter(&ack_dropper);

  simulator->run_until(sim::SimTime::seconds(10));
  EXPECT_GT(sender->timeouts(), 0u);
  EXPECT_GT(receiver->total_bytes_delivered(), before);
  EXPECT_LE(sender->bytes_acked(), receiver->total_bytes_delivered());
}

TEST_F(TcpFixture, MigrationRestartsSlowStartButKeepsProgress) {
  // Second server to migrate to.
  auto& server2 = network->add_node<net::Host>("server2");
  net::LinkParams link;
  link.capacity_bps = 8e6;
  link.delay = sim::SimTime::millis(5);
  network->connect(router->id(), server2.id(), link);
  server2.set_address(network->assign_address(server2.id()));
  network->compute_routes();
  TcpReceiver receiver2(*simulator, server2);
  receiver2.attach();

  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(5));
  const auto progress = sender->bytes_acked();
  const double cwnd_before = sender->cwnd_segments();
  EXPECT_GT(cwnd_before, 8.0);

  sender->connect(server2.address());  // roaming migration
  EXPECT_LT(sender->cwnd_segments(), 3.0);  // slow-start restart
  simulator->run_until(sim::SimTime::seconds(10));
  EXPECT_GT(sender->bytes_acked(), progress);  // stream continues
  EXPECT_EQ(sender->handshakes(), 2u);
}

TEST_F(TcpFixture, RttEstimateTracksPathDelay) {
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(5));
  // Two 5 ms links each way: RTT >= 20 ms plus serialization/queueing.
  EXPECT_GT(sender->srtt_seconds(), 0.019);
  EXPECT_LT(sender->srtt_seconds(), 0.5);
}

TEST_F(TcpFixture, SynLossRetried) {
  PeriodicDropper dropper(sim::PacketType::kTcpSyn, 1);  // drop every SYN
  router->add_filter(&dropper);
  sender->connect(server->address());
  simulator->run_until(sim::SimTime::seconds(3));
  EXPECT_FALSE(sender->established());
  router->remove_filter(&dropper);
  simulator->run_until(sim::SimTime::seconds(20));
  EXPECT_TRUE(sender->established());
  EXPECT_GT(sender->handshakes(), 1u);
}

TEST_F(TcpFixture, TwoSendersShareOneReceiver) {
  auto& client2 = network->add_node<net::Host>("client2");
  net::LinkParams link;
  link.capacity_bps = 8e6;
  link.delay = sim::SimTime::millis(5);
  network->connect(client2.id(), router->id(), link);
  client2.set_address(network->assign_address(client2.id()));
  network->compute_routes();
  TcpSender sender2(*simulator, client2);

  sender->connect(server->address());
  sender2.connect(server->address());
  simulator->run_until(sim::SimTime::seconds(10));
  EXPECT_GT(receiver->bytes_delivered(client->address()), 0);
  EXPECT_GT(receiver->bytes_delivered(client2.address()), 0);
  EXPECT_EQ(receiver->total_bytes_delivered(),
            receiver->bytes_delivered(client->address()) +
                receiver->bytes_delivered(client2.address()));
}

}  // namespace
}  // namespace hbp::transport
