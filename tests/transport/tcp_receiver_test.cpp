// Unit tests of TcpReceiver's reordering/drain logic fed with synthetic
// packets (no sender, minimal network for the ACK return path).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "transport/tcp.hpp"

namespace hbp::transport {
namespace {

struct ReceiverFixture : public ::testing::Test {
  void SetUp() override {
    host = &network.add_node<net::Host>("srv");
    peer = &network.add_node<net::Host>("peer");
    net::LinkParams link;
    network.connect(host->id(), peer->id(), link);
    host->set_address(network.assign_address(host->id()));
    peer->set_address(network.assign_address(peer->id()));
    network.compute_routes();
    receiver = std::make_unique<TcpReceiver>(simulator, *host);
    peer->set_receiver(
        net::Host::ReceiveFn::bind<&ReceiverFixture::on_peer_packet>(*this));
  }

  void on_peer_packet(const sim::Packet& p) {
    if (p.type == sim::PacketType::kTcpAck) last_ack = p.ack;
    if (p.type == sim::PacketType::kTcpSynAck) ++syn_acks;
  }

  sim::Packet data(std::int64_t seq, std::int32_t bytes = 1000) {
    sim::Packet p;
    p.type = sim::PacketType::kTcpData;
    p.src = peer->address();
    p.dst = host->address();
    p.seq = seq;
    p.size_bytes = bytes;
    return p;
  }

  void drain() { simulator.run_until(simulator.now() + sim::SimTime::seconds(1)); }

  sim::Simulator simulator;
  net::Network network{simulator};
  net::Host* host = nullptr;
  net::Host* peer = nullptr;
  std::unique_ptr<TcpReceiver> receiver;
  std::int64_t last_ack = -1;
  int syn_acks = 0;
};

TEST_F(ReceiverFixture, InOrderDeliveryAcksCumulative) {
  receiver->handle(data(0));
  receiver->handle(data(1000));
  drain();
  EXPECT_EQ(last_ack, 2000);
  EXPECT_EQ(receiver->total_bytes_delivered(), 2000);
}

TEST_F(ReceiverFixture, OutOfOrderBufferedAndDrained) {
  receiver->handle(data(2000));
  receiver->handle(data(1000));
  drain();
  EXPECT_EQ(last_ack, 0);  // still waiting for seq 0
  EXPECT_EQ(receiver->total_bytes_delivered(), 0);
  receiver->handle(data(0));
  drain();
  EXPECT_EQ(last_ack, 3000);  // everything drains at once
  EXPECT_EQ(receiver->total_bytes_delivered(), 3000);
}

TEST_F(ReceiverFixture, DuplicateSegmentReAcked) {
  receiver->handle(data(0));
  receiver->handle(data(0));
  drain();
  EXPECT_EQ(last_ack, 1000);
  EXPECT_EQ(receiver->total_bytes_delivered(), 1000);  // not double-counted
}

TEST_F(ReceiverFixture, SynGetsSynAck) {
  sim::Packet syn;
  syn.type = sim::PacketType::kTcpSyn;
  syn.src = peer->address();
  syn.dst = host->address();
  syn.size_bytes = 64;
  EXPECT_TRUE(receiver->handle(syn));
  drain();
  EXPECT_EQ(syn_acks, 1);
}

TEST_F(ReceiverFixture, SynCarriesResumePosition) {
  sim::Packet syn;
  syn.type = sim::PacketType::kTcpSyn;
  syn.src = peer->address();
  syn.dst = host->address();
  syn.seq = 5000;  // checkpointed stream position
  syn.size_bytes = 64;
  receiver->handle(syn);
  receiver->handle(data(5000));
  drain();
  EXPECT_EQ(last_ack, 6000);
}

TEST_F(ReceiverFixture, NonTcpPacketsRejected) {
  sim::Packet p;
  p.type = sim::PacketType::kData;
  EXPECT_FALSE(receiver->handle(p));
  p.type = sim::PacketType::kProbe;
  EXPECT_FALSE(receiver->handle(p));
}

TEST_F(ReceiverFixture, PerPeerAccounting) {
  receiver->handle(data(0));
  drain();
  EXPECT_EQ(receiver->bytes_delivered(peer->address()), 1000);
  EXPECT_EQ(receiver->bytes_delivered(0x9999), 0);
}

}  // namespace
}  // namespace hbp::transport
