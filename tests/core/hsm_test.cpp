// HSM session lifecycle driven through the authenticated message entry
// points: correctly MAC'd requests open sessions, cancels close them, and
// every forged or mis-keyed message is rejected and counted.
#include "core/hsm.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/defense.hpp"
#include "honeypot/schedule.hpp"
#include "net/control_plane.hpp"
#include "net/network.hpp"
#include "topo/string_topo.hpp"
#include "util/sha256.hpp"

namespace hbp::core {
namespace {

struct HsmFixture : public ::testing::Test {
  void SetUp() override {
    topo::StringParams sp;
    sp.hops = 4;
    topo = topo::build_string(network, sp);
    network.compute_routes();

    chain = std::make_shared<honeypot::HashChain>(util::Sha256::hash("hsm"),
                                                  512);
    schedule = std::make_unique<honeypot::BernoulliSchedule>(
        chain, 0.5, sim::SimTime::seconds(5));
    pool = std::make_unique<honeypot::ServerPool>(
        simulator, network, *schedule, std::vector{topo.server},
        std::vector{topo.server_addr}, store, honeypot::ServerPoolParams{});
    control = std::make_unique<net::ControlPlane>(simulator,
                                                  net::ControlPlane::Params{});
    // Default params: authenticate = true, master_secret = all zeros — the
    // local KeyStore below derives the same keys the defense uses.
    defense = std::make_unique<HbpDefense>(simulator, network, *control, *pool,
                                           topo.as_map, HbpParams{});
    defense->start();
  }

  HoneypotRequest make_request(net::AsId from, net::AsId to) const {
    HoneypotRequest m;
    m.dst = topo.server_addr;
    m.epoch = 1;
    m.window.start = sim::SimTime::zero();
    m.window.end = sim::SimTime::seconds(100);
    m.from_as = from;
    m.to_as = to;
    return m;
  }

  HoneypotCancel make_cancel(net::AsId from, net::AsId to) const {
    HoneypotCancel c;
    c.dst = topo.server_addr;
    c.epoch = 1;
    c.from_as = from;
    c.to_as = to;
    return c;
  }

  sim::Simulator simulator;
  net::Network network{simulator};
  topo::StringTopo topo;
  std::shared_ptr<honeypot::HashChain> chain;
  std::unique_ptr<honeypot::BernoulliSchedule> schedule;
  honeypot::CheckpointStore store;
  std::unique_ptr<honeypot::ServerPool> pool;
  std::unique_ptr<net::ControlPlane> control;
  std::unique_ptr<HbpDefense> defense;
  KeyStore keys{util::Digest{}};  // same master secret as the defense
};

TEST_F(HsmFixture, AuthenticRequestOpensSession) {
  const net::AsId to = 2;
  HoneypotRequest m = make_request(/*from=*/1, to);
  keys.sign(m, keys.pair_key(1, to));
  defense->deliver_request(m);

  Hsm* hsm = defense->hsm(to);
  ASSERT_NE(hsm, nullptr);
  EXPECT_TRUE(hsm->session_active(topo.server_addr));
  EXPECT_EQ(hsm->session_count(), 1u);
  EXPECT_EQ(defense->forged_rejected(), 0u);
}

TEST_F(HsmFixture, GarbageMacRejected) {
  const net::AsId to = 2;
  HoneypotRequest m = make_request(/*from=*/1, to);
  keys.sign(m, keys.pair_key(1, to));
  m.mac[0] ^= 0xff;
  defense->deliver_request(m);

  EXPECT_EQ(defense->forged_rejected(), 1u);
  EXPECT_FALSE(defense->hsm(to)->session_active(topo.server_addr));
}

TEST_F(HsmFixture, TamperedFieldInvalidatesMac) {
  const net::AsId to = 2;
  HoneypotRequest m = make_request(/*from=*/1, to);
  keys.sign(m, keys.pair_key(1, to));
  m.window.end = sim::SimTime::seconds(10'000);  // stretched after signing
  defense->deliver_request(m);

  EXPECT_EQ(defense->forged_rejected(), 1u);
  EXPECT_FALSE(defense->hsm(to)->session_active(topo.server_addr));
}

TEST_F(HsmFixture, WrongPairKeyRejected) {
  const net::AsId to = 2;
  HoneypotRequest m = make_request(/*from=*/1, to);
  keys.sign(m, keys.pair_key(2, 3));  // valid MAC under the wrong pair
  defense->deliver_request(m);

  EXPECT_EQ(defense->forged_rejected(), 1u);
  EXPECT_FALSE(defense->hsm(to)->session_active(topo.server_addr));
}

TEST_F(HsmFixture, ProgressiveDirectRequestUsesServerKey) {
  // Direct requests come straight from the server pool and authenticate
  // under the AS-to-server key, not an AS-pair key.
  const net::AsId to = 3;
  HoneypotRequest m = make_request(topo.server_as, to);
  m.progressive_direct = true;
  keys.sign(m, keys.server_key(to));
  defense->deliver_request(m);

  EXPECT_EQ(defense->forged_rejected(), 0u);
  EXPECT_TRUE(defense->hsm(to)->session_active(topo.server_addr));

  // The same message signed with a pair key must not pass.
  HoneypotRequest bad = make_request(topo.server_as, 2);
  bad.progressive_direct = true;
  keys.sign(bad, keys.pair_key(topo.server_as, 2));
  defense->deliver_request(bad);
  EXPECT_EQ(defense->forged_rejected(), 1u);
  EXPECT_FALSE(defense->hsm(2)->session_active(topo.server_addr));
}

TEST_F(HsmFixture, AuthenticCancelClosesSession) {
  const net::AsId to = 2;
  HoneypotRequest m = make_request(/*from=*/1, to);
  keys.sign(m, keys.pair_key(1, to));
  defense->deliver_request(m);
  ASSERT_TRUE(defense->hsm(to)->session_active(topo.server_addr));

  HoneypotCancel c = make_cancel(/*from=*/1, to);
  keys.sign(c, keys.pair_key(1, to));
  defense->deliver_cancel(c);

  EXPECT_FALSE(defense->hsm(to)->session_active(topo.server_addr));
  EXPECT_EQ(defense->hsm(to)->session_count(), 0u);
  EXPECT_EQ(defense->forged_rejected(), 0u);
}

TEST_F(HsmFixture, ForgedCancelLeavesSessionOpen) {
  const net::AsId to = 2;
  HoneypotRequest m = make_request(/*from=*/1, to);
  keys.sign(m, keys.pair_key(1, to));
  defense->deliver_request(m);

  HoneypotCancel c = make_cancel(/*from=*/1, to);
  keys.sign(c, keys.pair_key(1, to));
  c.mac[5] ^= 0x01;
  defense->deliver_cancel(c);

  EXPECT_EQ(defense->forged_rejected(), 1u);
  EXPECT_TRUE(defense->hsm(to)->session_active(topo.server_addr));
}

TEST_F(HsmFixture, ServerCancelUsesServerKey) {
  const net::AsId to = 2;
  HoneypotRequest m = make_request(/*from=*/1, to);
  keys.sign(m, keys.pair_key(1, to));
  defense->deliver_request(m);

  HoneypotCancel c = make_cancel(topo.server_as, to);
  c.from_server = true;
  keys.sign(c, keys.server_key(to));
  defense->deliver_cancel(c);

  EXPECT_FALSE(defense->hsm(to)->session_active(topo.server_addr));
  EXPECT_EQ(defense->forged_rejected(), 0u);
}

TEST_F(HsmFixture, ReportAuthentication) {
  IntermediateReport r;
  r.as = 2;
  r.dst = topo.server_addr;
  r.epoch = 1;
  r.stamped_at = sim::SimTime::zero();  // "now": the clock has not advanced
  keys.sign(r, keys.server_key(r.as));
  defense->deliver_report(r);
  EXPECT_EQ(defense->forged_rejected(), 0u);

  r.epoch = 2;  // tampered after signing: stale MAC
  defense->deliver_report(r);
  EXPECT_EQ(defense->forged_rejected(), 1u);
}

}  // namespace
}  // namespace hbp::core
