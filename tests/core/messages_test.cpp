#include "core/messages.hpp"

#include <gtest/gtest.h>

namespace hbp::core {
namespace {

KeyStore store() { return KeyStore(util::Sha256::hash("master")); }

TEST(KeyStore, PairKeysSymmetric) {
  const auto ks = store();
  EXPECT_TRUE(util::digest_equal(ks.pair_key(3, 7), ks.pair_key(7, 3)));
  EXPECT_FALSE(util::digest_equal(ks.pair_key(3, 7), ks.pair_key(3, 8)));
}

TEST(KeyStore, ServerKeysPerAs) {
  const auto ks = store();
  EXPECT_FALSE(util::digest_equal(ks.server_key(1), ks.server_key(2)));
  EXPECT_FALSE(util::digest_equal(ks.server_key(1), ks.pair_key(1, 1)));
}

TEST(KeyStore, DifferentMastersDisjoint) {
  const KeyStore a(util::Sha256::hash("m1"));
  const KeyStore b(util::Sha256::hash("m2"));
  EXPECT_FALSE(util::digest_equal(a.pair_key(1, 2), b.pair_key(1, 2)));
}

TEST(Messages, RequestSignVerifyRoundTrip) {
  const auto ks = store();
  HoneypotRequest m;
  m.dst = 42;
  m.epoch = 7;
  m.window.start = sim::SimTime::seconds(60);
  m.window.end = sim::SimTime::seconds(70);
  m.from_as = 1;
  m.to_as = 2;
  ks.sign(m, ks.pair_key(1, 2));
  EXPECT_TRUE(ks.verify(m, ks.pair_key(1, 2)));
  EXPECT_TRUE(ks.verify(m, ks.pair_key(2, 1)));
  EXPECT_FALSE(ks.verify(m, ks.pair_key(1, 3)));
}

TEST(Messages, TamperedRequestRejected) {
  const auto ks = store();
  HoneypotRequest m;
  m.dst = 42;
  m.epoch = 7;
  m.from_as = 1;
  m.to_as = 2;
  ks.sign(m, ks.pair_key(1, 2));

  auto tampered = m;
  tampered.dst = 43;
  EXPECT_FALSE(ks.verify(tampered, ks.pair_key(1, 2)));

  tampered = m;
  tampered.epoch = 8;
  EXPECT_FALSE(ks.verify(tampered, ks.pair_key(1, 2)));

  tampered = m;
  tampered.window.end = sim::SimTime::seconds(9999);
  EXPECT_FALSE(ks.verify(tampered, ks.pair_key(1, 2)));

  tampered = m;
  tampered.progressive_direct = true;
  EXPECT_FALSE(ks.verify(tampered, ks.pair_key(1, 2)));
}

TEST(Messages, CancelCoversFromServerFlag) {
  const auto ks = store();
  HoneypotCancel c;
  c.dst = 9;
  c.epoch = 3;
  c.from_as = 0;
  c.to_as = 4;
  c.from_server = true;
  ks.sign(c, ks.server_key(4));
  EXPECT_TRUE(ks.verify(c, ks.server_key(4)));
  auto tampered = c;
  tampered.from_server = false;
  EXPECT_FALSE(ks.verify(tampered, ks.server_key(4)));
}

TEST(Messages, ReportTimestampCovered) {
  const auto ks = store();
  IntermediateReport r;
  r.as = 5;
  r.dst = 9;
  r.epoch = 2;
  r.stamped_at = sim::SimTime::seconds(12.5);
  ks.sign(r, ks.server_key(5));
  EXPECT_TRUE(ks.verify(r, ks.server_key(5)));
  auto tampered = r;
  tampered.stamped_at = sim::SimTime::seconds(1.0);
  EXPECT_FALSE(ks.verify(tampered, ks.server_key(5)));
}

TEST(Messages, SerializationsAreDistinctByType) {
  HoneypotRequest req;
  HoneypotCancel cancel;
  IntermediateReport report;
  EXPECT_NE(serialize(req), serialize(cancel));
  EXPECT_NE(serialize(cancel), serialize(report));
}

}  // namespace
}  // namespace hbp::core
