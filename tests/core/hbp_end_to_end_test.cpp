// End-to-end honeypot back-propagation tests on the string topology
// (Section 8.2 setting): traceback through a chain of ASs down to the
// attacker's switch port, with spoofed sources, clients as bystanders,
// message forgery, compromised edge routers, partial deployment, and the
// tunneling/marking ingress-identification modes.
#include <gtest/gtest.h>

#include "scenario/string_experiment.hpp"

#include <memory>

#include "core/defense.hpp"
#include "honeypot/schedule.hpp"
#include "net/control_plane.hpp"
#include "net/network.hpp"
#include "topo/string_topo.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"
#include "util/rng.hpp"

namespace hbp::core {
namespace {

// A hand-wired harness around the string topology so individual tests can
// poke at defense internals (the scenario::run_string_experiment wrapper is
// exercised too, further below).
struct HbpStringFixture : public ::testing::Test {
  void build(int hops, bool with_client, const HbpParams& hbp_params,
             double p = 0.5) {
    topo::StringParams sp;
    sp.hops = hops;
    sp.with_client = with_client;
    topo = topo::build_string(network, sp);
    network.compute_routes();

    chain = std::make_shared<honeypot::HashChain>(
        util::Sha256::hash("e2e"), 1024);
    schedule = std::make_unique<honeypot::BernoulliSchedule>(
        chain, p, sim::SimTime::seconds(5));
    honeypot::ServerPoolParams pool_params;
    pool_params.delta = sim::SimTime::millis(50);
    pool_params.gamma = sim::SimTime::millis(25);
    pool = std::make_unique<honeypot::ServerPool>(
        simulator, network, *schedule, std::vector<sim::NodeId>{topo.server},
        std::vector<sim::Address>{topo.server_addr}, store, pool_params);

    net::ControlPlane::Params cp;
    cp.per_hop_latency = sim::SimTime::millis(50);
    cp.jitter_fraction = 0.0;
    control = std::make_unique<net::ControlPlane>(simulator, cp);

    defense = std::make_unique<HbpDefense>(simulator, network, *control,
                                           *pool, topo.as_map, hbp_params);
    defense->start();
    pool->start();
  }

  void attack(double rate_bps = 0.8e6) {
    traffic::CbrParams params;
    params.rate_bps = rate_bps;
    params.is_attack = true;
    attacker = std::make_unique<traffic::CbrSource>(
        simulator, static_cast<net::Host&>(network.node(topo.attacker_host)),
        rng, params, [this] { return topo.server_addr; },
        traffic::random_spoof());
    attacker->start();
  }

  void legit_client(double rate_bps = 0.4e6) {
    // A plain client that knows the schedule: sends only when the server
    // is active (stand-in for a roaming client in the 1-server string).
    traffic::CbrParams params;
    params.rate_bps = rate_bps;
    client = std::make_unique<traffic::CbrSource>(
        simulator, static_cast<net::Host&>(network.node(topo.client_host)),
        rng, params, [this]() -> sim::Address {
          const auto epoch = schedule->epoch_of(simulator.now());
          return schedule->is_active(0, epoch) ? topo.server_addr : 0;
        });
    client->start();
  }

  sim::Simulator simulator;
  net::Network network{simulator};
  topo::StringTopo topo;
  std::shared_ptr<honeypot::HashChain> chain;
  std::unique_ptr<honeypot::BernoulliSchedule> schedule;
  honeypot::CheckpointStore store;
  std::unique_ptr<honeypot::ServerPool> pool;
  std::unique_ptr<net::ControlPlane> control;
  std::unique_ptr<HbpDefense> defense;
  std::unique_ptr<traffic::CbrSource> attacker;
  std::unique_ptr<traffic::CbrSource> client;
  util::Rng rng{17};
};

TEST_F(HbpStringFixture, CapturesSpoofingAttacker) {
  build(5, false, HbpParams{});
  attack();
  simulator.run_until(sim::SimTime::seconds(120));
  ASSERT_EQ(defense->captures().size(), 1u);
  EXPECT_EQ(defense->captures()[0].host, topo.attacker_host);
  EXPECT_GT(defense->activations(), 0u);
  EXPECT_EQ(defense->false_activations(), 0u);
  // The attacker's switch port is actually closed.
  auto& sw = static_cast<net::Switch&>(network.node(topo.attacker_switch));
  EXPECT_EQ(sw.closed_port_count(), 1u);
}

TEST_F(HbpStringFixture, CaptureStopsAttackTraffic) {
  build(4, false, HbpParams{});
  attack();
  simulator.run_until(sim::SimTime::seconds(120));
  ASSERT_EQ(defense->captures().size(), 1u);
  const auto& server = static_cast<net::Host&>(network.node(topo.server));
  const auto received_at_capture_plus = server.packets_received();
  simulator.run_until(sim::SimTime::seconds(160));
  // No further attack packets reach the server after the port closed.
  EXPECT_EQ(server.packets_received(), received_at_capture_plus);
}

TEST_F(HbpStringFixture, InnocentClientNeverCaptured) {
  build(5, true, HbpParams{});
  attack();
  legit_client();
  simulator.run_until(sim::SimTime::seconds(200));
  ASSERT_GE(defense->captures().size(), 1u);
  for (const auto& c : defense->captures()) {
    EXPECT_EQ(c.host, topo.attacker_host);
  }
  // The client's port stays open.
  auto& sw = static_cast<net::Switch&>(network.node(topo.attacker_switch));
  EXPECT_EQ(sw.closed_port_count(), 1u);
}

TEST_F(HbpStringFixture, TunnelingModeAlsoCaptures) {
  HbpParams params;
  params.ingress_mode = HbpParams::IngressMode::kTunneling;
  build(5, false, params);
  attack();
  simulator.run_until(sim::SimTime::seconds(120));
  EXPECT_EQ(defense->captures().size(), 1u);
}

TEST_F(HbpStringFixture, ActivationThresholdSuppressesSparseTraffic) {
  HbpParams params;
  params.activation_threshold = 1000;  // effectively unreachable
  build(4, false, params);
  attack(0.08e6);  // 10 packets/s: ~50 per honeypot window < 1000
  simulator.run_until(sim::SimTime::seconds(100));
  EXPECT_EQ(defense->activations(), 0u);
  EXPECT_TRUE(defense->captures().empty());
}

TEST_F(HbpStringFixture, ForgedRequestRejected) {
  build(4, false, HbpParams{});
  attack();
  // Inject an unauthenticated request claiming a session in AS 2.
  HoneypotRequest forged;
  forged.dst = topo.server_addr;
  forged.epoch = 1;
  forged.window.end = sim::SimTime::seconds(1000);
  forged.from_as = 1;
  forged.to_as = 2;
  // mac left zero — wrong.
  defense->deliver_request(forged);
  EXPECT_EQ(defense->forged_rejected(), 1u);
  EXPECT_FALSE(defense->hsm(2)->session_active(topo.server_addr));
}

TEST_F(HbpStringFixture, ForgedCancelCannotTearDownSessions) {
  build(4, false, HbpParams{});
  attack();
  // Run until a session exists somewhere past the home AS.
  simulator.run_until(sim::SimTime::seconds(60));
  HoneypotCancel forged;
  forged.dst = topo.server_addr;
  forged.epoch = 99;
  forged.from_as = 1;
  forged.to_as = topo.server_as;
  defense->deliver_cancel(forged);
  EXPECT_GE(defense->forged_rejected(), 1u);
}

TEST_F(HbpStringFixture, CompromisedEdgeRouterCannotCauseFalseCapture) {
  // The edge router of the middle AS stamps a bogus edge id on every
  // diverted packet.  Back-propagation into the wrong branch dies out (no
  // matching cross link / no packets there); the attacker may escape but
  // nobody innocent is captured.
  build(5, true, HbpParams{});
  const net::AsId mid_as = network.node(topo.chain_routers[2]).as_id();
  // Prime: create the HSM before compromising its filter-to-be.
  defense->hsm(mid_as)->compromise_edge_router(topo.chain_routers[2], 777);
  attack();
  legit_client();
  simulator.run_until(sim::SimTime::seconds(150));
  for (const auto& c : defense->captures()) {
    EXPECT_EQ(c.host, topo.attacker_host);
  }
}

TEST_F(HbpStringFixture, PartialDeploymentBridgesGaps) {
  // ASs 2 and 3 (middle of the chain) do not deploy; requests must bridge
  // over them via routing-option broadcast and still reach the stub.
  HbpParams params;
  std::set<net::AsId> deploying{0, 1, 4, 5};
  params.deployment = DeploymentPolicy::explicit_set(deploying);
  build(5, false, params);
  attack();
  simulator.run_until(sim::SimTime::seconds(200));
  EXPECT_GT(defense->bridged_messages(), 0u);
  ASSERT_EQ(defense->captures().size(), 1u);
  EXPECT_EQ(defense->captures()[0].host, topo.attacker_host);
}

TEST_F(HbpStringFixture, NoDeploymentAtStubMeansNoCapture) {
  HbpParams params;
  std::set<net::AsId> deploying{0, 1, 2, 3, 4};  // stub AS 5 missing
  params.deployment = DeploymentPolicy::explicit_set(deploying);
  build(5, false, params);
  attack();
  simulator.run_until(sim::SimTime::seconds(150));
  EXPECT_TRUE(defense->captures().empty());
}

TEST_F(HbpStringFixture, SessionsTornDownAfterEpoch) {
  build(4, false, HbpParams{});
  attack();
  simulator.run_until(sim::SimTime::seconds(120));
  // After capture the attack stream is gone; once the last honeypot window
  // cancels, no HSM session should persist.
  simulator.run_until(sim::SimTime::seconds(140));
  std::size_t active = 0;
  for (std::size_t as = 0; as < topo.as_map.count(); ++as) {
    if (Hsm* hsm = defense->hsm(static_cast<net::AsId>(as))) {
      active += hsm->session_count();
    }
  }
  EXPECT_EQ(active, 0u);
}

TEST_F(HbpStringFixture, HoneypotRequestsCarryAuthenticatedWindow) {
  build(3, false, HbpParams{});
  attack();
  simulator.run_until(sim::SimTime::seconds(100));
  EXPECT_GT(control->messages_sent("honeypot_request"), 0u);
  EXPECT_GT(control->messages_sent("honeypot_cancel"), 0u);
  EXPECT_EQ(defense->forged_rejected(), 0u);
}

// The scenario-level wrapper used by the Fig. 6 bench.
TEST(StringExperiment, BasicSchemeCapturesWithinBound) {
  scenario::StringExperimentConfig config;
  config.m = 10.0;
  config.p = 0.5;
  config.h = 6;
  config.tau = 0.3;
  const auto summary = scenario::run_string_replicated(config, 5, 1);
  EXPECT_EQ(summary.captured, 5);
  // Eq. (3) upper bound: m (1/p - 1) = 10 s, plus one in-window traversal.
  EXPECT_LT(summary.capture_time.mean(), 10.0 + config.m);
}

TEST(StringExperiment, ProgressiveCapturesOnOffAttack) {
  scenario::StringExperimentConfig config;
  config.m = 10.0;
  config.p = 0.5;
  config.h = 8;
  config.tau = 0.5;
  config.progressive = true;
  // Burst much shorter than the full traversal (8 hops x ~0.58 s): basic
  // back-propagation can never finish within one burst.
  config.onoff_t_on = 1.2;
  config.onoff_t_off = 8.8;
  config.horizon_seconds = 4000.0;
  const auto result = scenario::run_string_experiment(config, 3);
  EXPECT_TRUE(result.captured);
  EXPECT_GT(result.reports, 0u);  // intermediate-AS reports were needed
}

TEST(StringExperiment, SurvivesControlPlaneLoss) {
  // Section 6 rule 1 explicitly covers lost intermediate reports
  // ("propagation is restarted" in the rare loss case); more generally the
  // per-epoch re-request makes the scheme self-healing under control
  // message loss.  20% loss must only slow capture down, not break it.
  scenario::StringExperimentConfig config;
  config.m = 10.0;
  config.p = 0.5;
  config.h = 5;
  config.tau = 0.3;
  config.progressive = true;
  config.control_loss_probability = 0.2;
  config.horizon_seconds = 4000.0;
  const auto summary = scenario::run_string_replicated(config, 5, 3);
  EXPECT_EQ(summary.captured, 5);
}

TEST(StringExperiment, DeterministicForSameSeed) {
  scenario::StringExperimentConfig config;
  config.h = 4;
  config.p = 0.5;
  const auto a = scenario::run_string_experiment(config, 11);
  const auto b = scenario::run_string_experiment(config, 11);
  EXPECT_EQ(a.captured, b.captured);
  EXPECT_DOUBLE_EQ(a.capture_seconds, b.capture_seconds);
  EXPECT_EQ(a.control_messages, b.control_messages);
}

}  // namespace
}  // namespace hbp::core
