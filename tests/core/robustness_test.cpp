// Robustness: the defense must tolerate arbitrary (hostile or corrupted)
// message sequences without crashing, capturing innocents, or leaking
// sessions — randomized protocol-level fuzzing against a live scenario.
#include <gtest/gtest.h>

#include <memory>

#include "core/defense.hpp"
#include "honeypot/schedule.hpp"
#include "net/control_plane.hpp"
#include "net/network.hpp"
#include "topo/string_topo.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"
#include "util/rng.hpp"

namespace hbp::core {
namespace {

class MessageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzz, RandomMessagesNeverCrashOrFrame) {
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::StringParams sp;
  sp.hops = 4;
  sp.with_client = true;
  const topo::StringTopo topo = topo::build_string(network, sp);
  network.compute_routes();

  auto chain = std::make_shared<honeypot::HashChain>(
      util::Sha256::hash("fuzz"), 512);
  honeypot::BernoulliSchedule schedule(chain, 0.5, sim::SimTime::seconds(5));
  honeypot::CheckpointStore store;
  honeypot::ServerPool pool(simulator, network, schedule,
                            {topo.server}, {topo.server_addr}, store,
                            honeypot::ServerPoolParams{});
  net::ControlPlane control(simulator, {});
  HbpDefense defense(simulator, network, control, pool, topo.as_map,
                     HbpParams{});
  defense.start();
  pool.start();

  util::Rng attacker_rng(GetParam());
  traffic::CbrParams cbr;
  cbr.rate_bps = 0.4e6;
  cbr.is_attack = true;
  traffic::CbrSource attacker(
      simulator, static_cast<net::Host&>(network.node(topo.attacker_host)),
      attacker_rng, cbr, [&topo] { return topo.server_addr; },
      traffic::random_spoof());
  attacker.start();

  // Interleave simulation progress with random message injections.
  util::Rng fuzz(GetParam() * 977 + 3);
  const auto as_count = static_cast<std::int64_t>(topo.as_map.count());
  for (int round = 0; round < 60; ++round) {
    simulator.run_until(simulator.now() + sim::SimTime::seconds(1));
    for (int i = 0; i < 5; ++i) {
      switch (fuzz.below(3)) {
        case 0: {
          HoneypotRequest m;
          m.dst = static_cast<sim::Address>(fuzz.below(10));
          m.epoch = fuzz.below(100);
          m.window.start = sim::SimTime::seconds(fuzz.uniform(0, 100));
          m.window.end = sim::SimTime::seconds(fuzz.uniform(0, 200));
          m.from_as = static_cast<net::AsId>(fuzz.range(-1, as_count));
          m.to_as = static_cast<net::AsId>(fuzz.range(0, as_count - 1));
          m.progressive_direct = fuzz.bernoulli(0.5);
          for (auto& b : m.mac) b = static_cast<std::uint8_t>(fuzz.below(256));
          defense.deliver_request(m);
          break;
        }
        case 1: {
          HoneypotCancel c;
          c.dst = static_cast<sim::Address>(fuzz.below(10));
          c.epoch = fuzz.below(100);
          c.from_as = static_cast<net::AsId>(fuzz.range(-1, as_count));
          c.to_as = static_cast<net::AsId>(fuzz.range(0, as_count - 1));
          c.from_server = fuzz.bernoulli(0.5);
          defense.deliver_cancel(c);
          break;
        }
        case 2: {
          IntermediateReport r;
          r.as = static_cast<net::AsId>(fuzz.range(0, as_count - 1));
          r.dst = static_cast<sim::Address>(fuzz.below(10));
          r.epoch = fuzz.below(100);
          r.stamped_at = sim::SimTime::seconds(fuzz.uniform(0, 60));
          defense.deliver_report(r);
          break;
        }
      }
    }
  }

  // Every unauthenticated injection was rejected; the genuine attacker was
  // still captured; the bystander client was never framed.
  EXPECT_GT(defense.forged_rejected(), 0u);
  for (const auto& c : defense.captures()) {
    EXPECT_EQ(c.host, topo.attacker_host);
  }
  EXPECT_GE(defense.captures().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzz, ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace hbp::core
