#include "core/progressive.hpp"

#include <gtest/gtest.h>

namespace hbp::core {
namespace {

TEST(Progressive, ReportComputesTimeDistance) {
  ProgressiveManager m(5);
  m.on_report(3, sim::SimTime::seconds(10), sim::SimTime::seconds(12.5));
  const auto entries = m.end_round();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].as, 3);
  EXPECT_DOUBLE_EQ(entries[0].t_a_seconds, 2.5);
}

TEST(Progressive, Rule1DropsSilentEntries) {
  ProgressiveManager m(5);
  m.on_report(1, sim::SimTime::seconds(1), sim::SimTime::seconds(2));
  m.on_report(2, sim::SimTime::seconds(1), sim::SimTime::seconds(2));
  EXPECT_EQ(m.end_round().size(), 2u);

  // Only AS 2 reports in the next round; AS 1 is removed by rule 1.
  m.on_report(2, sim::SimTime::seconds(11), sim::SimTime::seconds(12));
  const auto entries = m.end_round();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].as, 2);
  EXPECT_EQ(m.rule1_removals(), 1u);
  EXPECT_FALSE(m.contains(1));
}

TEST(Progressive, Rule2DropsAfterRhoConsecutiveReports) {
  ProgressiveManager m(3);  // rho = 3
  for (int round = 0; round < 2; ++round) {
    m.on_report(7, sim::SimTime::seconds(round * 10),
                sim::SimTime::seconds(round * 10 + 1));
    EXPECT_EQ(m.end_round().size(), 1u) << "round " << round;
  }
  // Third consecutive report hits rho.
  m.on_report(7, sim::SimTime::seconds(20), sim::SimTime::seconds(21));
  EXPECT_TRUE(m.end_round().empty());
  EXPECT_EQ(m.rule2_removals(), 1u);
  EXPECT_FALSE(m.contains(7));
}

TEST(Progressive, CounterResetsAfterRemoval) {
  ProgressiveManager m(2);
  m.on_report(4, sim::SimTime::seconds(0), sim::SimTime::seconds(1));
  m.end_round();
  m.on_report(4, sim::SimTime::seconds(10), sim::SimTime::seconds(11));
  EXPECT_TRUE(m.end_round().empty());  // rho=2 reached
  // Fresh discovery starts over.
  m.on_report(4, sim::SimTime::seconds(20), sim::SimTime::seconds(21));
  EXPECT_EQ(m.end_round().size(), 1u);
}

TEST(Progressive, LatestTimestampWins) {
  ProgressiveManager m(5);
  m.on_report(3, sim::SimTime::seconds(0), sim::SimTime::seconds(3));
  m.end_round();
  m.on_report(3, sim::SimTime::seconds(10), sim::SimTime::seconds(11));
  const auto entries = m.end_round();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].t_a_seconds, 1.0);
}

TEST(Progressive, MultipleBranchesTrackedIndependently) {
  ProgressiveManager m(10);
  for (int round = 0; round < 3; ++round) {
    m.on_report(1, sim::SimTime::seconds(round * 10),
                sim::SimTime::seconds(round * 10 + 1));
    if (round < 2) {
      m.on_report(2, sim::SimTime::seconds(round * 10),
                  sim::SimTime::seconds(round * 10 + 2));
    }
    const auto entries = m.end_round();
    if (round < 2) {
      EXPECT_EQ(entries.size(), 2u);
    } else {
      ASSERT_EQ(entries.size(), 1u);  // AS 2 silent => rule 1
      EXPECT_EQ(entries[0].as, 1);
    }
  }
  EXPECT_EQ(m.reports_received(), 5u);
}

TEST(Progressive, EmptyRoundIsEmpty) {
  ProgressiveManager m(5);
  EXPECT_TRUE(m.end_round().empty());
  EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace hbp::core
