#include <gtest/gtest.h>

#include "core/deployment.hpp"
#include "core/messages.hpp"
#include "util/rng.hpp"

namespace hbp::core {
namespace {

TEST(DeploymentPolicy, DefaultIsFull) {
  DeploymentPolicy policy;
  EXPECT_TRUE(policy.full());
  for (net::AsId as = 0; as < 100; ++as) EXPECT_TRUE(policy.deploys(as));
}

TEST(DeploymentPolicy, ExplicitSet) {
  const auto policy = DeploymentPolicy::explicit_set({1, 3, 5});
  EXPECT_FALSE(policy.full());
  EXPECT_TRUE(policy.deploys(1));
  EXPECT_TRUE(policy.deploys(3));
  EXPECT_FALSE(policy.deploys(0));
  EXPECT_FALSE(policy.deploys(2));
}

TEST(DeploymentPolicy, RandomFractionKeepsAlwaysSet) {
  util::Rng rng(4);
  const auto policy =
      DeploymentPolicy::random_fraction(0.0, 50, rng, {0, 7});
  // Fraction 0: only the always-deploy set.
  EXPECT_TRUE(policy.deploys(0));
  EXPECT_TRUE(policy.deploys(7));
  int others = 0;
  for (net::AsId as = 1; as < 50; ++as) {
    if (as != 7 && policy.deploys(as)) ++others;
  }
  EXPECT_EQ(others, 0);
}

TEST(DeploymentPolicy, RandomFractionRoughlyMatches) {
  util::Rng rng(5);
  const auto policy =
      DeploymentPolicy::random_fraction(0.5, 1000, rng, {0});
  int deployed = 0;
  for (net::AsId as = 0; as < 1000; ++as) {
    if (policy.deploys(as)) ++deployed;
  }
  EXPECT_NEAR(deployed / 1000.0, 0.5, 0.05);
}

TEST(SessionWindow, ContainsIsInclusive) {
  SessionWindow w;
  w.start = sim::SimTime::seconds(10);
  w.end = sim::SimTime::seconds(20);
  EXPECT_FALSE(w.contains(sim::SimTime::seconds(9.999)));
  EXPECT_TRUE(w.contains(sim::SimTime::seconds(10)));
  EXPECT_TRUE(w.contains(sim::SimTime::seconds(15)));
  EXPECT_TRUE(w.contains(sim::SimTime::seconds(20)));
  EXPECT_FALSE(w.contains(sim::SimTime::seconds(20.001)));
}

TEST(SessionWindow, DefaultIsDegenerate) {
  SessionWindow w;
  EXPECT_TRUE(w.contains(sim::SimTime::zero()));
  EXPECT_FALSE(w.contains(sim::SimTime::millis(1)));
}

}  // namespace
}  // namespace hbp::core
