#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace hbp::util {
namespace {

TEST(ThreadPool, InlineWhenNoWorkers) {
  ThreadPool pool(1);  // <=1 workers => inline execution
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(50, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 49 * 50 / 2);
  }
}

TEST(ThreadPool, ZeroItemsNoCall) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

}  // namespace
}  // namespace hbp::util
