#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hbp::util {
namespace {

// FIPS 180-4 test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, QuickBrownFox) {
  EXPECT_EQ(to_hex(Sha256::hash("The quick brown fox jumps over the lazy dog")),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "honeypot back-propagation";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::hash(msg)));
  }
}

// Boundary lengths around the padding edge (55/56/57, 63/64/65 bytes).
class Sha256PaddingBoundary : public ::testing::TestWithParam<int> {};

TEST_P(Sha256PaddingBoundary, MatchesIncremental) {
  const std::string msg(static_cast<std::size_t>(GetParam()), 'x');
  Sha256 bytewise;
  for (const char c : msg) bytewise.update(std::string_view(&c, 1));
  EXPECT_EQ(to_hex(bytewise.finish()), to_hex(Sha256::hash(msg)));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256PaddingBoundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 128));

// RFC 4231 test case 2.
TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const Digest mac = hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 1 (20-byte 0x0b key).
TEST(HmacSha256, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const std::string data = "Hi There";
  const Digest mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacSha256, LongKeyIsHashedFirst) {
  std::vector<std::uint8_t> key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DifferentKeysDiffer) {
  const Digest k1 = Sha256::hash("key-one");
  const Digest k2 = Sha256::hash("key-two");
  EXPECT_FALSE(digest_equal(hmac_sha256(k1, "msg"), hmac_sha256(k2, "msg")));
}

TEST(DigestEqual, DetectsSingleBitFlip) {
  Digest a = Sha256::hash("x");
  Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(ToHex, Is64LowercaseChars) {
  const std::string hex = to_hex(Sha256::hash("y"));
  EXPECT_EQ(hex.size(), 64u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

}  // namespace
}  // namespace hbp::util
