#include "util/bloom.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hbp::util {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f(4096, 3);
  Rng rng(1);
  std::vector<std::uint64_t> items;
  for (int i = 0; i < 200; ++i) items.push_back(rng.next_u64());
  for (const auto x : items) f.insert(x);
  for (const auto x : items) EXPECT_TRUE(f.maybe_contains(x));
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter f(1024, 3);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(f.maybe_contains(rng.next_u64()));
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  BloomFilter f(1u << 14, 3);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) f.insert(rng.next_u64());
  // Theoretical FP at this load: fill^k.
  const double predicted = f.false_positive_rate();
  int fp = 0;
  const int probes = 50000;
  for (int i = 0; i < probes; ++i) {
    if (f.maybe_contains(rng.next_u64())) ++fp;
  }
  const double measured = static_cast<double>(fp) / probes;
  EXPECT_NEAR(measured, predicted, 0.01);
  EXPECT_GT(predicted, 0.0);
  EXPECT_LT(predicted, 0.2);
}

TEST(BloomFilter, SaturationDrivesFpToOne) {
  BloomFilter f(256, 3);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) f.insert(rng.next_u64());
  EXPECT_GT(f.fill_ratio(), 0.99);
  int fp = 0;
  for (int i = 0; i < 100; ++i) fp += f.maybe_contains(rng.next_u64()) ? 1 : 0;
  EXPECT_GT(fp, 95);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter f(1024, 2);
  f.insert(42);
  EXPECT_TRUE(f.maybe_contains(42));
  f.clear();
  EXPECT_FALSE(f.maybe_contains(42));
  EXPECT_EQ(f.inserted(), 0u);
  EXPECT_DOUBLE_EQ(f.fill_ratio(), 0.0);
}

TEST(BloomFilter, ByteSizeRoundsUp) {
  EXPECT_EQ(BloomFilter(8, 1).byte_size(), 1u);
  EXPECT_EQ(BloomFilter(9, 1).byte_size(), 2u);
  EXPECT_EQ(BloomFilter(1u << 16, 1).byte_size(), 8192u);
}

TEST(Mix64, DeterministicAndDispersive) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
  // Low bits of sequential inputs decorrelate.
  int same_low_bit = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if ((mix64(i) & 1) == (mix64(i + 1) & 1)) ++same_low_bit;
  }
  EXPECT_NEAR(same_low_bit, 500, 100);
}

}  // namespace
}  // namespace hbp::util
