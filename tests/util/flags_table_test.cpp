#include <gtest/gtest.h>

#include "util/flags.hpp"
#include "util/table.hpp"

namespace hbp::util {
namespace {

Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  auto flags = make_flags({"--rate=2.5", "--count=7", "--name=foo"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(flags.get_int("count", 0), 7);
  EXPECT_EQ(flags.get_string("name", ""), "foo");
}

TEST(Flags, SpaceSeparatedForm) {
  auto flags = make_flags({"--rate", "3.5", "--flag"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 3.5);
  EXPECT_TRUE(flags.get_bool("flag", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  auto flags = make_flags({});
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 1.25), 1.25);
  EXPECT_EQ(flags.get_int("count", -3), -3);
  EXPECT_FALSE(flags.get_bool("flag", false));
  EXPECT_EQ(flags.get_string("name", "dflt"), "dflt");
}

TEST(Flags, BoolForms) {
  auto flags = make_flags({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

TEST(Flags, DoubleList) {
  auto flags = make_flags({"--sweep=1,2.5,10"});
  const auto v = flags.get_double_list("sweep", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  EXPECT_DOUBLE_EQ(v[2], 10.0);
}

TEST(Flags, HasDetectsPresence) {
  auto flags = make_flags({"--x=1"});
  EXPECT_TRUE(flags.has("x"));
  EXPECT_FALSE(flags.has("y"));
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
  EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Table, PrintsAligned) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  // Render into a memory stream to keep test output clean.
  char buf[512];
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::fclose(f);
  const std::string out(buf);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

}  // namespace
}  // namespace hbp::util
