#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hbp::util {
namespace {

TEST(SplitMix64, DeterministicAndNonTrivial) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(43);
  SplitMix64 d(42);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c.next() == d.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsBoundedAndCoversAll) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / 100000.0, 2.5, 0.05);
}

TEST(Rng, WeightedNeverPicksZeroWeight) {
  Rng rng(8);
  const std::vector<double> weights{0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 10000; ++i) {
    const std::size_t pick = rng.weighted(weights);
    ASSERT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Rng, WeightedMatchesProportions) {
  Rng rng(9);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 100000; ++i) ones += rng.weighted(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(ones / 100000.0, 0.75, 0.01);
}

TEST(Rng, ChooseReturnsDistinctIndices) {
  Rng rng(10);
  for (int trial = 0; trial < 100; ++trial) {
    const auto picked = rng.choose(10, 4);
    ASSERT_EQ(picked.size(), 4u);
    std::set<std::size_t> s(picked.begin(), picked.end());
    ASSERT_EQ(s.size(), 4u);
    for (const std::size_t v : picked) ASSERT_LT(v, 10u);
  }
}

TEST(Rng, ChooseAllIsPermutation) {
  Rng rng(11);
  auto picked = rng.choose(6, 6);
  std::sort(picked.begin(), picked.end());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(picked[i], i);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(DeriveSeed, IndependentOfCallOrder) {
  const std::uint64_t a1 = derive_seed(99, 1);
  const std::uint64_t a2 = derive_seed(99, 2);
  EXPECT_EQ(a1, derive_seed(99, 1));
  EXPECT_NE(a1, a2);
  EXPECT_NE(derive_seed(98, 1), a1);
}

// Property sweep: below(n) is unbiased enough across n.
class RngBelowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowSweep, RoughlyUniform) {
  const std::uint64_t n = GetParam();
  Rng rng(1000 + n);
  std::vector<int> counts(n, 0);
  const int draws = 20000 * static_cast<int>(n);
  for (int i = 0; i < draws; ++i) ++counts[rng.below(n)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 1.0 / static_cast<double>(n),
                0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RngBelowSweep,
                         ::testing::Values(2, 3, 5, 7, 10));

}  // namespace
}  // namespace hbp::util
