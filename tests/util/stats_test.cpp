#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hbp::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(6);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(3.0);
  h.add(9.999);
  h.add(42.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.4);
}

TEST(IntCounter, FrequenciesAndMean) {
  IntCounter c;
  c.add(2);
  c.add(2);
  c.add(3);
  c.add(5);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_DOUBLE_EQ(c.frequency(2), 0.5);
  EXPECT_DOUBLE_EQ(c.frequency(7), 0.0);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
}

}  // namespace
}  // namespace hbp::util
