#include "pushback/token_bucket.hpp"

#include <gtest/gtest.h>

namespace hbp::pushback {
namespace {

TEST(TokenBucket, BurstThenThrottle) {
  TokenBucket tb(8'000.0, 2'000.0, sim::SimTime::zero());  // 1 kB/s, 2 kB burst
  // Burst allows two 1000-byte packets immediately.
  EXPECT_TRUE(tb.allow(sim::SimTime::zero(), 1000));
  EXPECT_TRUE(tb.allow(sim::SimTime::zero(), 1000));
  EXPECT_FALSE(tb.allow(sim::SimTime::zero(), 1000));
  EXPECT_EQ(tb.passed(), 2u);
  EXPECT_EQ(tb.dropped(), 1u);
}

TEST(TokenBucket, RefillsOverTime) {
  TokenBucket tb(8'000.0, 1'000.0, sim::SimTime::zero());
  EXPECT_TRUE(tb.allow(sim::SimTime::zero(), 1000));
  EXPECT_FALSE(tb.allow(sim::SimTime::millis(100), 1000));  // only 100 B back
  EXPECT_TRUE(tb.allow(sim::SimTime::seconds(1.1), 1000));
}

TEST(TokenBucket, LongRunRateConformance) {
  TokenBucket tb(80'000.0, 10'000.0, sim::SimTime::zero());  // 10 kB/s
  int passed = 0;
  // Offer 100 kB/s for 10 s in 1000-byte packets.
  for (int ms = 0; ms < 10'000; ms += 10) {
    if (tb.allow(sim::SimTime::millis(ms), 1000)) ++passed;
  }
  // ~10 kB/s * 10 s = 100 packets (+ initial burst of 10).
  EXPECT_NEAR(passed, 110, 3);
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket tb(80'000.0, 5'000.0, sim::SimTime::zero());
  // A long idle period cannot bank more than the burst.
  int passed = 0;
  while (tb.allow(sim::SimTime::seconds(100), 1000)) ++passed;
  EXPECT_EQ(passed, 5);
}

TEST(TokenBucket, SetRateTakesEffect) {
  TokenBucket tb(8'000.0, 1'000.0, sim::SimTime::zero());
  tb.allow(sim::SimTime::zero(), 1000);  // drain
  tb.set_rate(80'000.0);                 // 10x faster refill
  EXPECT_TRUE(tb.allow(sim::SimTime::millis(200), 1000));
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket tb(0.0, 1'000.0, sim::SimTime::zero());
  EXPECT_TRUE(tb.allow(sim::SimTime::zero(), 1000));
  EXPECT_FALSE(tb.allow(sim::SimTime::seconds(100), 1));
}

}  // namespace
}  // namespace hbp::pushback
