// Pushback/ACC behaviour on a small Y topology:
//
//   attacker -- r_up_a --+
//                        r_congested == (thin link) == server
//   client   -- r_up_b --+
//
// The congested router detects drops on the thin link, rate-limits the
// destination-prefix aggregate, and pushes shares upstream.
#include "pushback/agent.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/host.hpp"
#include "net/network.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"

namespace hbp::pushback {
namespace {

struct PushbackFixture : public ::testing::Test {
  void SetUp() override {
    congested = &network.add_node<net::Router>("congested");
    up_a = &network.add_node<net::Router>("up_a");
    up_b = &network.add_node<net::Router>("up_b");
    server = &network.add_node<net::Host>("server");
    attacker = &network.add_node<net::Host>("attacker");
    client = &network.add_node<net::Host>("client");

    net::LinkParams fast;
    fast.capacity_bps = 100e6;
    fast.delay = sim::SimTime::millis(1);
    net::LinkParams thin;
    thin.capacity_bps = 2e6;
    thin.delay = sim::SimTime::millis(1);
    thin.queue_bytes = 16'000;

    network.connect(congested->id(), server->id(), thin);
    network.connect(up_a->id(), congested->id(), fast);
    network.connect(up_b->id(), congested->id(), fast);
    network.connect(attacker->id(), up_a->id(), fast);
    network.connect(client->id(), up_b->id(), fast);
    server->set_address(network.assign_address(server->id()));
    attacker->set_address(network.assign_address(attacker->id()));
    client->set_address(network.assign_address(client->id()));
    network.compute_routes();

    control = std::make_unique<net::ControlPlane>(simulator,
                                                  net::ControlPlane::Params{});
    PushbackParams params;
    params.aggregate_prefix_shift = 4;
    system = std::make_unique<PushbackSystem>(simulator, network, *control,
                                              params);
  }

  void install_all() {
    const std::vector<sim::NodeId> routers{congested->id(), up_a->id(),
                                           up_b->id()};
    system->install(routers);
  }

  sim::Simulator simulator;
  net::Network network{simulator};
  net::Router* congested = nullptr;
  net::Router* up_a = nullptr;
  net::Router* up_b = nullptr;
  net::Host* server = nullptr;
  net::Host* attacker = nullptr;
  net::Host* client = nullptr;
  std::unique_ptr<net::ControlPlane> control;
  std::unique_ptr<PushbackSystem> system;
  util::Rng rng{3};
};

TEST_F(PushbackFixture, DetectsCongestionAndCreatesSession) {
  install_all();
  traffic::CbrParams flood;
  flood.rate_bps = 10e6;  // 5x the thin link
  flood.is_attack = true;
  traffic::CbrSource source(simulator, *attacker, rng, flood,
                            [this] { return server->address(); },
                            traffic::random_spoof());
  source.start();
  simulator.run_until(sim::SimTime::seconds(5));
  EXPECT_GE(system->agent(congested->id())->active_sessions(), 1u);
  EXPECT_GT(system->total_limited_drops(), 0u);
}

TEST_F(PushbackFixture, PropagatesUpstream) {
  install_all();
  traffic::CbrParams flood;
  flood.rate_bps = 10e6;
  flood.is_attack = true;
  traffic::CbrSource source(simulator, *attacker, rng, flood,
                            [this] { return server->address(); },
                            traffic::random_spoof());
  source.start();
  simulator.run_until(sim::SimTime::seconds(6));
  EXPECT_GT(system->requests_sent(), 0u);
  // The attack-side upstream router holds a session; drops move upstream.
  EXPECT_GE(system->agent(up_a->id())->active_sessions(), 1u);
  EXPECT_GT(system->agent(up_a->id())->limited_drops(), 0u);
}

TEST_F(PushbackFixture, ProtectsLinkUtilization) {
  install_all();
  traffic::CbrParams flood;
  flood.rate_bps = 20e6;  // 10x overload
  flood.is_attack = true;
  traffic::CbrSource source(simulator, *attacker, rng, flood,
                            [this] { return server->address(); },
                            traffic::random_spoof());
  source.start();
  simulator.run_until(sim::SimTime::seconds(10));
  // After control engages, offered load at the thin link is near target:
  // the queue stops overflowing (few drops in late windows).
  const auto& queue = network.link(congested->id(), 0).queue();
  const std::uint64_t drops_at_10 = queue.drops();
  simulator.run_until(sim::SimTime::seconds(20));
  const std::uint64_t late_drops = queue.drops() - drops_at_10;
  // Without control ~18 Mb/s excess = ~2250 packets/s dropped; with
  // control the late-window drop rate collapses by >90%.
  EXPECT_LT(late_drops, 2250u * 10u / 10u);
}

TEST_F(PushbackFixture, SessionsExpireAfterAttackEnds) {
  install_all();
  traffic::CbrParams flood;
  flood.rate_bps = 10e6;
  flood.is_attack = true;
  flood.stop = sim::SimTime::seconds(5);
  traffic::CbrSource source(simulator, *attacker, rng, flood,
                            [this] { return server->address(); },
                            traffic::random_spoof());
  source.start();
  simulator.run_until(sim::SimTime::seconds(5));
  EXPECT_GT(system->total_sessions(), 0u);
  simulator.run_until(sim::SimTime::seconds(20));
  EXPECT_EQ(system->total_sessions(), 0u);
  EXPECT_GT(system->cancels_sent(), 0u);
}

TEST_F(PushbackFixture, InnocentBystanderSharesAggregatePain) {
  // The client sends to the server too: the coarse prefix aggregate lumps
  // it with the attack, so some legitimate packets die in the limiters —
  // the paper's collateral-damage effect, measurable at small scale.
  install_all();
  traffic::CbrParams flood;
  flood.rate_bps = 10e6;
  flood.is_attack = true;
  traffic::CbrSource bad(simulator, *attacker, rng, flood,
                         [this] { return server->address(); },
                         traffic::random_spoof());
  bad.start();
  util::Rng rng2(99);
  traffic::CbrParams legit;
  legit.rate_bps = 0.8e6;
  traffic::CbrSource good(simulator, *client, rng2, legit,
                          [this] { return server->address(); });
  good.start();

  std::uint64_t legit_delivered = 0;
  auto on_packet = [&](const sim::Packet& p) {
    if (!p.is_attack) ++legit_delivered;
  };
  server->set_receiver(on_packet);
  simulator.run_until(sim::SimTime::seconds(20));
  EXPECT_LT(legit_delivered, good.packets_sent());  // some loss
  EXPECT_GT(legit_delivered, 0u);                   // but not starved
}

TEST_F(PushbackFixture, NoSessionsWithoutCongestion) {
  install_all();
  traffic::CbrParams gentle;
  gentle.rate_bps = 0.4e6;
  traffic::CbrSource source(simulator, *client, rng, gentle,
                            [this] { return server->address(); });
  source.start();
  simulator.run_until(sim::SimTime::seconds(10));
  EXPECT_EQ(system->total_sessions(), 0u);
  EXPECT_EQ(system->requests_sent(), 0u);
}

TEST_F(PushbackFixture, WeightedSplitFavorsHeavyPorts) {
  // Level-k flavour: give up_b (the client side) weight 10; its share of
  // the pushback limit grows relative to the attacker side.
  system->set_port_weights(congested->id(), {1.0, 1.0, 10.0});
  install_all();
  EXPECT_DOUBLE_EQ(system->port_weight(congested->id(), 2), 10.0);
  EXPECT_DOUBLE_EQ(system->port_weight(congested->id(), 0), 1.0);
  EXPECT_DOUBLE_EQ(system->port_weight(up_a->id(), 0), 1.0);  // default
}

}  // namespace
}  // namespace hbp::pushback
