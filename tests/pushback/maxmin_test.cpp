#include "pushback/maxmin.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace hbp::pushback {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(MaxMin, AllDemandsFitAreGranted) {
  const std::vector<double> d{1.0, 2.0, 3.0};
  const auto a = maxmin_allocate(d, 10.0);
  EXPECT_EQ(a, d);
}

TEST(MaxMin, EqualSplitWhenAllExceed) {
  const std::vector<double> d{10.0, 10.0, 10.0};
  const auto a = maxmin_allocate(d, 9.0);
  for (const double x : a) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(MaxMin, SmallDemandsKeptLargeCapped) {
  // Classic example: demands {1, 4, 8}, limit 9 => {1, 4, 4}.
  const auto a = maxmin_allocate(std::vector<double>{1.0, 4.0, 8.0}, 9.0);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[1], 4.0);
  EXPECT_DOUBLE_EQ(a[2], 4.0);
}

TEST(MaxMin, IterativeRelease) {
  // {1, 2, 10, 10}, limit 12: round 1 fair=3 freezes 1 and 2; remaining 9
  // over two => 4.5 each.
  const auto a = maxmin_allocate(std::vector<double>{1.0, 2.0, 10.0, 10.0}, 12.0);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
  EXPECT_DOUBLE_EQ(a[2], 4.5);
  EXPECT_DOUBLE_EQ(a[3], 4.5);
}

TEST(MaxMin, ZeroLimitAllZero) {
  const auto a = maxmin_allocate(std::vector<double>{5.0, 7.0}, 0.0);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
}

TEST(MaxMin, EmptyDemands) {
  EXPECT_TRUE(maxmin_allocate(std::vector<double>{}, 5.0).empty());
}

TEST(MaxMinWeighted, SharesProportionalToWeights) {
  // Both saturated: weight-2 port gets twice the share.
  const auto a = maxmin_allocate_weighted(std::vector<double>{10.0, 10.0},
                                          std::vector<double>{1.0, 2.0}, 9.0);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 6.0);
}

TEST(MaxMinWeighted, LightDemandStillFreezes) {
  const auto a = maxmin_allocate_weighted(std::vector<double>{0.5, 10.0},
                                          std::vector<double>{1.0, 1.0}, 5.0);
  EXPECT_DOUBLE_EQ(a[0], 0.5);
  EXPECT_DOUBLE_EQ(a[1], 4.5);
}

// Property sweep: invariants for random inputs.
class MaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperty, Invariants) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.below(8);
    std::vector<double> demands(n);
    std::vector<double> weights(n);
    for (std::size_t i = 0; i < n; ++i) {
      demands[i] = rng.uniform(0.0, 10.0);
      weights[i] = rng.uniform(0.1, 5.0);
    }
    const double limit = rng.uniform(0.0, 20.0);
    const auto alloc = maxmin_allocate_weighted(demands, weights, limit);

    ASSERT_EQ(alloc.size(), n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Feasibility: 0 <= alloc <= demand.
      ASSERT_GE(alloc[i], -1e-9);
      ASSERT_LE(alloc[i], demands[i] + 1e-9);
      total += alloc[i];
    }
    // Capacity: sum <= limit.
    ASSERT_LE(total, limit + 1e-6);
    // Efficiency: either all demands met or the limit is used up.
    const double demand_total = sum(demands);
    if (demand_total <= limit) {
      ASSERT_NEAR(total, demand_total, 1e-6);
    } else {
      ASSERT_NEAR(total, limit, 1e-6);
    }
    // Max-min property: an unsatisfied i cannot have a smaller normalized
    // share than any j with a positive allocation above its share.
    for (std::size_t i = 0; i < n; ++i) {
      if (alloc[i] >= demands[i] - 1e-9) continue;  // satisfied
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        if (alloc[j] / weights[j] > alloc[i] / weights[i] + 1e-6) {
          // j got a bigger normalized share than unsatisfied i: only
          // admissible if j is exactly at its own demand (frozen earlier).
          ASSERT_NEAR(alloc[j], demands[j], 1e-6)
              << "max-min violated: i=" << i << " j=" << j;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace hbp::pushback
