#include <gtest/gtest.h>

#include "net/host.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "sim/simulator.hpp"
#include "traffic/cbr.hpp"
#include "traffic/follower.hpp"
#include "traffic/onoff.hpp"
#include "traffic/probe.hpp"
#include "traffic/spoof.hpp"

namespace hbp::traffic {
namespace {

struct TrafficFixture : public ::testing::Test {
  void SetUp() override {
    src = &network.add_node<net::Host>("src");
    dst = &network.add_node<net::Host>("dst");
    net::LinkParams link;
    link.capacity_bps = 100e6;
    link.delay = sim::SimTime::millis(1);
    network.connect(src->id(), dst->id(), link);
    src->set_address(network.assign_address(src->id()));
    dst->set_address(network.assign_address(dst->id()));
    network.compute_routes();
  }

  sim::Simulator simulator;
  net::Network network{simulator};
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  util::Rng rng{123};
};

TEST_F(TrafficFixture, CbrRateAccuracy) {
  CbrParams params;
  params.rate_bps = 0.8e6;  // 100 packets/s at 1000 B
  params.packet_size = 1000;
  CbrSource cbr(simulator, *src, rng, params,
                [this] { return dst->address(); });
  cbr.start();
  simulator.run_until(sim::SimTime::seconds(10));
  EXPECT_NEAR(static_cast<double>(cbr.packets_sent()), 1000.0, 15.0);
  EXPECT_EQ(dst->packets_received(), cbr.packets_sent());
}

TEST_F(TrafficFixture, CbrStartStopWindow) {
  CbrParams params;
  params.rate_bps = 0.8e6;
  params.start = sim::SimTime::seconds(2);
  params.stop = sim::SimTime::seconds(4);
  CbrSource cbr(simulator, *src, rng, params,
                [this] { return dst->address(); });
  cbr.start();
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(cbr.packets_sent(), 0u);
  simulator.run_until(sim::SimTime::seconds(10));
  EXPECT_NEAR(static_cast<double>(cbr.packets_sent()), 200.0, 10.0);
}

TEST_F(TrafficFixture, CbrPauseResume) {
  CbrParams params;
  params.rate_bps = 0.8e6;
  CbrSource cbr(simulator, *src, rng, params,
                [this] { return dst->address(); });
  cbr.start();
  simulator.run_until(sim::SimTime::seconds(1));
  const auto sent_before = cbr.packets_sent();
  cbr.pause();
  simulator.run_until(sim::SimTime::seconds(3));
  EXPECT_EQ(cbr.packets_sent(), sent_before);
  cbr.resume();
  simulator.run_until(sim::SimTime::seconds(4));
  EXPECT_GT(cbr.packets_sent(), sent_before);
}

TEST_F(TrafficFixture, CbrSkipsWhenDstIsZero) {
  CbrParams params;
  params.rate_bps = 0.8e6;
  int calls = 0;
  CbrSource cbr(simulator, *src, rng, params, [&]() -> sim::Address {
    ++calls;
    return 0;
  });
  cbr.start();
  simulator.run_until(sim::SimTime::seconds(2));
  EXPECT_GT(calls, 100);
  EXPECT_EQ(cbr.packets_sent(), 0u);
}

TEST_F(TrafficFixture, SpoofPoliciesShapeSource) {
  sim::Address last_src = 0;
  auto on_packet = [&](const sim::Packet& p) { last_src = p.src; };
  dst->set_receiver(on_packet);

  CbrParams params;
  params.rate_bps = 8e6;
  {
    CbrSource cbr(simulator, *src, rng, params,
                  [this] { return dst->address(); }, no_spoof());
    cbr.start();
    simulator.run_until(simulator.now() + sim::SimTime::millis(200));
    EXPECT_EQ(last_src, src->address());
  }
  {
    CbrSource cbr(simulator, *src, rng, params,
                  [this] { return dst->address(); }, fixed_spoof(777));
    cbr.start();
    simulator.run_until(simulator.now() + sim::SimTime::millis(200));
    EXPECT_EQ(last_src, 777u);
  }
  {
    CbrSource cbr(simulator, *src, rng, params,
                  [this] { return dst->address(); }, subnet_spoof(5000, 10));
    cbr.start();
    simulator.run_until(simulator.now() + sim::SimTime::millis(200));
    EXPECT_GE(last_src, 5000u);
    EXPECT_LT(last_src, 5010u);
  }
}

TEST_F(TrafficFixture, RandomSpoofVariesPerPacket) {
  std::set<sim::Address> sources;
  auto on_packet = [&](const sim::Packet& p) { sources.insert(p.src); };
  dst->set_receiver(on_packet);
  CbrParams params;
  params.rate_bps = 8e6;  // 1000 pps
  CbrSource cbr(simulator, *src, rng, params,
                [this] { return dst->address(); }, random_spoof());
  cbr.start();
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_GT(sources.size(), 900u);  // essentially all distinct
}

TEST_F(TrafficFixture, OnOffDutyCycle) {
  CbrParams params;
  params.rate_bps = 0.8e6;  // 100 pps
  CbrSource cbr(simulator, *src, rng, params,
                [this] { return dst->address(); });
  OnOffShaper shaper(simulator, cbr, sim::SimTime::seconds(1),
                     sim::SimTime::seconds(3));
  shaper.start();
  cbr.start();
  simulator.run_until(sim::SimTime::seconds(40));
  // Duty cycle 25%: ~1000 packets instead of ~4000.
  EXPECT_NEAR(static_cast<double>(cbr.packets_sent()), 1000.0, 120.0);
  // Bursts begin at t = 0, 4, ..., 40 — the one at the horizon still fires.
  EXPECT_EQ(shaper.bursts_started(), 11u);
}

TEST_F(TrafficFixture, FollowerStopsAfterDelayAndResumes) {
  CbrParams params;
  params.rate_bps = 0.8e6;
  CbrSource cbr(simulator, *src, rng, params,
                [this] { return dst->address(); });
  FollowerShaper follower(simulator, cbr, sim::SimTime::seconds(1));
  cbr.start();
  simulator.run_until(sim::SimTime::seconds(2));

  follower.on_target_honeypot_start();
  simulator.run_until(sim::SimTime::seconds(2.5));
  EXPECT_FALSE(cbr.paused());  // still inside d_follow
  simulator.run_until(sim::SimTime::seconds(3.5));
  EXPECT_TRUE(cbr.paused());   // went quiet after d_follow
  EXPECT_EQ(follower.evasions(), 1u);

  follower.on_target_honeypot_end();
  EXPECT_FALSE(cbr.paused());
}

TEST_F(TrafficFixture, FollowerIgnoresStalePauseAfterEpochEnd) {
  CbrParams params;
  params.rate_bps = 0.8e6;
  CbrSource cbr(simulator, *src, rng, params,
                [this] { return dst->address(); });
  FollowerShaper follower(simulator, cbr, sim::SimTime::seconds(2));
  cbr.start();
  follower.on_target_honeypot_start();
  simulator.run_until(sim::SimTime::seconds(1));
  follower.on_target_honeypot_end();  // epoch ended before d_follow
  simulator.run_until(sim::SimTime::seconds(5));
  EXPECT_FALSE(cbr.paused());
  EXPECT_EQ(follower.evasions(), 0u);
}

TEST_F(TrafficFixture, ProbeSourcePoissonCount) {
  ProbeSource probe(simulator, *src, rng, {dst->address()}, 10.0,
                    sim::SimTime::zero(), sim::SimTime::seconds(100));
  probe.start();
  simulator.run_until(sim::SimTime::seconds(100));
  // ~1000 probes expected; Poisson sd ~32.
  EXPECT_NEAR(static_cast<double>(probe.probes_sent()), 1000.0, 150.0);
}

TEST_F(TrafficFixture, ProbePacketsAreBenignType) {
  sim::PacketType seen = sim::PacketType::kData;
  bool attack = true;
  auto on_packet = [&](const sim::Packet& p) {
    seen = p.type;
    attack = p.is_attack;
  };
  dst->set_receiver(on_packet);
  ProbeSource probe(simulator, *src, rng, {dst->address()}, 100.0,
                    sim::SimTime::zero(), sim::SimTime::seconds(5));
  probe.start();
  simulator.run_until(sim::SimTime::seconds(5));
  EXPECT_EQ(seen, sim::PacketType::kProbe);
  EXPECT_FALSE(attack);
}

}  // namespace
}  // namespace hbp::traffic
