#include "telemetry/json.hpp"

#include <gtest/gtest.h>

namespace hbp::telemetry {
namespace {

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, FormatsDoublesDeterministically) {
  // Integral doubles render as integers (no trailing .0 noise) ...
  EXPECT_EQ(JsonWriter::format_double(0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(42.0), "42");
  EXPECT_EQ(JsonWriter::format_double(-3.0), "-3");
  // ... and non-integral doubles round-trip exactly.
  const std::string third = JsonWriter::format_double(1.0 / 3.0);
  EXPECT_EQ(std::stod(third), 1.0 / 3.0);
}

TEST(JsonWriter, NestedStructure) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "x");
  w.key("values").begin_array();
  w.value(std::uint64_t{1});
  w.value(2.5);
  w.value(true);
  w.end_array();
  w.key("nested").begin_object();
  w.kv("k", std::int64_t{-7});
  w.end_object();
  w.end_object();

  const std::string want =
      "{\n"
      "  \"name\": \"x\",\n"
      "  \"values\": [\n"
      "    1,\n"
      "    2.5,\n"
      "    true\n"
      "  ],\n"
      "  \"nested\": {\n"
      "    \"k\": -7\n"
      "  }\n"
      "}";
  EXPECT_EQ(w.str(), want);
}

TEST(JsonWriter, EmptyContainersAndRaw) {
  JsonWriter w;
  w.begin_object();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.key("raw").raw("null");
  w.end_object();
  EXPECT_NE(w.str().find("\"empty_obj\": {}"), std::string::npos);
  EXPECT_NE(w.str().find("\"empty_arr\": []"), std::string::npos);
  EXPECT_NE(w.str().find("\"raw\": null"), std::string::npos);
}

TEST(JsonWriter, TwoRendersAreByteIdentical) {
  auto render = [] {
    JsonWriter w;
    w.begin_object();
    w.kv("a", 0.1 + 0.2);
    w.kv("b", std::uint64_t{18446744073709551615ull});
    w.end_object();
    return w.str();
  };
  EXPECT_EQ(render(), render());
}

}  // namespace
}  // namespace hbp::telemetry
