#include "telemetry/profiler.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace hbp::telemetry {
namespace {

TEST(LoopProfiler, AttributesCountsByLabel) {
  LoopProfiler prof;
  static const char* kA = "a";
  static const char* kB = "b";
  prof.record(kA, std::chrono::nanoseconds(10));
  prof.record(kA, std::chrono::nanoseconds(20));
  prof.record(kB, std::chrono::nanoseconds(5));
  prof.record(nullptr, std::chrono::nanoseconds(1));

  EXPECT_EQ(prof.total_events(), 4u);
  EXPECT_EQ(prof.total_wall_ns(), 36u);
  const auto by_type = prof.by_type();
  ASSERT_EQ(by_type.size(), 3u);
  // Sorted by label: "a", "b", "other".
  EXPECT_STREQ(by_type[0].label, "a");
  EXPECT_EQ(by_type[0].count, 2u);
  EXPECT_EQ(by_type[0].wall_ns, 30u);
  EXPECT_STREQ(by_type[1].label, "b");
  EXPECT_STREQ(by_type[2].label, "other");
}

TEST(LoopProfiler, TracksPeakQueueDepth) {
  LoopProfiler prof;
  prof.note_queue_depth(3);
  prof.note_queue_depth(10);
  prof.note_queue_depth(4);
  EXPECT_EQ(prof.peak_queue_depth(), 10u);
}

TEST(SimulatorProfiling, CountsAreDeterministicAndDigestUnchanged) {
  auto run = [](bool profile) {
    sim::Simulator simulator;
    if (profile) simulator.enable_profiling();
    int ticks = 0;
    std::function<void()> tick = [&] {
      if (++ticks < 100) {
        simulator.after(sim::SimTime::millis(1), tick, "tick");
      }
    };
    simulator.after(sim::SimTime::millis(1), tick, "tick");
    simulator.at(sim::SimTime::millis(50), [] {}, "oneshot");
    simulator.run_all();
    return simulator.trace().value();
  };

  // Profiling is purely observational: the trace digest must not move.
  EXPECT_EQ(run(false), run(true));

  sim::Simulator simulator;
  simulator.enable_profiling();
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) simulator.after(sim::SimTime::millis(1), tick, "tick");
  };
  simulator.after(sim::SimTime::millis(1), tick, "tick");
  simulator.run_all();
  ASSERT_TRUE(simulator.profiling_enabled());
  const auto by_type = simulator.profiler()->by_type();
  ASSERT_EQ(by_type.size(), 1u);
  EXPECT_STREQ(by_type[0].label, "tick");
  EXPECT_EQ(by_type[0].count, 100u);
  EXPECT_GE(simulator.profiler()->peak_queue_depth(), 1u);
}

TEST(SimulatorProfiling, DisabledProfilerGuardNeverTouchesTelemetry) {
  // The dispatch loop guards every profiler/telemetry touch behind
  // `profiler_ != nullptr`: with profiling off, a full run must leave the
  // lazy registry unconstructed — zero registry mutations, not just zero
  // visible counters.
  sim::Simulator simulator;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) simulator.after(sim::SimTime::millis(1), tick, "tick");
  };
  simulator.after(sim::SimTime::millis(1), tick, "tick");
  simulator.run_all();

  EXPECT_FALSE(simulator.profiling_enabled());
  EXPECT_EQ(simulator.profiler(), nullptr);
  EXPECT_FALSE(simulator.has_telemetry());
  EXPECT_EQ(simulator.events_executed(), 100u);
}

TEST(SimulatorTelemetry, LazyRegistrySharedWithResults) {
  sim::Simulator simulator;
  simulator.telemetry().counter("x").add(2);
  const auto shared = simulator.telemetry_ptr();
  EXPECT_EQ(shared->find_counter("x")->value(), 2u);
  EXPECT_EQ(&simulator.telemetry(), shared.get());
}

}  // namespace
}  // namespace hbp::telemetry
