#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hbp::telemetry {
namespace {

TEST(Registry, CreateOnFirstUseReturnsSameInstrument) {
  Registry reg;
  Counter& c1 = reg.counter("a.count");
  c1.add(3);
  Counter& c2 = reg.counter("a.count");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("a.count"));
  EXPECT_FALSE(reg.contains("a.missing"));
}

TEST(Registry, FindIsTypedAndNullOnMismatch) {
  Registry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(2.0);
  reg.histogram("h").record(7);
  reg.time_series("s", sim::SimTime::seconds(1), TimeSeries::Mode::kSum)
      .record(sim::SimTime::zero(), 1.0);

  ASSERT_NE(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_counter("c")->value(), 1u);
  ASSERT_NE(reg.find_gauge("g"), nullptr);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  ASSERT_NE(reg.find_time_series("s"), nullptr);

  EXPECT_EQ(reg.find_counter("g"), nullptr);
  EXPECT_EQ(reg.find_gauge("c"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(Registry, VisitIsNameOrderedWithOneNonNullPointer) {
  Registry reg;
  reg.gauge("b.gauge");
  reg.counter("a.count");
  reg.histogram("c.hist");

  std::vector<std::string> names;
  reg.visit([&](const std::string& name, const Counter* c, const Gauge* g,
                const Log2Histogram* h, const TimeSeries* s) {
    names.push_back(name);
    int non_null = 0;
    if (c != nullptr) ++non_null;
    if (g != nullptr) ++non_null;
    if (h != nullptr) ++non_null;
    if (s != nullptr) ++non_null;
    EXPECT_EQ(non_null, 1);
  });
  const std::vector<std::string> want{"a.count", "b.gauge", "c.hist"};
  EXPECT_EQ(names, want);
}

TEST(Registry, MergeFoldsEveryInstrumentKind) {
  Registry a;
  a.counter("n.count").add(10);
  a.gauge("n.gauge").set(1.0);
  a.histogram("n.hist").record(4);
  a.time_series("n.series", sim::SimTime::seconds(1), TimeSeries::Mode::kSum)
      .record(sim::SimTime::millis(100), 2.0);

  Registry b;
  b.counter("n.count").add(5);
  b.counter("only_b.count").add(1);
  b.gauge("n.gauge").set(9.0);
  b.histogram("n.hist").record(16);
  b.time_series("n.series", sim::SimTime::seconds(1), TimeSeries::Mode::kSum)
      .record(sim::SimTime::millis(200), 3.0);

  a.merge(b);
  EXPECT_EQ(a.find_counter("n.count")->value(), 15u);
  EXPECT_EQ(a.find_counter("only_b.count")->value(), 1u);
  EXPECT_DOUBLE_EQ(a.find_gauge("n.gauge")->value(), 9.0);
  EXPECT_EQ(a.find_histogram("n.hist")->count(), 2u);
  EXPECT_EQ(a.find_histogram("n.hist")->max(), 16u);
  EXPECT_DOUBLE_EQ(a.find_time_series("n.series")->bin_value(0), 5.0);
}

}  // namespace
}  // namespace hbp::telemetry
