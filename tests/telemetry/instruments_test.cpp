#include "telemetry/instruments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace hbp::telemetry {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Log2Histogram, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Log2Histogram::bucket_of(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(Log2Histogram::bucket_of(std::uint64_t{1} << 63), 64u);
  EXPECT_EQ(Log2Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64u);

  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_hi(b)), b);
  }
  EXPECT_EQ(Log2Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_hi(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_hi(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_lo(64), std::uint64_t{1} << 63);
  EXPECT_EQ(Log2Histogram::bucket_hi(64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Log2Histogram, Empty) {
  const Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Log2Histogram, RecordsStats) {
  Log2Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  EXPECT_DOUBLE_EQ(h.mean(), 26.5);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // 5 in [4, 7]
  EXPECT_EQ(h.bucket_count(7), 1u);  // 100 in [64, 127]
}

TEST(Log2Histogram, OverflowBucketHoldsMaxValues) {
  Log2Histogram h;
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  h.record(top);
  h.record(top);
  EXPECT_EQ(h.bucket_count(Log2Histogram::kBuckets - 1), 2u);
  EXPECT_EQ(h.max(), top);
  // Quantiles stay clamped to the observed range even in the top bucket.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(top));
}

TEST(Log2Histogram, QuantilesClampedAndMonotone) {
  Log2Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  const double p50 = h.quantile(0.5);
  const double p90 = h.quantile(0.9);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(h.quantile(0.0), p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.quantile(1.0));
  // Bucket interpolation is coarse but the median of 1..1000 must land
  // inside the bucket [512, 1000-ish]; loosely: within a factor of 2.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
}

TEST(Log2Histogram, QuantileEdgeBehavior) {
  Log2Histogram h;
  // All-zero samples: bucket 0 is degenerate ([0, 0]), so every quantile
  // must be exactly 0 — interpolation has no width to spread over.
  h.record(0);
  h.record(0);
  h.record(0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);

  // q outside [0, 1] clamps to the endpoints; NaN reads as q = 0.
  h.record(200);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 200.0);
  EXPECT_DOUBLE_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 0.0);

  // The endpoints report the exact tracked extremes, not the bucket edges:
  // 200 sits in bucket [128, 255] but q = 1 must return 200 exactly.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);

  // Same at the low end: min 150 is strictly inside its bucket's range.
  Log2Histogram g;
  g.record(150);
  g.record(151);
  g.record(152);
  EXPECT_DOUBLE_EQ(g.quantile(0.0), 150.0);
  EXPECT_DOUBLE_EQ(g.quantile(1.0), 152.0);
}

TEST(Log2Histogram, QuantileOverflowBucketStaysFinite) {
  // Samples in the overflow bucket [2^63, 2^64 - 1] must interpolate with
  // finite arithmetic and clamp to the observed extremes.
  Log2Histogram h;
  const std::uint64_t lo = std::uint64_t{1} << 63;
  const std::uint64_t hi = std::numeric_limits<std::uint64_t>::max();
  h.record(lo);
  h.record(hi);
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
    EXPECT_GE(v, static_cast<double>(lo)) << "q=" << q;
    EXPECT_LE(v, static_cast<double>(hi)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), static_cast<double>(lo));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(hi));
}

TEST(Log2Histogram, QuantileSingleSample) {
  Log2Histogram h;
  h.record(37);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 37.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 37.0);
}

TEST(Log2Histogram, Merge) {
  Log2Histogram a;
  Log2Histogram b;
  a.record(1);
  a.record(8);
  b.record(0);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 1009.0);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(4), 1u);
  EXPECT_EQ(a.bucket_count(10), 1u);  // 1000 in [512, 1023]

  // Merging an empty histogram is a no-op, including min/max.
  const Log2Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 0u);

  // Merging into an empty histogram copies min/max instead of min-ing
  // against the 0 default.
  Log2Histogram c;
  Log2Histogram d;
  d.record(16);
  c.merge(d);
  EXPECT_EQ(c.min(), 16u);
  EXPECT_EQ(c.max(), 16u);
}

TEST(TimeSeries, SumMode) {
  TimeSeries s(sim::SimTime::seconds(1), TimeSeries::Mode::kSum);
  s.record(sim::SimTime::millis(100), 10.0);
  s.record(sim::SimTime::millis(900), 5.0);
  s.record(sim::SimTime::millis(2500), 7.0);
  EXPECT_EQ(s.bin_count(), 3u);
  EXPECT_DOUBLE_EQ(s.bin_value(0), 15.0);
  EXPECT_DOUBLE_EQ(s.bin_value(1), 0.0);  // untouched
  EXPECT_DOUBLE_EQ(s.bin_value(2), 7.0);
  EXPECT_DOUBLE_EQ(s.bin_value(99), 0.0);  // out of range
}

TEST(TimeSeries, BinBoundaryIsHalfOpen) {
  TimeSeries s(sim::SimTime::seconds(1), TimeSeries::Mode::kSum);
  s.record(sim::SimTime::seconds(1), 1.0);  // exactly t = 1 s -> bin 1
  EXPECT_DOUBLE_EQ(s.bin_value(0), 0.0);
  EXPECT_DOUBLE_EQ(s.bin_value(1), 1.0);
}

TEST(TimeSeries, MaxAndLastModes) {
  TimeSeries mx(sim::SimTime::seconds(1), TimeSeries::Mode::kMax);
  mx.record(sim::SimTime::millis(10), -5.0);
  mx.record(sim::SimTime::millis(20), -7.0);
  EXPECT_DOUBLE_EQ(mx.bin_value(0), -5.0);  // max of negatives, not 0

  TimeSeries last(sim::SimTime::seconds(1), TimeSeries::Mode::kLast);
  last.record(sim::SimTime::millis(10), 3.0);
  last.record(sim::SimTime::millis(20), 9.0);
  EXPECT_DOUBLE_EQ(last.bin_value(0), 9.0);
}

TEST(TimeSeries, ValuesPadsWithZeros) {
  TimeSeries s(sim::SimTime::seconds(1), TimeSeries::Mode::kSum);
  s.record(sim::SimTime::millis(1500), 4.0);
  const auto dense = s.values(5);
  ASSERT_EQ(dense.size(), 5u);
  EXPECT_DOUBLE_EQ(dense[0], 0.0);
  EXPECT_DOUBLE_EQ(dense[1], 4.0);
  EXPECT_DOUBLE_EQ(dense[4], 0.0);
}

TEST(TimeSeries, Merge) {
  TimeSeries a(sim::SimTime::seconds(1), TimeSeries::Mode::kSum);
  TimeSeries b(sim::SimTime::seconds(1), TimeSeries::Mode::kSum);
  a.record(sim::SimTime::millis(500), 1.0);
  b.record(sim::SimTime::millis(600), 2.0);
  b.record(sim::SimTime::millis(3500), 4.0);
  a.merge(b);
  EXPECT_EQ(a.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(a.bin_value(0), 3.0);
  EXPECT_DOUBLE_EQ(a.bin_value(3), 4.0);

  TimeSeries m1(sim::SimTime::seconds(1), TimeSeries::Mode::kMax);
  TimeSeries m2(sim::SimTime::seconds(1), TimeSeries::Mode::kMax);
  m1.record(sim::SimTime::millis(100), -2.0);
  m2.record(sim::SimTime::millis(200), -9.0);
  m1.merge(m2);
  EXPECT_DOUBLE_EQ(m1.bin_value(0), -2.0);
}

}  // namespace
}  // namespace hbp::telemetry
