#include "telemetry/report.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hbp::telemetry {
namespace {

void fill_registry(Registry& reg) {
  reg.counter("net.drops").add(12);
  reg.gauge("pushback.sessions").set(2.0);
  reg.histogram("net.queue.depth").record(100);
  reg.time_series("scenario.goodput", sim::SimTime::seconds(1),
                  TimeSeries::Mode::kSum)
      .record(sim::SimTime::millis(500), 1000.0);
}

RunManifest make_manifest() {
  RunManifest m;
  m.name = "unit";
  m.seed = 7;
  m.trace_digest = 0xdeadbeef;
  m.events_executed = 1234;
  m.sim_seconds = 100.0;
  m.set("scheme", "hbp");
  m.set_int("leaves", 300);
  m.set_double("rate", 0.5);
  m.set_bool("progressive", true);
  return m;
}

TEST(RunReport, StructureAndSchema) {
  Registry reg;
  fill_registry(reg);
  PerfStats perf;
  perf.wall_seconds = 1.0;
  perf.events_executed = 1234;
  const std::string out = render_run_report(make_manifest(), &reg, &perf);
  EXPECT_NE(out.find("\"schema\": \"hbp-run-report/1\""), std::string::npos);
  EXPECT_NE(out.find("\"trace_digest\": \"0x00000000deadbeef\""),
            std::string::npos);
  EXPECT_NE(out.find("\"scheme\": \"hbp\""), std::string::npos);
  EXPECT_NE(out.find("\"leaves\": 300"), std::string::npos);
  EXPECT_NE(out.find("\"progressive\": true"), std::string::npos);
  EXPECT_NE(out.find("\"net.drops\""), std::string::npos);
  EXPECT_NE(out.find("\"type\": \"time_series\""), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(RunReport, PerfIsLastKeyAndOptional) {
  Registry reg;
  fill_registry(reg);
  PerfStats perf;
  perf.wall_seconds = 0.25;
  const std::string with_perf = render_run_report(make_manifest(), &reg, &perf);
  const auto perf_pos = with_perf.find("\"perf\":");
  ASSERT_NE(perf_pos, std::string::npos);
  // Nothing after "perf" but its own object: no other top-level key follows.
  EXPECT_EQ(with_perf.find("\"metrics\":", perf_pos), std::string::npos);

  ReportOptions no_perf;
  no_perf.include_perf = false;
  const std::string without =
      render_run_report(make_manifest(), &reg, &perf, no_perf);
  EXPECT_EQ(without.find("\"perf\":"), std::string::npos);
  // Truncating at `"perf":` and dropping the separator (",\n  ") leaves the
  // perf-less report minus its closing brace — the two documents share their
  // entire deterministic prefix.
  std::string prefix = with_perf.substr(0, perf_pos);
  while (!prefix.empty() &&
         (prefix.back() == ' ' || prefix.back() == '\n' ||
          prefix.back() == ',')) {
    prefix.pop_back();
  }
  EXPECT_EQ(prefix, without.substr(0, prefix.size()));
}

TEST(RunReport, DeterministicAcrossRenders) {
  // Host-dependent fields only enter through PerfStats; two renders of the
  // same data (and two registries built the same way) are byte-identical.
  Registry a;
  Registry b;
  fill_registry(a);
  fill_registry(b);
  ReportOptions no_perf;
  no_perf.include_perf = false;
  EXPECT_EQ(render_run_report(make_manifest(), &a, nullptr, no_perf),
            render_run_report(make_manifest(), &b, nullptr, no_perf));
}

TEST(BenchRecord, SchemaCountersAndPerfTail) {
  std::vector<BenchCounter> counters{{"capture_s", 12.5}, {"throughput", 0.8}};
  Registry reg;
  fill_registry(reg);
  PerfStats perf;
  perf.wall_seconds = 2.0;
  perf.events_executed = 1000;
  perf.sim_seconds = 10.0;
  const std::string out = render_bench_record("fig8", counters, &reg, perf);
  EXPECT_NE(out.find("\"schema\": \"hbp-bench/1\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"fig8\""), std::string::npos);
  EXPECT_NE(out.find("\"capture_s\": 12.5"), std::string::npos);
  EXPECT_NE(out.find("\"events_per_sec\": 500"), std::string::npos);
  EXPECT_NE(out.find("\"wall_per_sim_second\": 0.2"), std::string::npos);
  const auto perf_pos = out.find("\"perf\":");
  ASSERT_NE(perf_pos, std::string::npos);
  // Counters and metrics precede perf; perf is the trailing object.
  EXPECT_LT(out.find("\"counters\":"), perf_pos);
  EXPECT_LT(out.find("\"metrics\":"), perf_pos);
}

TEST(BenchRecord, ProfiledEventTypesAppearUnderPerf) {
  PerfStats perf;
  perf.wall_seconds = 1.0;
  perf.peak_queue_depth = 42;
  perf.event_types.push_back({"packet_arrival", 10, 1000});
  const std::string out = render_bench_record("x", {}, nullptr, perf);
  EXPECT_NE(out.find("\"peak_event_queue_depth\": 42"), std::string::npos);
  EXPECT_NE(out.find("\"packet_arrival\""), std::string::npos);
}

TEST(TimeseriesCsv, LongFormat) {
  Registry reg;
  reg.time_series("a.series", sim::SimTime::seconds(2), TimeSeries::Mode::kSum)
      .record(sim::SimTime::seconds(3), 5.0);
  reg.counter("ignored.counter").add(1);
  const std::string csv = render_timeseries_csv(reg);
  EXPECT_EQ(csv,
            "series,bin_start_seconds,value\n"
            "a.series,0,0\n"
            "a.series,2,5\n");
}

}  // namespace
}  // namespace hbp::telemetry
