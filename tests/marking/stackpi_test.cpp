#include "marking/stackpi.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/host.hpp"
#include "net/network.hpp"
#include "topo/tree.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"

namespace hbp::marking {
namespace {

// Two clients behind different branches plus one sharing the attacker's
// access path:
//
//   victim -- r0 -- r1 -- swA -- attacker, shared_client
//                \- r2 -- swB -- other_client
struct PiFixture : public ::testing::Test {
  void SetUp() override {
    r0 = &network.add_node<net::Router>("r0");
    r1 = &network.add_node<net::Router>("r1");
    r2 = &network.add_node<net::Router>("r2");
    net::LinkParams link;
    link.capacity_bps = 100e6;
    link.delay = sim::SimTime::millis(1);
    victim = &network.add_node<net::Host>("victim");
    network.connect(r0->id(), victim->id(), link);
    network.connect(r0->id(), r1->id(), link);
    network.connect(r0->id(), r2->id(), link);
    auto attach = [&](const char* name, sim::NodeId router) {
      auto& host = network.add_node<net::Host>(name);
      network.connect(router, host.id(), link);
      host.set_address(network.assign_address(host.id()));
      return &host;
    };
    victim->set_address(network.assign_address(victim->id()));
    attacker = attach("attacker", r1->id());
    shared_client = attach("shared", r1->id());
    other_client = attach("other", r2->id());
    network.compute_routes();

    for (net::Router* r : {r0, r1, r2}) {
      markers.push_back(std::make_unique<PiMarker>(*r, params));
    }
  }

  sim::Packet send_and_capture(net::Host* from, bool attack) {
    sim::Packet captured;
    bool got = false;
    auto on_packet = [&](const sim::Packet& p) {
      captured = p;
      got = true;
    };
    victim->set_receiver(on_packet);
    sim::Packet p;
    p.dst = victim->address();
    p.size_bytes = 100;
    p.is_attack = attack;
    from->send(std::move(p));
    simulator.run_until(simulator.now() + sim::SimTime::seconds(1));
    EXPECT_TRUE(got);
    return captured;
  }

  StackPiParams params;
  sim::Simulator simulator;
  net::Network network{simulator};
  net::Router* r0 = nullptr;
  net::Router* r1 = nullptr;
  net::Router* r2 = nullptr;
  net::Host* victim = nullptr;
  net::Host* attacker = nullptr;
  net::Host* shared_client = nullptr;
  net::Host* other_client = nullptr;
  std::vector<std::unique_ptr<PiMarker>> markers;
};

TEST_F(PiFixture, SamePathSameMarkDeterministic) {
  const auto a1 = send_and_capture(attacker, true);
  const auto a2 = send_and_capture(attacker, true);
  EXPECT_EQ(a1.mark, a2.mark);
  EXPECT_GE(a1.mark, 0);
}

TEST_F(PiFixture, MarkSurvivesSpoofedSource) {
  sim::Packet captured;
  auto on_packet = [&](const sim::Packet& p) { captured = p; };
  victim->set_receiver(on_packet);
  sim::Packet p;
  p.dst = victim->address();
  p.src = 0xabcdef;  // spoofed
  p.size_bytes = 100;
  attacker->send(std::move(p));
  simulator.run_until(simulator.now() + sim::SimTime::seconds(1));
  const auto honest = send_and_capture(attacker, true);
  EXPECT_EQ(captured.mark, honest.mark);  // path fingerprint, not source
}

TEST_F(PiFixture, DisjointPathsGetDistinctMarks) {
  const auto via_r1 = send_and_capture(attacker, true);
  const auto via_r2 = send_and_capture(other_client, false);
  EXPECT_NE(via_r1.mark, via_r2.mark);
}

TEST_F(PiFixture, FilterDropsAttackKeepsDisjointClient) {
  PiVictim filter;
  filter.learn_attack(send_and_capture(attacker, true));
  EXPECT_TRUE(filter.drop(send_and_capture(attacker, true)));
  EXPECT_FALSE(filter.drop(send_and_capture(other_client, false)));
}

TEST_F(PiFixture, SharedPathClientIsCollateral) {
  // The client on the attacker's switch shares the whole router path and
  // therefore the mark: StackPi cannot distinguish them (the false
  // positives the paper attributes to the scheme).
  PiVictim filter;
  filter.learn_attack(send_and_capture(attacker, true));
  EXPECT_TRUE(filter.drop(send_and_capture(shared_client, false)));
}

TEST_F(PiFixture, SenderPreloadedMarkShiftedOut) {
  // An attacker pre-loading a fake mark has it shifted out after
  // 16/bits_per_hop hops; with only 3 routers here some bits remain, but
  // the suffix (the last 3 routers' worth) is forced honest.
  sim::Packet captured;
  auto on_packet = [&](const sim::Packet& p) { captured = p; };
  victim->set_receiver(on_packet);
  sim::Packet p;
  p.dst = victim->address();
  p.size_bytes = 100;
  p.mark = 0xffff;
  attacker->send(std::move(p));
  simulator.run_until(simulator.now() + sim::SimTime::seconds(1));
  const auto honest = send_and_capture(attacker, true);
  // The attacker's path crosses two routers (r1, r0): 2 hops x 2 bits of
  // the stack are forced honest.
  const std::uint16_t suffix_mask = (1u << (2 * 2)) - 1u;
  EXPECT_EQ(captured.mark & suffix_mask, honest.mark & suffix_mask);
}

TEST(PiAccuracy, DegradesWithDispersedAttackers) {
  // On a realistic tree: learn marks from n attackers, then measure the
  // false-positive rate over legitimate clients.  More dispersed attackers
  // => more of the mark space is blacklisted => more collateral drops.
  auto run = [](int n_attackers) {
    sim::Simulator simulator;
    net::Network network(simulator);
    topo::TreeParams tp;
    tp.leaf_count = 200;
    util::Rng rng(5);
    const topo::Tree tree = topo::build_tree(network, rng, tp);
    network.compute_routes();

    StackPiParams params;
    std::vector<std::unique_ptr<PiMarker>> markers;
    auto install = [&](sim::NodeId r) {
      markers.push_back(std::make_unique<PiMarker>(
          static_cast<net::Router&>(network.node(r)), params));
    };
    install(tree.gateway);
    for (const sim::NodeId r : tree.interior_routers) install(r);
    for (const sim::NodeId r : tree.access_routers) install(r);

    PiVictim filter;
    auto& victim = static_cast<net::Host&>(network.node(tree.servers[0]));
    sim::Packet last;
    auto on_packet = [&](const sim::Packet& p) { last = p; };
    victim.set_receiver(on_packet);
    auto mark_of_leaf = [&](std::size_t leaf) {
      sim::Packet p;
      p.dst = tree.server_addrs[0];
      p.size_bytes = 100;
      static_cast<net::Host&>(network.node(tree.leaf_hosts[leaf]))
          .send(std::move(p));
      simulator.run_until(simulator.now() + sim::SimTime::seconds(1));
      return last;
    };

    // Attackers: every other leaf from the front; learn their marks.
    for (int a = 0; a < n_attackers; ++a) {
      filter.learn_attack(mark_of_leaf(static_cast<std::size_t>(a) * 2));
    }
    // Legitimate clients: the odd leaves; count collateral drops.
    int fp = 0, total = 0;
    for (std::size_t leaf = 1; leaf < 200; leaf += 2) {
      ++total;
      if (filter.drop(mark_of_leaf(leaf))) ++fp;
    }
    return static_cast<double>(fp) / total;
  };

  const double fp_small = run(5);
  const double fp_large = run(60);
  EXPECT_GT(fp_large, fp_small);
  EXPECT_GT(fp_large, 0.05);  // substantial collateral at 60 attackers
}

}  // namespace
}  // namespace hbp::marking
