#include "marking/ingress_filter.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/host.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"

namespace hbp::marking {
namespace {

struct IngressFixture : public ::testing::Test {
  void SetUp() override {
    access = &network.add_node<net::Router>("access");
    sw = &network.add_node<net::Switch>("sw");
    server = &network.add_node<net::Host>("server");
    local = &network.add_node<net::Host>("local");
    net::LinkParams link;
    const auto [a_up, _1] = network.connect(access->id(), server->id(), link);
    const auto [a_down, _2] = network.connect(access->id(), sw->id(), link);
    (void)a_up; (void)_1; (void)_2;
    local_port = a_down;
    network.connect(sw->id(), local->id(), link);
    server->set_address(network.assign_address(server->id()));
    local->set_address(network.assign_address(local->id()));
    network.compute_routes();

    filter = std::make_unique<IngressFilter>(
        *access, local_port, std::set<sim::Address>{local->address()});
  }

  void send(sim::Address spoofed_src) {
    sim::Packet p;
    p.dst = server->address();
    p.src = spoofed_src;
    p.size_bytes = 100;
    local->send(std::move(p));
    simulator.run_until(simulator.now() + sim::SimTime::seconds(1));
  }

  sim::Simulator simulator;
  net::Network network{simulator};
  net::Router* access = nullptr;
  net::Switch* sw = nullptr;
  net::Host* server = nullptr;
  net::Host* local = nullptr;
  int local_port = -1;
  std::unique_ptr<IngressFilter> filter;
};

TEST_F(IngressFixture, HonestSourcePasses) {
  send(local->address());
  EXPECT_EQ(server->packets_received(), 1u);
  EXPECT_EQ(filter->passed(), 1u);
  EXPECT_EQ(filter->spoofed_dropped(), 0u);
}

TEST_F(IngressFixture, SpoofedSourceDropped) {
  send(0xdeadbeef);
  EXPECT_EQ(server->packets_received(), 0u);
  EXPECT_EQ(filter->spoofed_dropped(), 1u);
}

TEST_F(IngressFixture, RandomSpoofFloodFullyBlocked) {
  util::Rng rng(3);
  auto spoof = traffic::random_spoof();
  for (int i = 0; i < 200; ++i) send(spoof(rng, local->address()));
  EXPECT_EQ(server->packets_received(), 0u);
  EXPECT_EQ(filter->spoofed_dropped(), 200u);
}

TEST_F(IngressFixture, LegitimateSpoofingBreaks) {
  // The paper's criticism: mobile IP uses the *home* address from a
  // foreign network — exactly what ingress filtering kills.
  const sim::Address home_address = 0x0a00002a;  // not in the local prefix
  send(home_address);
  EXPECT_EQ(server->packets_received(), 0u);
  EXPECT_EQ(filter->spoofed_dropped(), 1u);
}

TEST_F(IngressFixture, TrafficEnteringOnOtherPortsUntouched) {
  // Return traffic from the server side must not be evaluated against the
  // stub's source list.
  sim::Packet p;
  p.dst = local->address();
  p.src = server->address();
  p.size_bytes = 100;
  server->send(std::move(p));
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(local->packets_received(), 1u);
  EXPECT_EQ(filter->spoofed_dropped(), 0u);
}

}  // namespace
}  // namespace hbp::marking
