#include "marking/ppm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "net/host.hpp"
#include "topo/string_topo.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"

namespace hbp::marking {
namespace {

struct PpmFixture : public ::testing::Test {
  void SetUp() override { build(6); }

  void collect(const sim::Packet& p) { collector.collect(p); }

  void build(int hops) {
    simulator = std::make_unique<sim::Simulator>();
    network = std::make_unique<net::Network>(*simulator);
    topo::StringParams sp;
    sp.hops = hops;
    topo = topo::build_string(*network, sp);
    network->compute_routes();

    rng = std::make_unique<util::Rng>(31);
    // PPM on every router: gateway + the chain.
    markers.clear();
    marker_for.clear();
    auto install = [&](sim::NodeId r) {
      markers.push_back(std::make_unique<PpmMarker>(
          static_cast<net::Router&>(network->node(r)), *rng, params));
      marker_for[r] = markers.back().get();
    };
    install(topo.gateway);
    for (const sim::NodeId r : topo.chain_routers) install(r);

    auto& server = static_cast<net::Host&>(network->node(topo.server));
    server.set_receiver(
        net::Host::ReceiveFn::bind<&PpmFixture::collect>(*this));

    attacker_rng = std::make_unique<util::Rng>(32);
    traffic::CbrParams cbr;
    cbr.rate_bps = 0.8e6;  // 100 packets/s
    cbr.is_attack = true;
    attacker = std::make_unique<traffic::CbrSource>(
        *simulator, static_cast<net::Host&>(network->node(topo.attacker_host)),
        *attacker_rng, cbr, [this] { return topo.server_addr; },
        traffic::random_spoof());
    attacker->start();
  }

  // The true attack path, victim-side first.
  std::vector<std::int32_t> true_path() const {
    std::vector<std::int32_t> path{topo.gateway};
    for (const sim::NodeId r : topo.chain_routers) {
      path.push_back(static_cast<std::int32_t>(r));
    }
    return path;
  }

  std::set<std::int32_t> real_routers() const {
    std::set<std::int32_t> ids{topo.gateway};
    for (const sim::NodeId r : topo.chain_routers) {
      ids.insert(static_cast<std::int32_t>(r));
    }
    return ids;
  }

  PpmParams params;
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<net::Network> network;
  topo::StringTopo topo;
  std::unique_ptr<util::Rng> rng;
  std::vector<std::unique_ptr<PpmMarker>> markers;
  std::map<sim::NodeId, PpmMarker*> marker_for;
  PpmCollector collector;
  std::unique_ptr<util::Rng> attacker_rng;
  std::unique_ptr<traffic::CbrSource> attacker;
};

TEST_F(PpmFixture, MarkingProbabilityRoughlyQ) {
  simulator->run_until(sim::SimTime::seconds(100));  // ~10000 packets
  // Fraction of packets carrying any mark: 1 - (1-q)^7 ~ 0.25 for 7 routers.
  const double marked_fraction =
      static_cast<double>(collector.marked_packets()) /
      static_cast<double>(collector.packets_seen());
  EXPECT_NEAR(marked_fraction, 1.0 - std::pow(1.0 - 0.04, 7), 0.03);
}

TEST_F(PpmFixture, ReconstructsTheAttackPath) {
  simulator->run_until(sim::SimTime::seconds(200));  // ~20000 packets
  EXPECT_TRUE(collector.path_found(true_path()))
      << "edges collected: " << collector.edges().size();
  EXPECT_EQ(collector.false_paths(real_routers()), 0u);
}

TEST_F(PpmFixture, PacketCostGrowsWithDistance) {
  // Run until reconstruction succeeds, in 1-second steps; verify the
  // packet count is within a small factor of the analytical expectation.
  const auto path = true_path();
  double t = 0;
  while (!collector.path_found(path) && t < 2000) {
    t += 1.0;
    simulator->run_until(sim::SimTime::seconds(t));
  }
  ASSERT_TRUE(collector.path_found(path));
  const double expected = expected_packets_for_path(0.04, 7);
  EXPECT_LT(static_cast<double>(collector.packets_seen()), 20.0 * expected);
}

TEST_F(PpmFixture, CompromisedRouterPoisonsReconstruction) {
  // A subverted mid-chain router injects forged distance-0 edges: the
  // victim reconstructs non-existent paths — the Section 2 criticism of
  // marking schemes ("vulnerable to compromised routers, which can inject
  // forged markings to increase the number of false positives").
  marker_for[topo.chain_routers[2]]->compromise(
      8, static_cast<std::int32_t>(topo.chain_routers[1]));
  simulator->run_until(sim::SimTime::seconds(120));
  EXPECT_GT(collector.false_paths(real_routers()), 0u);
}

TEST_F(PpmFixture, AttackerSeededMarksCannotFakeProximity) {
  // An attacker pre-loading a forged distance-0 mark gets it incremented
  // by every honest router, so it arrives with distance >= path length and
  // never competes with genuine near-victim edges.
  sim::Packet p;
  p.type = sim::PacketType::kData;
  p.dst = topo.server_addr;
  p.size_bytes = 100;
  p.edge_start = 424242;
  p.edge_end = sim::kNoMark;
  p.edge_distance = 0;
  static_cast<net::Host&>(network->node(topo.attacker_host)).send(std::move(p));
  simulator->run_until(sim::SimTime::seconds(1));
  for (const auto& e : collector.edges()) {
    if (e.start == 424242) {
      // Either overwritten (gone) or pushed far away.
      EXPECT_GE(e.distance, 6);
    }
  }
}

TEST(PpmExpectation, MatchesClassicFormulaShape) {
  // Monotone growth in distance; q = 1/25 at d = 10 needs ~ hundreds.
  double prev = 0;
  for (int d = 1; d <= 20; ++d) {
    const double e = expected_packets_for_path(0.04, d);
    EXPECT_GT(e, prev * 0.99);
    prev = e;
  }
  EXPECT_GT(expected_packets_for_path(0.04, 10), 50.0);
}

}  // namespace
}  // namespace hbp::marking
