#include "marking/spie.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "net/host.hpp"
#include "topo/string_topo.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"

namespace hbp::marking {
namespace {

struct SpieFixture : public ::testing::Test {
  void build(int hops, const SpieParams& params) {
    simulator = std::make_unique<sim::Simulator>();
    network = std::make_unique<net::Network>(*simulator);
    topo::StringParams sp;
    sp.hops = hops;
    sp.with_client = true;
    topo = topo::build_string(*network, sp);
    network->compute_routes();

    agents.clear();
    agent_map.clear();
    auto install = [&](sim::NodeId r) {
      agents.push_back(std::make_unique<SpieAgent>(
          static_cast<net::Router&>(network->node(r)), params));
      agent_map[r] = agents.back().get();
    };
    install(topo.gateway);
    for (const sim::NodeId r : topo.chain_routers) install(r);
    tracer = std::make_unique<SpieTracer>(*network, agent_map);

    static_cast<net::Host&>(network->node(topo.server))
        .set_receiver(net::Host::ReceiveFn::bind<&SpieFixture::record>(*this));
  }

  void record(const sim::Packet& p) {
    last_packet = p;
    last_arrival = simulator->now();
  }

  // Sends one packet from the attacker and returns its digest+time.
  std::pair<std::uint64_t, sim::SimTime> one_attack_packet() {
    sim::Packet p;
    p.dst = topo.server_addr;
    p.src = 0xbadf00d;  // spoofed
    p.size_bytes = 900;
    p.is_attack = true;
    static_cast<net::Host&>(network->node(topo.attacker_host))
        .send(std::move(p));
    simulator->run_until(simulator->now() + sim::SimTime::seconds(1));
    return {SpieAgent::digest(last_packet), last_arrival};
  }

  std::vector<sim::NodeId> true_path() const {
    std::vector<sim::NodeId> path{topo.gateway};
    for (const sim::NodeId r : topo.chain_routers) path.push_back(r);
    return path;
  }

  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<net::Network> network;
  topo::StringTopo topo;
  std::vector<std::unique_ptr<SpieAgent>> agents;
  std::map<sim::NodeId, SpieAgent*> agent_map;
  std::unique_ptr<SpieTracer> tracer;
  sim::Packet last_packet;
  sim::SimTime last_arrival;
};

TEST_F(SpieFixture, SinglePacketTracesFullPath) {
  build(6, SpieParams{});
  const auto [digest, when] = one_attack_packet();
  auto implicated = tracer->trace(topo.gateway, digest, when);
  std::sort(implicated.begin(), implicated.end());
  auto expected = true_path();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(implicated, expected);
}

TEST_F(SpieFixture, UnknownDigestImplicatesNothing) {
  build(4, SpieParams{});
  one_attack_packet();
  const auto implicated =
      tracer->trace(topo.gateway, 0xfeedfeedfeedULL, simulator->now());
  EXPECT_TRUE(implicated.empty());
}

TEST_F(SpieFixture, DigestExpiresAfterRetention) {
  SpieParams params;
  params.window = sim::SimTime::seconds(2);
  params.windows_retained = 2;
  build(4, params);
  const auto [digest, when] = one_attack_packet();
  // Generate traffic to roll the windows well past retention.
  for (int i = 0; i < 10; ++i) {
    simulator->run_until(simulator->now() + sim::SimTime::seconds(2));
    one_attack_packet();
  }
  EXPECT_FALSE(agent_map[topo.gateway]->saw(digest, when));
}

TEST_F(SpieFixture, UndersizedTablesCreateFalseBranches) {
  // Saturate tiny Bloom filters with cross traffic: the tracer implicates
  // routers beyond the true path region... on a string there are no side
  // branches, so measure via the agent-level false positive rate instead.
  SpieParams params;
  params.bits_per_window = 512;  // absurdly small
  build(6, params);
  util::Rng rng(9);
  traffic::CbrParams cbr;
  cbr.rate_bps = 1.6e6;  // 200 pps of background
  traffic::CbrSource background(
      *simulator, static_cast<net::Host&>(network->node(topo.client_host)),
      rng, cbr, [this] { return topo.server_addr; });
  background.start();
  simulator->run_until(sim::SimTime::seconds(8));
  // Query digests of packets that never existed: saturated tables match.
  int fp = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    if (agent_map[topo.gateway]->saw(util::mix64(i + 77'000'000),
                                     simulator->now())) {
      ++fp;
    }
  }
  EXPECT_GT(fp, 20);
}

TEST_F(SpieFixture, StorageGrowsWithTrafficRetention) {
  SpieParams small;
  small.bits_per_window = 1u << 12;
  SpieParams big;
  big.bits_per_window = 1u << 18;
  build(4, small);
  one_attack_packet();
  const auto small_bytes = agent_map[topo.gateway]->storage_bytes();
  build(4, big);
  one_attack_packet();
  const auto big_bytes = agent_map[topo.gateway]->storage_bytes();
  EXPECT_EQ(big_bytes, small_bytes * 64);
  EXPECT_GT(agent_map[topo.gateway]->packets_recorded(), 0u);
}

TEST_F(SpieFixture, SpoofedSourceIrrelevantToDigest) {
  build(4, SpieParams{});
  const auto [digest, when] = one_attack_packet();
  // The digest keys on the packet itself, not its claimed source: tracing
  // works although src was forged.
  EXPECT_FALSE(tracer->trace(topo.gateway, digest, when).empty());
}

}  // namespace
}  // namespace hbp::marking
