// Unit tests of the PPM collector's reconstruction logic on synthetic
// edges, independent of any network.
#include <gtest/gtest.h>

#include "marking/ppm.hpp"

namespace hbp::marking {
namespace {

sim::Packet edge(std::int32_t start, std::int32_t end, std::int32_t distance) {
  sim::Packet p;
  p.edge_start = start;
  p.edge_end = end;
  p.edge_distance = distance;
  return p;
}

TEST(PpmCollector, IgnoresUnmarkedPackets) {
  PpmCollector c;
  c.collect(sim::Packet{});
  EXPECT_EQ(c.packets_seen(), 1u);
  EXPECT_EQ(c.marked_packets(), 0u);
  EXPECT_TRUE(c.edges().empty());
}

TEST(PpmCollector, SingleChainReconstruction) {
  PpmCollector c;
  // victim <- 10 <- 11 <- 12
  c.collect(edge(10, sim::kNoMark, 0));
  c.collect(edge(11, 10, 1));
  c.collect(edge(12, 11, 2));
  const auto paths = c.reconstruct_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<std::int32_t>{10, 11, 12}));
  EXPECT_TRUE(c.path_found({10, 11, 12}));
  EXPECT_FALSE(c.path_found({10, 12, 11}));
}

TEST(PpmCollector, DuplicateEdgesDeduplicated) {
  PpmCollector c;
  for (int i = 0; i < 10; ++i) c.collect(edge(10, sim::kNoMark, 0));
  EXPECT_EQ(c.edges().size(), 1u);
  EXPECT_EQ(c.marked_packets(), 10u);
}

TEST(PpmCollector, BranchingAttackTree) {
  PpmCollector c;
  // Two attackers converging at router 10:
  //   10 <- 11 <- 12   and   10 <- 11 <- 13
  c.collect(edge(10, sim::kNoMark, 0));
  c.collect(edge(11, 10, 1));
  c.collect(edge(12, 11, 2));
  c.collect(edge(13, 11, 2));
  const auto paths = c.reconstruct_paths();
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_TRUE(c.path_found({10, 11, 12}));
  EXPECT_TRUE(c.path_found({10, 11, 13}));
}

TEST(PpmCollector, IncompleteChainStopsAtGap) {
  PpmCollector c;
  c.collect(edge(10, sim::kNoMark, 0));
  // Distance-1 edge missing; distance-2 edge cannot attach.
  c.collect(edge(12, 11, 2));
  const auto paths = c.reconstruct_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<std::int32_t>{10}));
}

TEST(PpmCollector, FalsePathDetection) {
  PpmCollector c;
  c.collect(edge(10, sim::kNoMark, 0));
  c.collect(edge(999, 10, 1));  // forged: router 999 does not exist
  c.collect(edge(11, 10, 1));   // genuine
  const std::set<std::int32_t> real{10, 11, 12};
  EXPECT_EQ(c.false_paths(real), 1u);
}

TEST(PpmCollector, EmptyReconstruction) {
  PpmCollector c;
  EXPECT_TRUE(c.reconstruct_paths().empty());
  EXPECT_EQ(c.false_paths({1, 2}), 0u);
}

}  // namespace
}  // namespace hbp::marking
