// Eq. (8)/(9) boundary behaviour: the attacker-optimal burst length
// t_on = 2(1/r + τ) and the window of burst lengths over which the Eq. (9)
// special case agrees with (or diverges from) the general Case-2 formula.
#include <gtest/gtest.h>

#include "analysis/capture_time.hpp"

namespace hbp::analysis {
namespace {

Params params() {
  Params p;
  p.m = 5.0;
  p.p = 0.4;
  p.r = 10.0;   // 1/r = 0.1 s
  p.tau = 1.0;  // hop_time = 1.1 s
  p.h = 4;
  return p;
}

TEST(OnOffBoundary, BestAttackBurstIsTwoHopTimes) {
  const Params p = params();
  EXPECT_DOUBLE_EQ(hop_time(p), 1.1);
  EXPECT_DOUBLE_EQ(best_attack_t_on(p), 2.2);
}

TEST(OnOffBoundary, OptimalBurstFallsInCase2) {
  const Params p = params();
  const double t_on = best_attack_t_on(p);
  // m = 5 > t_on/2 = 1.1 and m <= t_on + t_off = 7.2: Case 2.
  EXPECT_EQ(classify_onoff(p.m, t_on, 5.0), OnOffCase::kCase2);
}

TEST(OnOffBoundary, SpecialCaseMatchesGeneralFormulaAtOptimum) {
  // At t_on = 2(1/r + τ) each successful burst advances exactly one hop,
  // so Eq. (7) degenerates into Eq. (9): E[CT] = h (t_on + t_off) / p.
  const Params p = params();
  const double t_off = 5.0;
  const double t_on = best_attack_t_on(p);

  const Estimate general = progressive_onoff(p, t_on, t_off);
  const double special = progressive_onoff_special(p, t_off);

  EXPECT_TRUE(general.valid);
  EXPECT_DOUBLE_EQ(general.seconds, special);
  EXPECT_DOUBLE_EQ(special, p.h * (t_on + t_off) / p.p);
}

TEST(OnOffBoundary, DoubleOptimalBurstAdvancesTwoHopsPerSuccess) {
  // t_on = 4.4: overlap per success t_on/2 = 2.2 = two hop times, so the
  // session advances twice as fast per success and the special case no
  // longer applies.
  const Params p = params();
  const double t_off = 5.0;
  const Estimate e = progressive_onoff(p, 4.4, t_off);
  EXPECT_TRUE(e.valid);
  EXPECT_DOUBLE_EQ(e.seconds, ((4.4 + t_off) / p.p) * p.h / 2.0);
  EXPECT_LT(e.seconds, progressive_onoff_special(p, t_off));
}

TEST(OnOffBoundary, BurstsShorterThanOptimumAreInvalid) {
  // Below 2(1/r + τ) a single success cannot even advance one hop: the
  // Case-2 side condition t_on/2 >= 1/r + τ fails.
  const Params p = params();
  const Estimate e = progressive_onoff(p, 2.0, 5.0);
  EXPECT_FALSE(e.valid);
  const Estimate basic = basic_onoff(p, 2.0, 5.0);
  EXPECT_FALSE(basic.valid);
}

TEST(OnOffBoundary, ValidityFlipsExactlyAtTheOptimum) {
  const Params p = params();
  const double t_on = best_attack_t_on(p);
  EXPECT_TRUE(progressive_onoff(p, t_on, 5.0).valid);
  EXPECT_FALSE(progressive_onoff(p, t_on - 1e-9, 5.0).valid);
}

TEST(OnOffBoundary, LongerOffPeriodsDelayCaptureLinearly) {
  // Eq. (9) is linear in t_off: the attacker trades attack duty cycle for
  // capture delay one-for-one.
  const Params p = params();
  const double at5 = progressive_onoff_special(p, 5.0);
  const double at10 = progressive_onoff_special(p, 10.0);
  EXPECT_DOUBLE_EQ(at10 - at5, p.h * 5.0 / p.p);
}

}  // namespace
}  // namespace hbp::analysis
