#include "analysis/capture_time.hpp"

#include <gtest/gtest.h>

namespace hbp::analysis {
namespace {

// The DESIGN.md reconstruction of the Section 7.4 comparison parameters:
// m = 10 s, p = 0.4, r = 10 pkt/s, tau = 1 s, h = 10.
Params paper_params() {
  Params p;
  p.m = 10.0;
  p.p = 0.4;
  p.r = 10.0;
  p.tau = 1.0;
  p.h = 10;
  return p;
}

TEST(CaptureTime, HopTime) {
  EXPECT_DOUBLE_EQ(hop_time(paper_params()), 1.1);
}

TEST(CaptureTime, BasicContinuousEq3) {
  const auto e = basic_continuous(paper_params());
  // m (1/p - 1) = 10 * 1.5 = 15 s.
  EXPECT_DOUBLE_EQ(e.seconds, 15.0);
  // m = 10 < h (1/r + tau) = 11: the one-epoch condition just fails at
  // h = 10 with these numbers.
  EXPECT_FALSE(e.valid);
  auto params = paper_params();
  params.h = 9;
  EXPECT_TRUE(basic_continuous(params).valid);
}

TEST(CaptureTime, ProgressiveContinuousEq4) {
  const auto e = progressive_continuous(paper_params());
  // (m/p) * h / (m / (1/r+tau)) = h (1/r+tau) / p = 10 * 1.1 / 0.4 = 27.5.
  EXPECT_DOUBLE_EQ(e.seconds, 27.5);
  EXPECT_TRUE(e.valid);
}

TEST(CaptureTime, OnOffCaseBoundaries) {
  // m = 10: case 1 iff t_on >= 20; case 2 iff t_on + t_off >= 10 (and
  // t_on < 20); case 3 otherwise — the boundaries quoted in Section 7.4.
  EXPECT_EQ(classify_onoff(10, 20, 5), OnOffCase::kCase1);
  EXPECT_EQ(classify_onoff(10, 25, 0), OnOffCase::kCase1);
  EXPECT_EQ(classify_onoff(10, 19.9, 5), OnOffCase::kCase2);
  EXPECT_EQ(classify_onoff(10, 5, 5), OnOffCase::kCase2);
  EXPECT_EQ(classify_onoff(10, 4.9, 5), OnOffCase::kCase3);
  EXPECT_EQ(classify_onoff(10, 2, 2), OnOffCase::kCase3);
}

TEST(CaptureTime, SpecialCaseEq9MatchesCase2Formula) {
  const auto params = paper_params();
  // Eq. (8): t_on* = 2 (1/r + tau) = 2.2 s — as quoted in the paper text
  // ("2.2 <= t_on < 4.4" is the special-case region for t_off = 10).
  EXPECT_DOUBLE_EQ(best_attack_t_on(params), 2.2);
  // At t_on = t_on*, Eq. (7) degenerates to Eq. (9): h (t_on + t_off) / p.
  const double t_off = 10.0;
  const double eq9 = progressive_onoff_special(params, t_off);
  EXPECT_DOUBLE_EQ(eq9, 10 * (2.2 + 10.0) / 0.4);
  const auto eq7 = progressive_onoff(params, 2.2, t_off);
  EXPECT_NEAR(eq7.seconds, eq9, 1e-9);
  EXPECT_TRUE(eq7.valid);
}

TEST(CaptureTime, BasicOnOffUsesTrialPeriod) {
  const auto params = paper_params();
  const auto e = basic_onoff(params, 30.0, 5.0);  // case 1
  EXPECT_DOUBLE_EQ(e.seconds, (1.0 / 0.4 - 1.0) * 35.0);
}

TEST(CaptureTime, Case3UsesFlooredBurstCount) {
  auto params = paper_params();
  params.h = 2;
  // t_on = 2, t_off = 2, m = 10: T_m = 2 * floor(10/4) = 4.
  const auto e = progressive_onoff(params, 2.0, 2.0);
  const double hops_per_success = 4.0 / 1.1;
  EXPECT_DOUBLE_EQ(e.seconds, (10.0 / 0.4) * 2 / hops_per_success);
  EXPECT_TRUE(e.valid);
}

TEST(CaptureTime, FollowerFormula) {
  const auto params = paper_params();
  const auto e = progressive_follower(params, 2.2);
  // hops per success = 2.2 / 1.1 = 2 => (m/p) h / 2 = 25 * 10 / 2 = 125.
  EXPECT_DOUBLE_EQ(e.seconds, 125.0);
  EXPECT_TRUE(e.valid);
  // d_follow below one hop time: at most one hop per epoch, invalid region.
  const auto slow = progressive_follower(params, 0.5);
  EXPECT_FALSE(slow.valid);
  EXPECT_DOUBLE_EQ(slow.seconds, (10.0 / 0.4) * 10.0);
}

TEST(CaptureTime, BestAttackStrategyIsWorstForDefense) {
  // Fig. 5's headline: the Eq. (9) point (t_on = 2(1/r+tau)) maximises
  // capture time across burst lengths for fixed t_off.
  const auto params = paper_params();
  const double t_off = 10.0;
  const double special = progressive_onoff_special(params, t_off);
  for (double t_on : {1.0, 3.0, 5.0, 8.0, 15.0, 25.0, 40.0}) {
    const auto e = progressive_onoff(params, t_on, t_off);
    if (!e.valid) continue;
    EXPECT_LE(e.seconds, special + 1e-9) << "t_on = " << t_on;
  }
}

// Monotonicity properties over parameter sweeps.
class CaptureTimeMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(CaptureTimeMonotonic, ProgressiveDecreasesWithP) {
  auto params = paper_params();
  params.p = GetParam();
  const double base = progressive_continuous(params).seconds;
  params.p = GetParam() + 0.1;
  EXPECT_LT(progressive_continuous(params).seconds, base);
}

TEST_P(CaptureTimeMonotonic, ProgressiveIncreasesWithH) {
  auto params = paper_params();
  params.p = GetParam();
  params.h = 5;
  const double base = progressive_continuous(params).seconds;
  params.h = 10;
  EXPECT_GT(progressive_continuous(params).seconds, base);
}

TEST_P(CaptureTimeMonotonic, BasicIndependentOfH) {
  auto params = paper_params();
  params.p = GetParam();
  params.h = 3;
  const double a = basic_continuous(params).seconds;
  params.h = 8;
  EXPECT_DOUBLE_EQ(basic_continuous(params).seconds, a);
}

INSTANTIATE_TEST_SUITE_P(PSweep, CaptureTimeMonotonic,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8));

}  // namespace
}  // namespace hbp::analysis
