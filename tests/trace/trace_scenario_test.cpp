// End-to-end tracing guarantees, pinned by ctest:
//
//  * observational purity — running a scenario with tracing enabled leaves
//    the trace digest and event count bit-identical to an untraced run;
//  * export determinism — two traced runs of the same seed produce
//    byte-identical JSON and CSV files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/string_experiment.hpp"
#include "telemetry/registry.hpp"

namespace hbp::scenario {
namespace {

// The StringBasicContinuous golden configuration (small and fast, ~1500
// events), so any digest drift here would also trip the golden tests.
StringExperimentConfig small_config() {
  StringExperimentConfig config;
  config.m = 5.0;
  config.p = 0.5;
  config.h = 4;
  config.attacker_rate_bps = 0.1e6;
  config.tau = 0.5;
  config.progressive = false;
  config.horizon_seconds = 300.0;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TraceScenario, TracingLeavesDigestAndEventCountUnchanged) {
  const StringResult plain = run_string_experiment(small_config(), 42);

  StringExperimentConfig traced = small_config();
  traced.trace_path = testing::TempDir() + "hbp_trace_onoff.json";
  const StringResult with_trace = run_string_experiment(traced, 42);
  std::remove(traced.trace_path.c_str());

  EXPECT_EQ(plain.trace_digest, with_trace.trace_digest);
  EXPECT_EQ(plain.events_executed, with_trace.events_executed);
  EXPECT_EQ(plain.captured, with_trace.captured);
  EXPECT_EQ(plain.capture_seconds, with_trace.capture_seconds);
  EXPECT_EQ(plain.control_messages, with_trace.control_messages);
}

TEST(TraceScenario, JsonExportIsByteIdenticalAcrossRuns) {
  StringExperimentConfig config = small_config();
  config.trace_path = testing::TempDir() + "hbp_trace_a.json";
  run_string_experiment(config, 42);
  const std::string first = slurp(config.trace_path);
  std::remove(config.trace_path.c_str());

  config.trace_path = testing::TempDir() + "hbp_trace_b.json";
  run_string_experiment(config, 42);
  const std::string second = slurp(config.trace_path);
  std::remove(config.trace_path.c_str());

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TraceScenario, CsvExportIsByteIdenticalAcrossRuns) {
  StringExperimentConfig config = small_config();
  config.trace_path = testing::TempDir() + "hbp_trace_a.csv";
  run_string_experiment(config, 42);
  const std::string first = slurp(config.trace_path);
  std::remove(config.trace_path.c_str());

  config.trace_path = testing::TempDir() + "hbp_trace_b.csv";
  run_string_experiment(config, 42);
  const std::string second = slurp(config.trace_path);
  std::remove(config.trace_path.c_str());

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.find("t_ns,verb,node,node_name,id,cause,a,b\n"), 0u);
}

TEST(TraceScenario, TraceCapturesTheWholeBackPropagationWave) {
  // The string run ends in a capture, so the trace must contain the full
  // causal chain: data-plane spans, the honeypot hit, the activation, the
  // propagated requests, and the final switch-port capture.
  StringExperimentConfig config = small_config();
  config.trace_path = testing::TempDir() + "hbp_trace_wave.csv";
  const StringResult result = run_string_experiment(config, 42);
  ASSERT_TRUE(result.captured);
  const std::string csv = slurp(config.trace_path);
  std::remove(config.trace_path.c_str());

  for (const char* verb :
       {",send,", ",enqueue,", ",deliver,", ",window_start,", ",honeypot_hit,",
        ",hbp_activate,", ",honeypot_request,", ",session_open,", ",divert,",
        ",upstream,", ",capture,"}) {
    EXPECT_NE(csv.find(verb), std::string::npos) << "missing verb " << verb;
  }
  // The telemetry side sees the same history: trace counters are exported
  // into the deterministic registry section.
  ASSERT_TRUE(result.telemetry);
  ASSERT_NE(result.telemetry->find_counter("trace.recorded"), nullptr);
  EXPECT_GT(result.telemetry->find_counter("trace.recorded")->value(), 0u);
}

}  // namespace
}  // namespace hbp::scenario
