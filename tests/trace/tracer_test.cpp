#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace_event.hpp"
#include "telemetry/registry.hpp"

namespace hbp::trace {
namespace {

sim::TraceEvent make_event(std::uint64_t i) {
  sim::TraceEvent e;
  e.t = sim::SimTime(static_cast<std::int64_t>(i));
  e.verb = sim::TraceVerb::kEnqueue;
  e.node = static_cast<sim::NodeId>(i % 7);
  e.id = i;
  e.cause = 0;
  e.a = static_cast<std::int32_t>(i % 3);
  e.b = -1;
  return e;
}

TEST(Tracer, RecordsInOrderAcrossChunks) {
  // 10'000 events spans three 4096-event slab chunks.
  Tracer tracer;
  for (std::uint64_t i = 0; i < 10'000; ++i) tracer.record(make_event(i));

  EXPECT_EQ(tracer.recorded(), 10'000u);
  ASSERT_EQ(tracer.size(), 10'000u);
  EXPECT_EQ(tracer.verb_count(sim::TraceVerb::kEnqueue), 10'000u);
  EXPECT_EQ(tracer.verb_count(sim::TraceVerb::kDeliver), 0u);
  for (std::uint64_t i : {0u, 4095u, 4096u, 8191u, 8192u, 9999u}) {
    EXPECT_EQ(tracer.event(i).id, i) << "slot " << i;
  }
  std::uint64_t next = 0;
  tracer.for_each([&](const sim::TraceEvent& e) { EXPECT_EQ(e.id, next++); });
  EXPECT_EQ(next, 10'000u);
}

TEST(Tracer, FlightRingKeepsLastNOldestToNewest) {
  TracerOptions options;
  options.flight_capacity = 4;
  Tracer tracer(options);
  for (std::uint64_t i = 0; i < 6; ++i) tracer.record(make_event(i));

  EXPECT_EQ(tracer.flight_capacity(), 4u);
  EXPECT_EQ(tracer.flight_size(), 4u);
  std::vector<std::uint64_t> ids;
  tracer.for_each_flight(
      [&](const sim::TraceEvent& e) { ids.push_back(e.id); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3, 4, 5}));
}

TEST(Tracer, FlightRingPartiallyFilled) {
  TracerOptions options;
  options.flight_capacity = 8;
  Tracer tracer(options);
  for (std::uint64_t i = 0; i < 3; ++i) tracer.record(make_event(i));

  EXPECT_EQ(tracer.flight_size(), 3u);
  std::vector<std::uint64_t> ids;
  tracer.for_each_flight(
      [&](const sim::TraceEvent& e) { ids.push_back(e.id); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(Tracer, FlightOnlyModeKeepsCountersButNoFullTrace) {
  TracerOptions options;
  options.keep_full = false;
  options.flight_capacity = 2;
  Tracer tracer(options);
  for (std::uint64_t i = 0; i < 5; ++i) tracer.record(make_event(i));

  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.verb_count(sim::TraceVerb::kEnqueue), 5u);
  EXPECT_EQ(tracer.flight_size(), 2u);
}

TEST(Tracer, ZeroFlightCapacityDisablesTheRing) {
  TracerOptions options;
  options.flight_capacity = 0;
  Tracer tracer(options);
  for (std::uint64_t i = 0; i < 3; ++i) tracer.record(make_event(i));

  EXPECT_EQ(tracer.flight_capacity(), 0u);
  EXPECT_EQ(tracer.flight_size(), 0u);
  EXPECT_EQ(tracer.size(), 3u);
}

TEST(Tracer, AttachInstallsSimulatorSinkAndDetachRemovesIt) {
  sim::Simulator simulator;
  Tracer tracer;
  EXPECT_FALSE(simulator.tracing());

  tracer.attach(simulator);
  EXPECT_TRUE(simulator.tracing());
  EXPECT_TRUE(tracer.attached());

  simulator.trace_event(make_event(7));
  EXPECT_EQ(tracer.recorded(), 1u);
  EXPECT_EQ(tracer.event(0).id, 7u);

  std::string out;
  EXPECT_TRUE(simulator.dump_flight(out));
  EXPECT_NE(out.find("flight recorder"), std::string::npos);

  tracer.detach();
  EXPECT_FALSE(simulator.tracing());
  EXPECT_FALSE(tracer.attached());
  out.clear();
  EXPECT_FALSE(simulator.dump_flight(out));
  // A trace_event on a detached simulator is the zero-cost disabled path.
  simulator.trace_event(make_event(8));
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(Tracer, DestructorDetachesFromTheSimulator) {
  sim::Simulator simulator;
  {
    Tracer tracer;
    tracer.attach(simulator);
    EXPECT_TRUE(simulator.tracing());
  }
  EXPECT_FALSE(simulator.tracing());
  std::string out;
  EXPECT_FALSE(simulator.dump_flight(out));
}

TEST(Tracer, DumpFlightFormatsVerbAndFields) {
  Tracer tracer;
  sim::TraceEvent e;
  e.t = sim::SimTime::millis(3);
  e.verb = sim::TraceVerb::kHoneypotHit;
  e.node = 4;
  e.id = 99;
  e.cause = 99;
  e.a = 0;
  e.b = 1;
  tracer.record(e);

  std::string out;
  tracer.dump_flight(out);
  EXPECT_NE(out.find("flight recorder"), std::string::npos);
  EXPECT_NE(out.find("honeypot_hit"), std::string::npos);
  EXPECT_NE(out.find("id=99"), std::string::npos);
  EXPECT_NE(out.find("t=0.003000000s"), std::string::npos);
}

TEST(Tracer, ExportCountersRegistersRecordedAndPerVerbCounts) {
  Tracer tracer;
  for (std::uint64_t i = 0; i < 3; ++i) tracer.record(make_event(i));
  sim::TraceEvent capture = make_event(3);
  capture.verb = sim::TraceVerb::kCapture;
  tracer.record(capture);

  telemetry::Registry registry;
  tracer.export_counters(registry);
  ASSERT_NE(registry.find_counter("trace.recorded"), nullptr);
  EXPECT_EQ(registry.find_counter("trace.recorded")->value(), 4u);
  ASSERT_NE(registry.find_counter("trace.verb.enqueue"), nullptr);
  EXPECT_EQ(registry.find_counter("trace.verb.enqueue")->value(), 3u);
  ASSERT_NE(registry.find_counter("trace.verb.capture"), nullptr);
  EXPECT_EQ(registry.find_counter("trace.verb.capture")->value(), 1u);
  // Verbs that never fired are not exported.
  EXPECT_EQ(registry.find_counter("trace.verb.deliver"), nullptr);
}

TEST(TraceVerb, NamesAreUniqueAndCoverEveryVerb) {
  std::vector<std::string> names;
  for (std::size_t v = 0; v < sim::kTraceVerbCount; ++v) {
    const char* name = sim::verb_name(static_cast<sim::TraceVerb>(v));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "verb " << v << " lacks a name";
    names.emplace_back(name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace hbp::trace
