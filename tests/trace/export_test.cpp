#include "trace/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/packet.hpp"
#include "sim/trace_event.hpp"
#include "trace/tracer.hpp"

namespace hbp::trace {
namespace {

// Tracer is non-copyable; tests fill a caller-owned one.
void record_two_events(Tracer& tracer) {
  sim::TraceEvent send;
  send.t = sim::SimTime::micros(1.5);
  send.verb = sim::TraceVerb::kSend;
  send.node = 0;
  send.id = 42;
  send.cause = 0;
  send.a = 3;
  send.b = 1;
  tracer.record(send);
  sim::TraceEvent wave;
  wave.t = sim::SimTime::millis(2);
  wave.verb = sim::TraceVerb::kRequestSend;
  wave.node = sim::kInvalidNode;  // control-plane event, no single node
  wave.id = 42;
  wave.cause = 42;
  wave.a = 1;
  wave.b = 2;
  tracer.record(wave);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TraceExport, ChromeJsonShape) {
  Tracer tracer;
  record_two_events(tracer);
  std::ostringstream out;
  write_chrome_json(tracer, out);
  const std::string json = out.str();

  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  // Control-plane thread metadata always leads, even without a Network.
  EXPECT_NE(json.find("\"args\":{\"name\":\"control plane\"}"),
            std::string::npos);
  // The instant event: integer-math timestamp 1.5 us => "1.500".
  EXPECT_NE(json.find("{\"name\":\"send\",\"cat\":\"hbp\",\"ph\":\"i\","
                      "\"s\":\"t\",\"pid\":1,\"tid\":2,\"ts\":1.500,"
                      "\"args\":{\"id\":42,\"cause\":0,\"a\":3,\"b\":1}}"),
            std::string::npos);
  // Control-plane events (node -1) land on tid 1.
  EXPECT_NE(json.find("{\"name\":\"honeypot_request\",\"cat\":\"hbp\","
                      "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,"
                      "\"ts\":2000.000,"
                      "\"args\":{\"id\":42,\"cause\":42,\"a\":1,\"b\":2}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
}

TEST(TraceExport, CsvShape) {
  Tracer tracer;
  record_two_events(tracer);
  std::ostringstream out;
  write_csv(tracer, out);
  const std::string csv = out.str();

  EXPECT_EQ(csv.find("t_ns,verb,node,node_name,id,cause,a,b\n"), 0u);
  EXPECT_NE(csv.find("1500,send,0,,42,0,3,1\n"), std::string::npos);
  EXPECT_NE(csv.find("2000000,honeypot_request,-1,,42,42,1,2\n"),
            std::string::npos);
}

TEST(TraceExport, WriteTraceFileDispatchesOnExtension) {
  Tracer tracer;
  record_two_events(tracer);
  const std::string json_path = testing::TempDir() + "hbp_export_test.json";
  const std::string csv_path = testing::TempDir() + "hbp_export_test.csv";

  ASSERT_TRUE(write_trace_file(tracer, json_path));
  ASSERT_TRUE(write_trace_file(tracer, csv_path));
  EXPECT_EQ(slurp(json_path).find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(slurp(csv_path).find("t_ns,verb,"), 0u);

  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(TraceExport, WriteTraceFileReportsUnopenablePath) {
  Tracer tracer;
  record_two_events(tracer);
  EXPECT_FALSE(write_trace_file(tracer, "/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace hbp::trace
