// Golden-digest regression tests: small fixed-seed configurations whose
// trace digests and headline metrics are pinned in tests/golden/.  Any
// change to event ordering, packet handling, RNG streams, or protocol
// timing shifts the digest and fails these tests — intentional changes are
// ratified by regenerating the files:
//
//   HBP_UPDATE_GOLDEN=1 ctest -R Golden
//
// and committing the diff alongside the change that caused it.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "scenario/string_experiment.hpp"
#include "scenario/tree_experiment.hpp"

namespace hbp::scenario {
namespace {

using Entries = std::vector<std::pair<std::string, std::string>>;

bool update_mode() { return std::getenv("HBP_UPDATE_GOLDEN") != nullptr; }

std::string golden_path(const std::string& name) {
  return std::string(HBP_GOLDEN_DIR) + "/" + name;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string dec64(std::uint64_t v) {
  return std::to_string(static_cast<unsigned long long>(v));
}

std::string real(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_golden(const std::string& path, const Entries& entries) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  for (const auto& [key, value] : entries) {
    out << key << "=" << value << "\n";
  }
}

std::map<std::string, std::string> load_golden(const std::string& path) {
  std::map<std::string, std::string> result;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    result[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return result;
}

void check_golden(const std::string& name, const Entries& entries) {
  const std::string path = golden_path(name);
  if (update_mode()) {
    write_golden(path, entries);
    GTEST_SKIP() << "golden file refreshed: " << path;
  }
  const auto golden = load_golden(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << path
      << " — regenerate with HBP_UPDATE_GOLDEN=1 ctest -R Golden";
  for (const auto& [key, value] : entries) {
    const auto it = golden.find(key);
    ASSERT_NE(it, golden.end()) << name << ": golden file lacks key " << key;
    EXPECT_EQ(it->second, value)
        << name << ": " << key << " drifted from the golden value — if the "
        << "change is intentional, refresh with HBP_UPDATE_GOLDEN=1";
  }
  EXPECT_EQ(golden.size(), entries.size())
      << name << ": golden file has stale extra keys";
}

Entries string_entries(const StringResult& r) {
  return {
      {"trace_digest", hex64(r.trace_digest)},
      {"events_executed", dec64(r.events_executed)},
      {"captured", r.captured ? "1" : "0"},
      {"capture_seconds", real(r.capture_seconds)},
      {"control_messages", dec64(r.control_messages)},
      {"reports", dec64(r.reports)},
  };
}

// E2 (Fig. 6 point): basic scheme, continuous attack on a short string.
TEST(GoldenDigest, StringBasicContinuous) {
  StringExperimentConfig config;
  config.m = 5.0;
  config.p = 0.5;
  config.h = 4;
  config.attacker_rate_bps = 0.1e6;
  config.tau = 0.5;
  config.progressive = false;
  config.horizon_seconds = 300.0;
  check_golden("string_basic_continuous.txt",
               string_entries(run_string_experiment(config, 42)));
}

// A1 (Fig. 8 point): progressive scheme against an on-off attacker.
TEST(GoldenDigest, StringProgressiveOnOff) {
  StringExperimentConfig config;
  config.m = 5.0;
  config.p = 0.4;
  config.h = 4;
  config.attacker_rate_bps = 0.1e6;
  config.tau = 0.5;
  config.progressive = true;
  config.onoff_t_on = 3.0;
  config.onoff_t_off = 5.0;
  config.horizon_seconds = 400.0;
  check_golden("string_progressive_onoff.txt",
               string_entries(run_string_experiment(config, 11)));
}

// E4 (Section 8.3): the full tree scenario with the HBP defense.
TEST(GoldenDigest, TreeHbpSmall) {
  TreeExperimentConfig config;
  config.scheme = Scheme::kHbp;
  config.tree.leaf_count = 60;
  config.n_clients = 12;
  config.n_attackers = 6;
  config.attacker_rate_bps = 0.5e6;
  config.sim_seconds = 30.0;
  config.attack_start = 5.0;
  config.attack_end = 25.0;
  config.epoch_seconds = 5.0;
  const TreeResult r = run_tree_experiment(config, 7);
  check_golden("tree_hbp_small.txt",
               {
                   {"trace_digest", hex64(r.trace_digest)},
                   {"events_executed", dec64(r.events_executed)},
                   {"captured", dec64(r.captured)},
                   {"false_captures", dec64(r.false_captures)},
                   {"mean_client_throughput", real(r.mean_client_throughput)},
                   {"control_messages", dec64(r.control_messages)},
               });
}

// The calendar-queue backend must realise the same (time, insertion-seq)
// total order as the binary heap, so the SAME golden files pin runs under
// either scheduler.  These re-run two of the pinned configurations with
// SchedulerKind::kCalendar; any divergence in digest or metrics means the
// backends disagree on event ordering.
TEST(GoldenDigest, StringBasicContinuousCalendar) {
  StringExperimentConfig config;
  config.m = 5.0;
  config.p = 0.5;
  config.h = 4;
  config.attacker_rate_bps = 0.1e6;
  config.tau = 0.5;
  config.progressive = false;
  config.horizon_seconds = 300.0;
  config.scheduler = sim::SchedulerKind::kCalendar;
  check_golden("string_basic_continuous.txt",
               string_entries(run_string_experiment(config, 42)));
}

TEST(GoldenDigest, TreeHbpSmallCalendar) {
  TreeExperimentConfig config;
  config.scheme = Scheme::kHbp;
  config.tree.leaf_count = 60;
  config.n_clients = 12;
  config.n_attackers = 6;
  config.attacker_rate_bps = 0.5e6;
  config.sim_seconds = 30.0;
  config.attack_start = 5.0;
  config.attack_end = 25.0;
  config.epoch_seconds = 5.0;
  config.scheduler = sim::SchedulerKind::kCalendar;
  const TreeResult r = run_tree_experiment(config, 7);
  check_golden("tree_hbp_small.txt",
               {
                   {"trace_digest", hex64(r.trace_digest)},
                   {"events_executed", dec64(r.events_executed)},
                   {"captured", dec64(r.captured)},
                   {"false_captures", dec64(r.false_captures)},
                   {"mean_client_throughput", real(r.mean_client_throughput)},
                   {"control_messages", dec64(r.control_messages)},
               });
}

}  // namespace
}  // namespace hbp::scenario
