// Full-scenario integration tests: the Section 8 tree experiment at reduced
// scale, all three defense schemes, plus cross-cutting invariants
// (determinism, packet conservation, on-off and follower attack wiring,
// partial deployment).
#include "scenario/tree_experiment.hpp"

#include <gtest/gtest.h>

namespace hbp::scenario {
namespace {

TreeExperimentConfig small_config() {
  TreeExperimentConfig config;
  config.tree.leaf_count = 120;
  config.n_clients = 40;
  config.n_attackers = 10;
  config.attacker_rate_bps = 1.0e6;
  config.sim_seconds = 60.0;
  config.attack_start = 5.0;
  config.attack_end = 55.0;
  return config;
}

TEST(TreeExperiment, HbpCapturesAllAttackersWithoutFalsePositives) {
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  const auto r = run_tree_experiment(config, 21);
  EXPECT_EQ(r.captured, r.attackers);
  EXPECT_EQ(r.false_captures, 0u);
  EXPECT_GT(r.mean_capture_delay, 0.0);
  EXPECT_GT(r.hbp_activations, 0u);
  EXPECT_EQ(r.hbp_false_activations, 0u);
}

TEST(TreeExperiment, SchemeOrderingUnderAttack) {
  auto config = small_config();
  config.scheme = Scheme::kNoDefense;
  const auto none = run_tree_experiment(config, 3);
  config.scheme = Scheme::kHbp;
  const auto hbp = run_tree_experiment(config, 3);

  // Both serve ~90% before the attack.
  EXPECT_NEAR(none.baseline_throughput, 0.9, 0.08);
  EXPECT_NEAR(hbp.baseline_throughput, 0.9, 0.08);
  // Under attack HBP clearly beats no defense.
  EXPECT_GT(hbp.mean_client_throughput, none.mean_client_throughput + 0.2);
  // And no defense collapses toward the proportional share.
  EXPECT_LT(none.mean_client_throughput, 0.5);
}

TEST(TreeExperiment, PushbackCreatesSessionsAndLimits) {
  auto config = small_config();
  config.scheme = Scheme::kPushback;
  const auto r = run_tree_experiment(config, 4);
  EXPECT_GT(r.pushback_requests, 0u);
  EXPECT_GT(r.pushback_limited_drops, 0u);
  EXPECT_EQ(r.captured, 0u);  // pushback never captures hosts
}

TEST(TreeExperiment, DeterministicForSameSeed) {
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  const auto a = run_tree_experiment(config, 77);
  const auto b = run_tree_experiment(config, 77);
  EXPECT_DOUBLE_EQ(a.mean_client_throughput, b.mean_client_throughput);
  EXPECT_EQ(a.captured, b.captured);
  EXPECT_DOUBLE_EQ(a.mean_capture_delay, b.mean_capture_delay);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(TreeExperiment, DifferentSeedsDiffer) {
  auto config = small_config();
  const auto a = run_tree_experiment(config, 1);
  const auto b = run_tree_experiment(config, 2);
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(TreeExperiment, ThroughputRecoversAfterCaptures) {
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  const auto r = run_tree_experiment(config, 9);
  ASSERT_EQ(r.captured, r.attackers);
  // Compare the first attack seconds with the tail end of the attack.
  double early = 0, late = 0;
  int early_n = 0, late_n = 0;
  for (const auto& p : r.timeline) {
    if (p.t_seconds >= 6 && p.t_seconds < 12) {
      early += p.fraction;
      ++early_n;
    }
    if (p.t_seconds >= 45 && p.t_seconds < 54) {
      late += p.fraction;
      ++late_n;
    }
  }
  EXPECT_GT(late / late_n, early / early_n);
  EXPECT_GT(late / late_n, 0.8);  // recovered close to the 90% baseline
}

TEST(TreeExperiment, OnOffAttackersStillCapturedByProgressive) {
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  config.n_attackers = 4;
  config.onoff_t_on = 3.0;
  config.onoff_t_off = 7.0;
  config.sim_seconds = 200.0;
  config.attack_end = 195.0;
  config.hbp.progressive = true;
  const auto r = run_tree_experiment(config, 31);
  EXPECT_GT(r.captured, 0u);
  EXPECT_EQ(r.false_captures, 0u);
}

TEST(TreeExperiment, FollowerAttackWiredToSchedule) {
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  config.n_attackers = 4;
  config.follower_delay = 0.5;
  config.sim_seconds = 120.0;
  config.attack_end = 115.0;
  const auto r = run_tree_experiment(config, 13);
  // A fast follower evades within the epoch; captures need several epochs
  // and may stay partial — but nothing innocent is ever cut.
  EXPECT_EQ(r.false_captures, 0u);
}

TEST(TreeExperiment, PartialDeploymentStillCapturesSome) {
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  config.hbp_deploy_fraction = 0.6;
  const auto r = run_tree_experiment(config, 15);
  EXPECT_EQ(r.false_captures, 0u);
  EXPECT_GT(r.captured, 0u);       // bridging keeps it partially effective
  EXPECT_LE(r.captured, r.attackers);
}

TEST(TreeExperiment, LevelKWeightingImprovesPushbackForCloseAttackers) {
  auto config = small_config();
  config.scheme = Scheme::kPushback;
  config.placement = AttackerPlacement::kClose;
  const auto plain = run_tree_experiment(config, 8);
  config.pb_weighted_by_hosts = true;
  const auto weighted = run_tree_experiment(config, 8);
  // Weighting shares by the host count behind each port is exactly the
  // Level-k fix for the close-attacker pathology (Section 2, Mitigation).
  EXPECT_GT(weighted.mean_client_throughput,
            plain.mean_client_throughput);
}

TEST(TreeExperiment, RedBottleneckWorksWithAllSchemes) {
  // ACC was designed around RED queues; the scenario supports RED at the
  // bottleneck and every scheme must still behave qualitatively the same.
  auto config = small_config();
  config.tree.red_bottleneck = true;

  config.scheme = Scheme::kNoDefense;
  const auto none = run_tree_experiment(config, 12);
  config.scheme = Scheme::kPushback;
  const auto pb = run_tree_experiment(config, 12);
  config.scheme = Scheme::kHbp;
  const auto hbp = run_tree_experiment(config, 12);

  EXPECT_LT(none.mean_client_throughput, 0.55);
  EXPECT_GT(pb.pushback_requests, 0u);
  EXPECT_EQ(hbp.captured, hbp.attackers);
  EXPECT_GT(hbp.mean_client_throughput, none.mean_client_throughput);
}

TEST(TreeExperiment, MultipleVictimsTracedConcurrently) {
  // Attackers pick targets uniformly over the five servers; captures must
  // be attributed to more than one honeypot address (independent session
  // trees running at once).
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  config.n_attackers = 15;
  config.sim_seconds = 80.0;
  config.attack_end = 75.0;
  // Count distinct dst addresses among capture events via a listener-free
  // route: run once and inspect the recorder events indirectly through the
  // capture count (15 attackers over 5 servers => >= 2 distinct targets
  // with overwhelming probability, so full capture implies concurrency).
  const auto r = run_tree_experiment(config, 23);
  EXPECT_EQ(r.captured, r.attackers);
  EXPECT_EQ(r.false_captures, 0u);
}

TEST(TreeExperiment, BenignProbesVsActivationThreshold) {
  // Section 5.3 false positives: benign probes land in honeypot windows.
  // With threshold 1 every stray probe wakes the defense (false
  // activations); a higher threshold suppresses them.  No attack runs.
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  config.n_attackers = 1;
  config.attack_start = 59.0;  // effectively no attack
  config.attack_end = 59.5;
  config.benign_probe_rate = 2.0;

  config.hbp.activation_threshold = 1;
  const auto trigger_happy = run_tree_experiment(config, 5);
  EXPECT_GT(trigger_happy.hbp_false_activations, 0u);

  config.hbp.activation_threshold = 100;
  const auto cautious = run_tree_experiment(config, 5);
  EXPECT_EQ(cautious.hbp_activations, 0u);
  EXPECT_EQ(cautious.hbp_false_activations, 0u);
}

TEST(TreeExperiment, EarlyDirectRequestsNeverDivertActiveTraffic) {
  // Progressive direct requests arrive before the honeypot window opens,
  // while the server is still active and legitimate clients still send to
  // it.  The session-window gating must keep those packets flowing and
  // keep innocents uncaptured — under partial deployment the broadcast
  // bridging also hands sessions to client-only stub ASs, the worst case.
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  config.hbp_deploy_fraction = 0.5;
  config.hbp.progressive = true;
  config.sim_seconds = 120.0;
  config.attack_end = 115.0;
  config.onoff_t_on = 2.0;  // stalls propagation => many direct requests
  config.onoff_t_off = 8.0;
  for (const std::uint64_t seed : {2ull, 5ull, 8ull}) {
    const auto r = run_tree_experiment(config, seed);
    EXPECT_EQ(r.false_captures, 0u) << "seed " << seed;
  }
}

TEST(TreeExperiment, TcpDownloadsCollapseFromAckLossAndRecoverWithHbp) {
  // Section 3 damage model: the downloads' data direction has spare
  // capacity; only their ACKs cross the attacked direction.
  auto config = small_config();
  config.tcp_downloads = 2;
  config.sim_seconds = 90.0;
  config.attack_start = 25.0;
  config.attack_end = 85.0;
  config.n_attackers = 12;
  // Cumulative ACKs shrug off moderate loss; the collapse needs a heavy
  // flood (~75% loss on the ACK direction), as in the paper's scenarios.
  config.attacker_rate_bps = 5.0e6;

  config.scheme = Scheme::kNoDefense;
  const auto none = run_tree_experiment(config, 6);
  EXPECT_GT(none.tcp_goodput_before, 2e6);
  EXPECT_LT(none.tcp_goodput_during, 0.6 * none.tcp_goodput_before);

  config.scheme = Scheme::kHbp;
  const auto hbp = run_tree_experiment(config, 6);
  EXPECT_GT(hbp.tcp_goodput_during, 1.5 * none.tcp_goodput_during);
}

TEST(TreeExperiment, ControlMessageOverheadScalesWithAttackers) {
  // Section 5.3: "Although the number of messages is linear in the number
  // of attackers, the number of attack messages suppressed by the scheme
  // is much higher."
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  config.n_attackers = 4;
  const auto few = run_tree_experiment(config, 2);
  config.n_attackers = 16;
  const auto many = run_tree_experiment(config, 2);
  // Roughly linear: 4x the attackers => between 1.5x and 8x the messages.
  EXPECT_GT(many.control_messages, few.control_messages * 3 / 2);
  EXPECT_LT(many.control_messages, few.control_messages * 8);
  // And both are dwarfed by the attack packets suppressed.
  const double attack_packets =
      16 * (config.attack_end - config.attack_start) *
      config.attacker_rate_bps / 8000.0;
  EXPECT_LT(static_cast<double>(many.control_messages),
            0.05 * attack_packets);
}

TEST(ToString, SchemeAndPlacementNames) {
  EXPECT_EQ(to_string(Scheme::kHbp), "Honeypot Back-propagation");
  EXPECT_EQ(to_string(Scheme::kPushback), "Pushback");
  EXPECT_EQ(to_string(Scheme::kNoDefense), "No Defense");
  EXPECT_EQ(to_string(AttackerPlacement::kClose), "Close");
  EXPECT_EQ(to_string(AttackerPlacement::kFar), "Far");
  EXPECT_EQ(to_string(AttackerPlacement::kEven), "Evenly Distributed");
}

TEST(TreeExperiment, ReplicatedSummaryAggregates) {
  auto config = small_config();
  config.scheme = Scheme::kHbp;
  config.tree.leaf_count = 80;
  config.n_clients = 25;
  config.n_attackers = 5;
  config.sim_seconds = 40.0;
  config.attack_end = 35.0;
  const auto summary = run_replicated(config, 3, 100);
  EXPECT_EQ(summary.throughput.count(), 3u);
  EXPECT_GT(summary.throughput.mean(), 0.3);
  EXPECT_DOUBLE_EQ(summary.false_captures.mean(), 0.0);
}

}  // namespace
}  // namespace hbp::scenario
