// Telemetry determinism at the scenario level (the ISSUE acceptance tests):
//  - the rendered run report, minus the trailing "perf" object, is
//    byte-identical across two same-seed runs;
//  - enabling telemetry profiling does not move the trace digest.
#include <gtest/gtest.h>

#include <string>

#include "scenario/string_experiment.hpp"
#include "scenario/tree_experiment.hpp"
#include "telemetry/report.hpp"

namespace hbp::scenario {
namespace {

TreeExperimentConfig mini_tree(bool profile) {
  TreeExperimentConfig config;
  config.scheme = Scheme::kHbp;
  config.tree.leaf_count = 60;
  config.n_clients = 15;
  config.n_attackers = 5;
  config.attacker_rate_bps = 1.0e6;
  config.sim_seconds = 30.0;
  config.attack_start = 2.0;
  config.attack_end = 25.0;
  config.epoch_seconds = 5.0;
  config.profile = profile;
  return config;
}

std::string report_of(const TreeResult& r, bool include_perf) {
  telemetry::RunManifest manifest;
  manifest.name = "mini_tree";
  manifest.seed = 7;
  manifest.trace_digest = r.trace_digest;
  manifest.events_executed = r.events_executed;
  manifest.sim_seconds = 30.0;
  manifest.set_int("leaves", 60);
  telemetry::ReportOptions options;
  options.include_perf = include_perf;
  return telemetry::render_run_report(manifest, r.telemetry.get(), &r.perf,
                                      options);
}

TEST(RunReportDeterminism, SameSeedRendersByteIdenticalMinusPerf) {
  const auto config = mini_tree(/*profile=*/true);
  const TreeResult a = run_tree_experiment(config, 7);
  const TreeResult b = run_tree_experiment(config, 7);

  // Everything outside "perf" is a pure function of (config, seed).
  EXPECT_EQ(report_of(a, /*include_perf=*/false),
            report_of(b, /*include_perf=*/false));

  // With perf included, the deterministic prefix (up to `"perf":`) still
  // matches — the contract consumers rely on to diff reports across hosts.
  const std::string fa = report_of(a, /*include_perf=*/true);
  const std::string fb = report_of(b, /*include_perf=*/true);
  const auto pa = fa.find("\"perf\":");
  const auto pb = fb.find("\"perf\":");
  ASSERT_NE(pa, std::string::npos);
  EXPECT_EQ(fa.substr(0, pa), fb.substr(0, pb));
}

TEST(RunReportDeterminism, ProfilingDoesNotMoveTraceDigest) {
  const TreeResult off = run_tree_experiment(mini_tree(false), 7);
  const TreeResult on = run_tree_experiment(mini_tree(true), 7);
  EXPECT_EQ(off.trace_digest, on.trace_digest);
  EXPECT_EQ(off.events_executed, on.events_executed);
  EXPECT_EQ(off.mean_client_throughput, on.mean_client_throughput);

  // The profiled run carries per-label dispatch stats; the unprofiled one
  // doesn't pay for them.
  EXPECT_TRUE(off.perf.event_types.empty());
  ASSERT_FALSE(on.perf.event_types.empty());
  std::uint64_t dispatched = 0;
  for (const auto& s : on.perf.event_types) dispatched += s.count;
  EXPECT_EQ(dispatched, on.events_executed);
  EXPECT_GT(on.perf.peak_queue_depth, 0u);

  // sim.dispatch.<label> counters mirror the deterministic counts.
  ASSERT_TRUE(on.telemetry != nullptr);
  const auto* first = on.telemetry->find_counter(
      std::string("sim.dispatch.") + on.perf.event_types[0].label);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->value(), on.perf.event_types[0].count);
}

TEST(RunReportDeterminism, ScenarioMetricsExported) {
  const TreeResult r = run_tree_experiment(mini_tree(false), 7);
  ASSERT_TRUE(r.telemetry != nullptr);
  // The registry holds the ported scenario metrics and the subsystem
  // snapshots instrumented in this change.
  EXPECT_NE(r.telemetry->find_time_series("scenario.goodput.bytes"), nullptr);
  EXPECT_NE(r.telemetry->find_counter("scenario.capture.captured"), nullptr);
  EXPECT_NE(r.telemetry->find_counter("net.packets.transmitted"), nullptr);
  EXPECT_NE(r.telemetry->find_counter("net.control.total"), nullptr);
  EXPECT_NE(r.telemetry->find_counter("core.defense.captures"), nullptr);
  EXPECT_EQ(r.telemetry->find_counter("scenario.capture.captured")->value(),
            r.captured);
  EXPECT_EQ(r.telemetry->find_counter("core.defense.captures")->value(),
            r.captured);
}

TEST(RunReportDeterminism, StringExperimentProfilingDigestStable) {
  StringExperimentConfig config;
  config.m = 5.0;
  config.p = 0.5;
  config.h = 4;
  config.attacker_rate_bps = 0.1e6;
  config.tau = 0.5;
  config.horizon_seconds = 300.0;
  const StringResult off = run_string_experiment(config, 42);
  config.profile = true;
  const StringResult on = run_string_experiment(config, 42);
  EXPECT_EQ(off.trace_digest, on.trace_digest);
  EXPECT_EQ(off.events_executed, on.events_executed);
  EXPECT_EQ(off.capture_seconds, on.capture_seconds);
}

}  // namespace
}  // namespace hbp::scenario
