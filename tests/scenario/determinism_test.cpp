// Determinism guarantees of the simulation core: the same configuration and
// seed must reproduce every metric and the trace digest bit-identically, and
// thread-pool replication must be indistinguishable from the serial path
// (per-seed results land in slots and merge in seed order, so floating-point
// accumulation order never depends on thread scheduling).
#include <gtest/gtest.h>

#include "scenario/string_experiment.hpp"
#include "scenario/tree_experiment.hpp"
#include "util/thread_pool.hpp"

namespace hbp::scenario {
namespace {

StringExperimentConfig mini_string() {
  StringExperimentConfig config;
  config.m = 5.0;
  config.p = 0.5;
  config.h = 4;
  config.attacker_rate_bps = 0.1e6;
  config.tau = 0.5;
  config.horizon_seconds = 300.0;
  return config;
}

TreeExperimentConfig mini_tree() {
  TreeExperimentConfig config;
  config.scheme = Scheme::kHbp;
  config.tree.leaf_count = 60;
  config.n_clients = 15;
  config.n_attackers = 5;
  config.attacker_rate_bps = 1.0e6;
  config.sim_seconds = 30.0;
  config.attack_start = 2.0;
  config.attack_end = 25.0;
  config.epoch_seconds = 5.0;
  return config;
}

TEST(Determinism, StringSameSeedReproducesDigestAndMetrics) {
  const auto config = mini_string();
  const StringResult a = run_string_experiment(config, 42);
  const StringResult b = run_string_experiment(config, 42);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.captured, b.captured);
  EXPECT_EQ(a.capture_seconds, b.capture_seconds);
  EXPECT_EQ(a.control_messages, b.control_messages);
}

TEST(Determinism, StringDifferentSeedsProduceDifferentDigests) {
  const auto config = mini_string();
  const StringResult a = run_string_experiment(config, 1);
  const StringResult b = run_string_experiment(config, 2);
  EXPECT_NE(a.trace_digest, b.trace_digest);
}

TEST(Determinism, TreeSameSeedReproducesDigestAndMetrics) {
  const auto config = mini_tree();
  const TreeResult a = run_tree_experiment(config, 7);
  const TreeResult b = run_tree_experiment(config, 7);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.mean_client_throughput, b.mean_client_throughput);
  EXPECT_EQ(a.captured, b.captured);
  EXPECT_EQ(a.mean_capture_delay, b.mean_capture_delay);
}

TEST(Determinism, StringReplicationOnPoolMatchesSerialBitForBit) {
  const auto config = mini_string();
  const StringSummary serial = run_string_replicated(config, 6, 100, nullptr);
  util::ThreadPool pool(4);
  const StringSummary pooled = run_string_replicated(config, 6, 100, &pool);

  EXPECT_EQ(serial.runs, pooled.runs);
  EXPECT_EQ(serial.captured, pooled.captured);
  EXPECT_EQ(serial.capture_time.count(), pooled.capture_time.count());
  // Exact equality on purpose: the merge is ordered, so the floating-point
  // sums are bit-identical, not merely close.
  EXPECT_EQ(serial.capture_time.mean(), pooled.capture_time.mean());
  EXPECT_EQ(serial.capture_time.sum(), pooled.capture_time.sum());
  EXPECT_EQ(serial.capture_time.variance(), pooled.capture_time.variance());
  EXPECT_EQ(serial.capture_time.min(), pooled.capture_time.min());
  EXPECT_EQ(serial.capture_time.max(), pooled.capture_time.max());
}

TEST(Determinism, TreeReplicationOnPoolMatchesSerialBitForBit) {
  const auto config = mini_tree();
  const TreeSummary serial = run_replicated(config, 3, 500, nullptr);
  util::ThreadPool pool(3);
  const TreeSummary pooled = run_replicated(config, 3, 500, &pool);

  EXPECT_EQ(serial.throughput.count(), pooled.throughput.count());
  EXPECT_EQ(serial.throughput.mean(), pooled.throughput.mean());
  EXPECT_EQ(serial.throughput.variance(), pooled.throughput.variance());
  EXPECT_EQ(serial.capture_delay.mean(), pooled.capture_delay.mean());
  EXPECT_EQ(serial.capture_fraction.mean(), pooled.capture_fraction.mean());
  EXPECT_EQ(serial.false_captures.mean(), pooled.false_captures.mean());
}

}  // namespace
}  // namespace hbp::scenario
