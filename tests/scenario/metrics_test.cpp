#include "scenario/metrics.hpp"

#include <gtest/gtest.h>

namespace hbp::scenario {
namespace {

sim::Packet data_packet(std::int32_t bytes, bool attack = false) {
  sim::Packet p;
  p.type = sim::PacketType::kData;
  p.size_bytes = bytes;
  p.is_attack = attack;
  return p;
}

TEST(ThroughputMeter, BinsBytesIntoIntervals) {
  sim::Simulator simulator;
  ThroughputMeter meter(simulator, 8e6);  // reference 8 Mb/s => 1 MB/s
  simulator.at(sim::SimTime::seconds(0.5),
               [&] { meter.on_delivery(0, data_packet(500'000)); });
  simulator.at(sim::SimTime::seconds(2.5),
               [&] { meter.on_delivery(0, data_packet(250'000)); });
  simulator.run_all();

  const auto timeline = meter.timeline(4.0);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_DOUBLE_EQ(timeline[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(timeline[1].fraction, 0.0);
  EXPECT_DOUBLE_EQ(timeline[2].fraction, 0.25);
  EXPECT_DOUBLE_EQ(timeline[3].fraction, 0.0);
}

TEST(ThroughputMeter, IgnoresAttackAndControlPackets) {
  sim::Simulator simulator;
  ThroughputMeter meter(simulator, 8e6);
  meter.on_delivery(0, data_packet(1000, /*attack=*/true));
  sim::Packet probe;
  probe.type = sim::PacketType::kProbe;
  probe.size_bytes = 1000;
  meter.on_delivery(0, probe);
  sim::Packet ack;
  ack.type = sim::PacketType::kHandshakeAck;
  ack.size_bytes = 1000;
  meter.on_delivery(0, ack);
  EXPECT_EQ(meter.total_bytes(), 0u);
}

TEST(ThroughputMeter, MeanFractionOverWindow) {
  sim::Simulator simulator;
  ThroughputMeter meter(simulator, 8e6);
  simulator.at(sim::SimTime::seconds(1.5),
               [&] { meter.on_delivery(0, data_packet(1'000'000)); });
  simulator.at(sim::SimTime::seconds(2.5),
               [&] { meter.on_delivery(0, data_packet(1'000'000)); });
  simulator.run_all();
  // Bins 1 and 2 hold 1 MB each; mean over [1, 3) = 1 MB/s = full.
  EXPECT_DOUBLE_EQ(meter.mean_fraction(1.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(meter.mean_fraction(0.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(meter.mean_fraction(3.0, 4.0), 0.0);
}

TEST(CaptureRecorder, ScoresAgainstGroundTruth) {
  CaptureRecorder recorder;
  recorder.set_attackers({10, 11, 12});
  recorder.on_capture({10, 1, sim::SimTime::seconds(12)});
  recorder.on_capture({99, 1, sim::SimTime::seconds(13)});  // innocent!
  recorder.on_capture({11, 1, sim::SimTime::seconds(20)});
  EXPECT_EQ(recorder.attackers_captured(), 2u);
  EXPECT_EQ(recorder.false_captures(), 1u);
  EXPECT_NEAR(recorder.capture_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(CaptureRecorder, DelaysMeasuredFromAttackStart) {
  CaptureRecorder recorder;
  recorder.set_attackers({1, 2});
  recorder.on_capture({1, 5, sim::SimTime::seconds(15)});
  recorder.on_capture({2, 5, sim::SimTime::seconds(25)});
  EXPECT_DOUBLE_EQ(recorder.mean_capture_delay(5.0), 15.0);
  EXPECT_DOUBLE_EQ(recorder.max_capture_delay(5.0), 20.0);
  const auto delays = recorder.capture_delays(5.0);
  EXPECT_EQ(delays.size(), 2u);
}

TEST(CaptureRecorder, NoCapturesSentinel) {
  CaptureRecorder recorder;
  recorder.set_attackers({1});
  EXPECT_DOUBLE_EQ(recorder.mean_capture_delay(0.0), -1.0);
  EXPECT_DOUBLE_EQ(recorder.max_capture_delay(0.0), -1.0);
  EXPECT_DOUBLE_EQ(recorder.capture_fraction(), 0.0);
}

}  // namespace
}  // namespace hbp::scenario
