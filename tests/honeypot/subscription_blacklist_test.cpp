#include <gtest/gtest.h>

#include <memory>

#include "honeypot/blacklist.hpp"
#include "honeypot/checkpoint.hpp"
#include "honeypot/subscription.hpp"

namespace hbp::honeypot {
namespace {

std::shared_ptr<HashChain> chain() {
  return std::make_shared<HashChain>(util::Sha256::hash("subs"), 256);
}

TEST(Subscription, IssuesValidKeyWithTrustScaledExpiry) {
  SubscriptionService service(chain(), 10);
  const ClientKey low = service.subscribe(5, 1);
  const ClientKey high = service.subscribe(5, 4);
  EXPECT_EQ(low.epoch_limit, 15u);
  EXPECT_EQ(high.epoch_limit, 45u);
  EXPECT_TRUE(service.valid(low));
  EXPECT_TRUE(service.valid(high));
  EXPECT_EQ(service.keys_issued(), 2u);
}

TEST(Subscription, ExpiryClampsToChainLength) {
  SubscriptionService service(chain(), 1000);
  const ClientKey key = service.subscribe(1, 5);
  EXPECT_EQ(key.epoch_limit, 256u);
  EXPECT_TRUE(service.valid(key));
}

TEST(Subscription, RenewCountsAndExtends) {
  SubscriptionService service(chain(), 10);
  ClientKey key = service.subscribe(1, 1);
  EXPECT_EQ(key.epoch_limit, 11u);
  key = service.renew(12, 1);
  EXPECT_EQ(key.epoch_limit, 22u);
  EXPECT_EQ(service.renewals(), 1u);
  EXPECT_EQ(service.keys_issued(), 2u);
}

TEST(Subscription, RejectsForgedKey) {
  SubscriptionService service(chain(), 10);
  ClientKey key = service.subscribe(1, 2);
  key.key[3] ^= 0xff;
  EXPECT_FALSE(service.valid(key));
}

TEST(Subscription, RejectsWrongEpochClaim) {
  SubscriptionService service(chain(), 10);
  ClientKey key = service.subscribe(1, 2);
  key.epoch_limit += 1;  // claims a later key than it holds
  EXPECT_FALSE(service.valid(key));
}

TEST(Subscription, RejectsOutOfRangeEpoch) {
  SubscriptionService service(chain(), 10);
  ClientKey key;
  key.epoch_limit = 0;
  EXPECT_FALSE(service.valid(key));
  key.epoch_limit = 10'000;
  EXPECT_FALSE(service.valid(key));
}

TEST(Blacklist, OnlyHandshakeVerifiedSourcesListed) {
  Blacklist bl;
  bl.note_handshake(100);
  EXPECT_TRUE(bl.observed_at_honeypot(100));
  EXPECT_TRUE(bl.contains(100));
  // Spoofed source with no handshake history: not listed.
  EXPECT_FALSE(bl.observed_at_honeypot(200));
  EXPECT_FALSE(bl.contains(200));
  EXPECT_EQ(bl.size(), 1u);
  EXPECT_EQ(bl.rejected_unverified(), 1u);
}

TEST(Blacklist, SpoofedFloodNeverFillsList) {
  // The paper's spoofing attack: fresh forged source per packet.  The
  // roaming-honeypots blacklist must stay empty — the gap HBP closes.
  Blacklist bl;
  for (sim::Address a = 1000; a < 2000; ++a) {
    EXPECT_FALSE(bl.observed_at_honeypot(a));
  }
  EXPECT_EQ(bl.size(), 0u);
  EXPECT_EQ(bl.rejected_unverified(), 1000u);
}

TEST(Blacklist, ListedStaysListed) {
  Blacklist bl;
  bl.note_handshake(7);
  bl.observed_at_honeypot(7);
  EXPECT_TRUE(bl.observed_at_honeypot(7));
  EXPECT_EQ(bl.size(), 1u);
}

TEST(CheckpointStore, DepositClaimRoundTrip) {
  CheckpointStore store;
  ConnectionState s;
  s.client = 42;
  s.server_index = 2;
  s.bytes = 12345;
  store.deposit(s);
  EXPECT_EQ(store.pending(), 1u);
  const auto claimed = store.claim(42);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->bytes, 12345u);
  EXPECT_EQ(claimed->server_index, 2);
  EXPECT_EQ(store.pending(), 0u);
  EXPECT_EQ(store.resumes(), 1u);
}

TEST(CheckpointStore, ClaimUnknownClientEmpty) {
  CheckpointStore store;
  EXPECT_FALSE(store.claim(9).has_value());
  EXPECT_EQ(store.resumes(), 0u);
}

TEST(CheckpointStore, RedepositOverwrites) {
  CheckpointStore store;
  ConnectionState s;
  s.client = 1;
  s.bytes = 10;
  store.deposit(s);
  s.bytes = 20;
  store.deposit(s);
  EXPECT_EQ(store.pending(), 1u);
  EXPECT_EQ(store.claim(1)->bytes, 20u);
}

}  // namespace
}  // namespace hbp::honeypot
