// Roaming TCP clients against a TCP-enabled server pool: migration follows
// the schedule, transfers keep progressing across role changes, and TCP
// packets hitting honeypot windows are flagged like any other traffic.
#include "honeypot/tcp_client.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/router.hpp"

namespace hbp::honeypot {
namespace {

struct TcpPoolFixture : public ::testing::Test {
  void SetUp() override {
    router = &network.add_node<net::Router>("r");
    net::LinkParams link;
    link.capacity_bps = 50e6;
    link.delay = sim::SimTime::millis(2);
    for (int s = 0; s < 5; ++s) {
      auto& host = network.add_node<net::Host>("server" + std::to_string(s));
      network.connect(router->id(), host.id(), link);
      host.set_address(network.assign_address(host.id()));
      servers.push_back(host.id());
      server_addrs.push_back(host.address());
    }
    client_host = &network.add_node<net::Host>("client");
    network.connect(router->id(), client_host->id(), link);
    client_host->set_address(network.assign_address(client_host->id()));
    network.compute_routes();

    chain = std::make_shared<HashChain>(util::Sha256::hash("tcp-pool"), 1024);
    schedule = std::make_unique<RoamingSchedule>(chain, 5, 3,
                                                 sim::SimTime::seconds(5));
    pool = std::make_unique<ServerPool>(simulator, network, *schedule,
                                        servers, server_addrs, store,
                                        ServerPoolParams{});
    pool->enable_tcp();
    pool->start();
  }

  sim::Simulator simulator;
  net::Network network{simulator};
  net::Router* router = nullptr;
  net::Host* client_host = nullptr;
  std::vector<sim::NodeId> servers;
  std::vector<sim::Address> server_addrs;
  std::shared_ptr<HashChain> chain;
  std::unique_ptr<RoamingSchedule> schedule;
  CheckpointStore store;
  std::unique_ptr<ServerPool> pool;
  util::Rng rng{9};
};

TEST_F(TcpPoolFixture, TransfersProgressAcrossMigrations) {
  RoamingTcpClient client(simulator, *client_host, rng, *schedule, *pool);
  client.start();
  simulator.run_until(sim::SimTime::seconds(60));  // 12 epochs
  EXPECT_GT(client.migrations(), 2u);
  // Bulk transfer over a 50 Mb/s path for 60 s minus migration dips.
  EXPECT_GT(client.sender().bytes_acked(), 100'000'000);
  EXPECT_GT(pool->legit_bytes(), 100'000'000u);
  // Never talks to a honeypot: zero honeypot hits.
  EXPECT_EQ(pool->honeypot_packets(), 0u);
}

TEST_F(TcpPoolFixture, ClientAlwaysTargetsActiveServer) {
  RoamingTcpClient client(simulator, *client_host, rng, *schedule, *pool);
  client.start();
  for (int step = 1; step <= 50; ++step) {
    simulator.run_until(sim::SimTime::seconds(step));
    // Allow boundary slack: check mid-epoch instants only.
    const double within = step - static_cast<int>(step / 5.0) * 5.0;
    if (within < 1.0 || within > 4.0) continue;
    const auto epoch = schedule->epoch_of(simulator.now());
    EXPECT_TRUE(schedule->is_active(client.current_server(), epoch))
        << "t=" << step;
  }
}

TEST_F(TcpPoolFixture, MigrationCausesHandshakesAndSlowStart) {
  RoamingTcpClient client(simulator, *client_host, rng, *schedule, *pool);
  client.start();
  simulator.run_until(sim::SimTime::seconds(60));
  EXPECT_EQ(client.sender().handshakes(), 1u + client.migrations());
}

TEST_F(TcpPoolFixture, AttackTcpTrafficToHoneypotIsFlagged) {
  // A (non-roaming-aware) TCP attacker pins one server; when that server
  // is a honeypot its SYNs/segments land as honeypot hits.
  auto& attacker_host = network.add_node<net::Host>("attacker");
  net::LinkParams link;
  link.capacity_bps = 50e6;
  link.delay = sim::SimTime::millis(2);
  network.connect(router->id(), attacker_host.id(), link);
  attacker_host.set_address(network.assign_address(attacker_host.id()));
  network.compute_routes();
  transport::TcpSender attacker(simulator, attacker_host);
  attacker.connect(server_addrs[0]);
  simulator.run_until(sim::SimTime::seconds(60));
  EXPECT_GT(pool->honeypot_packets(), 0u);
}

}  // namespace
}  // namespace hbp::honeypot
