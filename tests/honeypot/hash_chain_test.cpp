#include "honeypot/hash_chain.hpp"

#include <gtest/gtest.h>

namespace hbp::honeypot {
namespace {

util::Digest tail() { return util::Sha256::hash("tail-key"); }

TEST(HashChain, ChainRelation) {
  HashChain chain(tail(), 16);
  EXPECT_EQ(chain.length(), 16u);
  for (std::size_t i = 1; i < 16; ++i) {
    // K_i == H(K_{i+1})
    const auto next = chain.key(i + 1);
    EXPECT_TRUE(util::digest_equal(
        chain.key(i),
        util::Sha256::hash(std::span<const std::uint8_t>(next.data(),
                                                         next.size()))));
  }
}

TEST(HashChain, TailIsLastKey) {
  HashChain chain(tail(), 8);
  EXPECT_TRUE(util::digest_equal(chain.key(8), tail()));
}

TEST(HashChain, DeriveWalksBackward) {
  HashChain chain(tail(), 32);
  for (std::size_t j : {32u, 20u, 5u}) {
    for (std::size_t i = 1; i <= j; i += 3) {
      EXPECT_TRUE(util::digest_equal(HashChain::derive(chain.key(j), j, i),
                                     chain.key(i)));
    }
  }
}

TEST(HashChain, VerifyAcceptsGenuineKeys) {
  HashChain chain(tail(), 64);
  EXPECT_TRUE(HashChain::verify(chain.key(40), 40, chain.key(1), 1));
  EXPECT_TRUE(HashChain::verify(chain.key(40), 40, chain.key(40), 40));
  EXPECT_TRUE(HashChain::verify(chain.key(2), 2, chain.key(1), 1));
}

TEST(HashChain, VerifyRejectsForgedKey) {
  HashChain chain(tail(), 64);
  util::Digest forged = chain.key(40);
  forged[0] ^= 1;
  EXPECT_FALSE(HashChain::verify(forged, 40, chain.key(1), 1));
}

TEST(HashChain, VerifyRejectsWrongIndexClaim) {
  HashChain chain(tail(), 64);
  // Claiming K_40 is K_41 breaks the derivation.
  EXPECT_FALSE(HashChain::verify(chain.key(40), 41, chain.key(1), 1));
}

TEST(HashChain, VerifyRejectsFutureAnchor) {
  HashChain chain(tail(), 64);
  EXPECT_FALSE(HashChain::verify(chain.key(10), 10, chain.key(20), 20));
}

TEST(HashChain, ForwardSecrecyHoldsStructurally) {
  // Knowing K_10 yields every key <= 10 but none above: deriving K_11 from
  // K_10 is not possible via the public API (derive requires i <= j), and
  // hashing K_10 gives K_9, not K_11.
  HashChain chain(tail(), 32);
  const auto k10 = chain.key(10);
  const auto hashed = util::Sha256::hash(
      std::span<const std::uint8_t>(k10.data(), k10.size()));
  EXPECT_TRUE(util::digest_equal(hashed, chain.key(9)));
  EXPECT_FALSE(util::digest_equal(hashed, chain.key(11)));
}

TEST(HashChain, DifferentTailsDisjointChains) {
  HashChain a(util::Sha256::hash("a"), 16);
  HashChain b(util::Sha256::hash("b"), 16);
  for (std::size_t i = 1; i <= 16; ++i) {
    EXPECT_FALSE(util::digest_equal(a.key(i), b.key(i)));
  }
}

}  // namespace
}  // namespace hbp::honeypot
