// Integration tests for the roaming server pool and roaming clients on a
// small star topology: clients always hit active servers, honeypot windows
// fire, attack traffic is flagged, and connections migrate with their
// checkpointed state.
#include <gtest/gtest.h>

#include <memory>

#include "honeypot/client.hpp"
#include "honeypot/server_pool.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "traffic/spoof.hpp"

namespace hbp::honeypot {
namespace {

struct PoolFixture : public ::testing::Test {
  static constexpr int kServers = 5;

  void SetUp() override {
    router = &network.add_node<net::Router>("r");
    net::LinkParams link;
    link.capacity_bps = 100e6;
    link.delay = sim::SimTime::millis(1);
    for (int s = 0; s < kServers; ++s) {
      auto& host = network.add_node<net::Host>("server" + std::to_string(s));
      network.connect(router->id(), host.id(), link);
      host.set_address(network.assign_address(host.id()));
      server_nodes.push_back(host.id());
      server_addrs.push_back(host.address());
    }
    client_host = &network.add_node<net::Host>("client");
    network.connect(router->id(), client_host->id(), link);
    client_host->set_address(network.assign_address(client_host->id()));
    attacker_host = &network.add_node<net::Host>("attacker");
    network.connect(router->id(), attacker_host->id(), link);
    attacker_host->set_address(network.assign_address(attacker_host->id()));
    network.compute_routes();

    chain = std::make_shared<HashChain>(util::Sha256::hash("pool-test"), 512);
    schedule = std::make_unique<RoamingSchedule>(chain, kServers, 3,
                                                 sim::SimTime::seconds(5));
    ServerPoolParams params;
    params.delta = sim::SimTime::millis(50);
    params.gamma = sim::SimTime::millis(50);
    pool = std::make_unique<ServerPool>(simulator, network, *schedule,
                                        server_nodes, server_addrs, store,
                                        params);
    subscription = std::make_unique<SubscriptionService>(chain, 32);
  }

  sim::Simulator simulator;
  net::Network network{simulator};
  net::Router* router = nullptr;
  net::Host* client_host = nullptr;
  net::Host* attacker_host = nullptr;
  std::vector<sim::NodeId> server_nodes;
  std::vector<sim::Address> server_addrs;
  std::shared_ptr<HashChain> chain;
  std::unique_ptr<RoamingSchedule> schedule;
  CheckpointStore store;
  std::unique_ptr<ServerPool> pool;
  std::unique_ptr<SubscriptionService> subscription;
  util::Rng rng{5};
};

TEST_F(PoolFixture, HoneypotWindowsFireForInactiveEpochs) {
  int starts = 0, ends = 0;
  auto on_start = [&](int server, std::size_t epoch) {
    EXPECT_FALSE(schedule->is_active(server, epoch));
    ++starts;
  };
  auto on_end = [&](int, std::size_t) { ++ends; };
  pool->add_honeypot_window_listener(on_start, on_end);
  pool->start();
  simulator.run_until(sim::SimTime::seconds(50));  // 10 epochs
  // 2 honeypots per epoch x 10 epochs.
  EXPECT_EQ(starts, 20);
  EXPECT_EQ(ends, 20);
}

TEST_F(PoolFixture, ClientAlwaysHitsActiveServers) {
  pool->start();
  RoamingClientParams params;
  params.cbr.rate_bps = 0.8e6;
  params.max_clock_skew = sim::SimTime::millis(50);
  RoamingClient client(simulator, *client_host, rng, *schedule, *subscription,
                       *pool, params);
  client.start();
  simulator.run_until(sim::SimTime::seconds(100));

  EXPECT_GT(pool->legit_bytes(), 0u);
  EXPECT_EQ(pool->honeypot_packets(), 0u);  // never hit a honeypot
  EXPECT_GT(client.migrations(), 5u);       // it really roams
  // Guard-band tolerance may eat boundary packets, but nearly everything
  // is served.
  const double served =
      static_cast<double>(pool->legit_bytes()) / 1000.0;  // packets
  EXPECT_GT(served, 0.97 * static_cast<double>(client.packets_sent()));
}

TEST_F(PoolFixture, AttackOnFixedServerHitsHoneypotWindows) {
  pool->start();
  int hits = 0;
  auto on_hit = [&](int server, const sim::Packet& p) {
    EXPECT_EQ(pool->address(server), p.dst);
    EXPECT_TRUE(p.is_attack);
    ++hits;
  };
  pool->add_honeypot_hit_listener(on_hit);
  traffic::CbrParams params;
  params.rate_bps = 0.8e6;
  params.is_attack = true;
  traffic::CbrSource attacker(simulator, *attacker_host, rng, params,
                              [this] { return server_addrs[0]; },
                              traffic::random_spoof());
  attacker.start();
  simulator.run_until(sim::SimTime::seconds(100));
  EXPECT_GT(hits, 100);
  EXPECT_EQ(pool->honeypot_packets(), static_cast<std::uint64_t>(hits));
  EXPECT_EQ(pool->honeypot_false_hits(), 0u);
  // The attacker also hits the server while it is active.
  EXPECT_GT(pool->attack_bytes_served(), 0u);
}

TEST_F(PoolFixture, WindowPredicatesAreExclusive) {
  pool->start();
  simulator.run_until(sim::SimTime::seconds(1));
  for (int s = 0; s < kServers; ++s) {
    for (double t : {0.1, 2.5, 5.05, 7.0, 12.3, 26.0}) {
      const auto at = sim::SimTime::seconds(t);
      EXPECT_FALSE(pool->in_active_window(s, at) &&
                   pool->in_honeypot_window(s, at));
    }
  }
}

TEST_F(PoolFixture, ConnectionStateMigratesViaCheckpoints) {
  pool->start();
  RoamingClientParams params;
  params.cbr.rate_bps = 0.8e6;
  RoamingClient client(simulator, *client_host, rng, *schedule, *subscription,
                       *pool, params);
  client.start();
  simulator.run_until(sim::SimTime::seconds(100));
  EXPECT_GT(pool->connections_migrated(), 0u);
  EXPECT_GT(store.deposits(), 0u);
  EXPECT_GT(store.resumes(), 0u);
}

TEST_F(PoolFixture, SubscriptionRenewalHappensOnExpiry) {
  pool->start();
  RoamingClientParams params;
  params.cbr.rate_bps = 0.8e6;
  params.trust_level = 1;  // expires after 32 epochs = 160 s
  RoamingClient client(simulator, *client_host, rng, *schedule, *subscription,
                       *pool, params);
  client.start();
  simulator.run_until(sim::SimTime::seconds(300));
  EXPECT_GE(client.renewals(), 1u);
  EXPECT_GT(client.packets_skipped(), 0u);
  EXPECT_EQ(subscription->renewals(), client.renewals());
}

TEST_F(PoolFixture, HandshakesFeedBlacklist) {
  pool->start();
  RoamingClientParams params;
  params.cbr.rate_bps = 0.8e6;
  RoamingClient client(simulator, *client_host, rng, *schedule, *subscription,
                       *pool, params);
  client.start();
  simulator.run_until(sim::SimTime::seconds(20));
  // The client handshook with at least one server; if one of its packets
  // ever hit a honeypot it would be blacklisted — but none did, so the
  // blacklist is empty while the handshake record exists.
  EXPECT_EQ(pool->blacklist().size(), 0u);
  pool->blacklist().note_handshake(0xbeef);
  EXPECT_TRUE(pool->blacklist().observed_at_honeypot(0xbeef));
}

TEST_F(PoolFixture, IndexOfAddressRoundTrip) {
  for (int s = 0; s < kServers; ++s) {
    EXPECT_EQ(pool->index_of(pool->address(s)), s);
  }
  EXPECT_EQ(pool->index_of(0xffff), -1);
}

}  // namespace
}  // namespace hbp::honeypot
