#include "honeypot/checkpoint.hpp"

#include <gtest/gtest.h>

namespace hbp::honeypot {
namespace {

ConnectionState state(sim::Address client, int server, std::uint64_t bytes) {
  ConnectionState s;
  s.client = client;
  s.server_index = server;
  s.bytes = bytes;
  return s;
}

TEST(CheckpointStore, ClaimWithoutDepositIsBrandNew) {
  CheckpointStore store;
  EXPECT_FALSE(store.claim(42).has_value());
  EXPECT_EQ(store.deposits(), 0u);
  EXPECT_EQ(store.resumes(), 0u);
  EXPECT_EQ(store.pending(), 0u);
}

TEST(CheckpointStore, DepositThenClaimRoundTrips) {
  CheckpointStore store;
  ConnectionState s = state(7, 2, 12'345);
  s.migrations = 3;
  s.last_update = sim::SimTime::seconds(9);
  store.deposit(s);
  EXPECT_EQ(store.deposits(), 1u);
  EXPECT_EQ(store.pending(), 1u);

  const auto claimed = store.claim(7);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->client, 7u);
  EXPECT_EQ(claimed->server_index, 2);
  EXPECT_EQ(claimed->bytes, 12'345u);
  EXPECT_EQ(claimed->migrations, 3u);
  EXPECT_EQ(claimed->last_update, sim::SimTime::seconds(9));
  EXPECT_EQ(store.resumes(), 1u);
  EXPECT_EQ(store.pending(), 0u);
}

TEST(CheckpointStore, ClaimConsumesTheCheckpoint) {
  CheckpointStore store;
  store.deposit(state(7, 0, 100));
  ASSERT_TRUE(store.claim(7).has_value());
  // A second claim finds nothing: the client carried the checkpoint away.
  EXPECT_FALSE(store.claim(7).has_value());
  EXPECT_EQ(store.resumes(), 1u);
}

TEST(CheckpointStore, RedepositOverwritesPerClient) {
  CheckpointStore store;
  store.deposit(state(7, 0, 100));
  store.deposit(state(7, 1, 250));  // same client checkpoints again
  EXPECT_EQ(store.deposits(), 2u);
  EXPECT_EQ(store.pending(), 1u);
  const auto claimed = store.claim(7);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->server_index, 1);
  EXPECT_EQ(claimed->bytes, 250u);
}

TEST(CheckpointStore, IndependentClients) {
  CheckpointStore store;
  store.deposit(state(1, 0, 10));
  store.deposit(state(2, 1, 20));
  EXPECT_EQ(store.pending(), 2u);
  const auto one = store.claim(1);
  const auto two = store.claim(2);
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(one->bytes, 10u);
  EXPECT_EQ(two->bytes, 20u);
  EXPECT_FALSE(store.claim(3).has_value());
}

TEST(CheckpointStore, ByteCountersSurviveRepeatedMigration) {
  // Section 4: byte progress accumulates across an arbitrary number of
  // server switches without loss.
  CheckpointStore store;
  ConnectionState s = state(9, 0, 0);
  for (int epoch = 0; epoch < 10; ++epoch) {
    s.bytes += 1'000;
    ++s.migrations;
    s.server_index = epoch % 3;
    store.deposit(s);
    const auto resumed = store.claim(9);
    ASSERT_TRUE(resumed.has_value());
    s = *resumed;
  }
  EXPECT_EQ(s.bytes, 10'000u);
  EXPECT_EQ(s.migrations, 10u);
  EXPECT_EQ(store.deposits(), 10u);
  EXPECT_EQ(store.resumes(), 10u);
}

}  // namespace
}  // namespace hbp::honeypot
