// Property sweep over schedules and epochs: the server pool's window
// predicates partition time correctly for every server, epoch, and guard
// configuration.
#include <gtest/gtest.h>

#include <memory>

#include "honeypot/server_pool.hpp"
#include "net/network.hpp"
#include "net/router.hpp"

namespace hbp::honeypot {
namespace {

class WindowSweep : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(WindowSweep, PredicatesPartitionTime) {
  const auto [n, k, epoch_s] = GetParam();

  sim::Simulator simulator;
  net::Network network(simulator);
  auto& router = network.add_node<net::Router>("r");
  std::vector<sim::NodeId> nodes;
  std::vector<sim::Address> addrs;
  for (int s = 0; s < n; ++s) {
    auto& host = network.add_node<net::Host>("s" + std::to_string(s));
    network.connect(router.id(), host.id(), net::LinkParams{});
    host.set_address(network.assign_address(host.id()));
    nodes.push_back(host.id());
    addrs.push_back(host.address());
  }
  network.compute_routes();

  auto chain = std::make_shared<HashChain>(util::Sha256::hash("sweep"), 256);
  RoamingSchedule schedule(chain, n, k, sim::SimTime::seconds(epoch_s));
  CheckpointStore store;
  ServerPoolParams params;
  params.delta = sim::SimTime::millis(50);
  params.gamma = sim::SimTime::millis(25);
  ServerPool pool(simulator, network, schedule, nodes, addrs, store, params);

  // Probe a dense grid of instants across 20 epochs.
  for (double t = 0.2; t < 20 * epoch_s; t += epoch_s / 7.3) {
    const auto at = sim::SimTime::seconds(t);
    const auto epoch = schedule.epoch_of(at);
    for (int s = 0; s < n; ++s) {
      const bool active = pool.in_active_window(s, at);
      const bool honeypot = pool.in_honeypot_window(s, at);
      // Never both.
      ASSERT_FALSE(active && honeypot) << "t=" << t << " s=" << s;
      // Inside an epoch, away from boundaries by more than the guards, the
      // state is determined by the schedule.
      const double into = t - schedule.epoch_start(epoch).to_seconds();
      const double left = schedule.epoch_end(epoch).to_seconds() - t;
      const double guard = 0.2;  // > delta + gamma
      if (into > guard && left > guard) {
        if (schedule.is_active(s, epoch)) {
          ASSERT_TRUE(active) << "t=" << t << " s=" << s;
        } else {
          ASSERT_TRUE(honeypot) << "t=" << t << " s=" << s;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pools, WindowSweep,
    ::testing::Values(std::make_tuple(5, 3, 10.0), std::make_tuple(5, 3, 5.0),
                      std::make_tuple(5, 1, 10.0), std::make_tuple(8, 5, 4.0),
                      std::make_tuple(3, 2, 2.0)));

}  // namespace
}  // namespace hbp::honeypot
