#include "honeypot/schedule.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace hbp::honeypot {
namespace {

std::shared_ptr<HashChain> chain() {
  return std::make_shared<HashChain>(util::Sha256::hash("sched"), 512);
}

TEST(RoamingSchedule, ExactlyKActivePerEpoch) {
  RoamingSchedule s(chain(), 5, 3, sim::SimTime::seconds(10));
  for (std::size_t e = 1; e <= 100; ++e) {
    const auto active = s.active_servers(e);
    EXPECT_EQ(active.size(), 3u);
    for (const int a : active) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, 5);
      EXPECT_TRUE(s.is_active(a, e));
    }
  }
}

TEST(RoamingSchedule, IsActiveConsistentWithActiveSet) {
  RoamingSchedule s(chain(), 5, 3, sim::SimTime::seconds(10));
  for (std::size_t e = 1; e <= 50; ++e) {
    int active_count = 0;
    for (int srv = 0; srv < 5; ++srv) {
      active_count += s.is_active(srv, e) ? 1 : 0;
    }
    EXPECT_EQ(active_count, 3);
  }
}

TEST(RoamingSchedule, DeterministicAcrossInstances) {
  RoamingSchedule a(chain(), 5, 3, sim::SimTime::seconds(10));
  RoamingSchedule b(chain(), 5, 3, sim::SimTime::seconds(10));
  for (std::size_t e = 1; e <= 100; ++e) {
    EXPECT_EQ(a.active_servers(e), b.active_servers(e));
  }
}

TEST(RoamingSchedule, SetsVaryAcrossEpochs) {
  RoamingSchedule s(chain(), 5, 3, sim::SimTime::seconds(10));
  int changes = 0;
  auto prev = s.active_servers(1);
  for (std::size_t e = 2; e <= 100; ++e) {
    const auto cur = s.active_servers(e);
    if (cur != prev) ++changes;
    prev = cur;
  }
  EXPECT_GT(changes, 50);  // the schedule actually roams
}

TEST(RoamingSchedule, HoneypotProbabilityMatchesFrequency) {
  RoamingSchedule s(chain(), 5, 3, sim::SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(s.honeypot_probability(), 0.4);
  int honeypot_epochs = 0;
  const int epochs = 500;
  for (std::size_t e = 1; e <= epochs; ++e) {
    honeypot_epochs += s.is_active(0, e) ? 0 : 1;
  }
  EXPECT_NEAR(honeypot_epochs / static_cast<double>(epochs), 0.4, 0.06);
}

TEST(RoamingSchedule, EpochArithmetic) {
  RoamingSchedule s(chain(), 5, 3, sim::SimTime::seconds(10));
  EXPECT_EQ(s.epoch_of(sim::SimTime::zero()), 1u);
  EXPECT_EQ(s.epoch_of(sim::SimTime::seconds(9.999)), 1u);
  EXPECT_EQ(s.epoch_of(sim::SimTime::seconds(10)), 2u);
  EXPECT_EQ(s.epoch_of(sim::SimTime::seconds(95)), 10u);
  EXPECT_EQ(s.epoch_start(1), sim::SimTime::zero());
  EXPECT_EQ(s.epoch_start(3), sim::SimTime::seconds(20));
  EXPECT_EQ(s.epoch_end(3), sim::SimTime::seconds(30));
}

TEST(RoamingSchedule, AllActiveWhenKEqualsN) {
  RoamingSchedule s(chain(), 5, 5, sim::SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(s.honeypot_probability(), 0.0);
  for (std::size_t e = 1; e <= 20; ++e) {
    EXPECT_EQ(s.active_servers(e).size(), 5u);
  }
}

// Fairness property: over many epochs, every server serves (and plays
// honeypot) at about the same frequency k/N — no server is structurally
// favoured by the key-derived selection.
class ScheduleFairness
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ScheduleFairness, EveryServerActiveAtRateKOverN) {
  const auto [n, k] = GetParam();
  RoamingSchedule s(chain(), n, k, sim::SimTime::seconds(10));
  const int epochs = 2000;
  std::vector<int> active_count(static_cast<std::size_t>(n), 0);
  for (std::size_t e = 1; e <= epochs; ++e) {
    for (const int srv : s.active_servers(e)) {
      ++active_count[static_cast<std::size_t>(srv)];
    }
  }
  const double expected = static_cast<double>(k) / n;
  for (int srv = 0; srv < n; ++srv) {
    EXPECT_NEAR(active_count[static_cast<std::size_t>(srv)] /
                    static_cast<double>(epochs),
                expected, 0.05)
        << "server " << srv << " of " << n << " (k=" << k << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(NK, ScheduleFairness,
                         ::testing::Values(std::make_pair(5, 3),
                                           std::make_pair(5, 1),
                                           std::make_pair(8, 4),
                                           std::make_pair(10, 7),
                                           std::make_pair(3, 2)));

TEST(BernoulliSchedule, FrequencyMatchesP) {
  BernoulliSchedule s(chain(), 0.3, sim::SimTime::seconds(10));
  EXPECT_DOUBLE_EQ(s.honeypot_probability(), 0.3);
  int honeypots = 0;
  const int epochs = 500;
  for (std::size_t e = 1; e <= epochs; ++e) {
    honeypots += s.is_active(0, e) ? 0 : 1;
  }
  EXPECT_NEAR(honeypots / static_cast<double>(epochs), 0.3, 0.05);
}

TEST(BernoulliSchedule, ActiveSetMatchesIsActive) {
  BernoulliSchedule s(chain(), 0.5, sim::SimTime::seconds(5));
  for (std::size_t e = 1; e <= 50; ++e) {
    const auto active = s.active_servers(e);
    EXPECT_EQ(active.empty(), !s.is_active(0, e));
  }
}

TEST(BernoulliSchedule, ExtremeProbabilities) {
  BernoulliSchedule never(chain(), 0.0, sim::SimTime::seconds(5));
  BernoulliSchedule always(chain(), 1.0, sim::SimTime::seconds(5));
  for (std::size_t e = 1; e <= 50; ++e) {
    EXPECT_TRUE(never.is_active(0, e));
    EXPECT_FALSE(always.is_active(0, e));
  }
}

}  // namespace
}  // namespace hbp::honeypot
