#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/trace_digest.hpp"
#include "util/rng.hpp"

namespace hbp::sim {
namespace {

TEST(SimTime, ArithmeticAndConversions) {
  const SimTime a = SimTime::seconds(1.5);
  EXPECT_EQ(a.nanos(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(a.to_seconds(), 1.5);
  EXPECT_EQ((a + SimTime::millis(500)).nanos(), 2'000'000'000);
  EXPECT_EQ((a - SimTime::seconds(1)).nanos(), 500'000'000);
  EXPECT_LT(SimTime::micros(1), SimTime::millis(1));
  EXPECT_EQ((SimTime::seconds(2) * 3).nanos(), 6'000'000'000);
}

TEST(SimTime, TransmissionTime) {
  // 1000 bytes at 8 Mb/s = 1 ms.
  EXPECT_EQ(transmission_time(1000, 8e6), SimTime::millis(1));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(SimTime::seconds(9), [] {});
  q.push(SimTime::seconds(4), [] {});
  EXPECT_EQ(q.next_time(), SimTime::seconds(4));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(SimTime::seconds(1), [&] { ran = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const EventId id = q.push(SimTime::seconds(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventsSkippedAmongLive) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  const EventId id = q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

// Reference-model property test: random interleavings of push/pop/cancel
// behave exactly like a sorted multimap model, under both backends.
class EventQueueModelSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, SchedulerKind>> {
};

TEST_P(EventQueueModelSweep, MatchesReferenceModel) {
  util::Rng rng(std::get<0>(GetParam()));
  EventQueue q(std::get<1>(GetParam()));
  // Model: (time, seq) -> id, mirroring the queue's ordering contract.
  std::vector<std::tuple<std::int64_t, std::uint64_t, EventId>> model;
  std::uint64_t seq = 0;
  std::vector<EventId> live_ids;

  for (int step = 0; step < 2000; ++step) {
    const auto op = rng.below(10);
    if (op < 5) {  // push
      const auto t = static_cast<std::int64_t>(rng.below(100));
      const EventId id = q.push(SimTime(t), [] {});
      model.emplace_back(t, seq++, id);
      live_ids.push_back(id);
    } else if (op < 8) {  // pop
      ASSERT_EQ(q.empty(), model.empty());
      if (model.empty()) continue;
      const auto best = std::min_element(model.begin(), model.end());
      const auto ev = q.pop();
      ASSERT_EQ(ev.at.nanos(), std::get<0>(*best));
      model.erase(best);
    } else {  // cancel a random (possibly stale) id
      if (live_ids.empty()) continue;
      const EventId id = live_ids[rng.below(live_ids.size())];
      const bool in_model =
          std::find_if(model.begin(), model.end(), [&](const auto& e) {
            return std::get<2>(e) == id;
          }) != model.end();
      ASSERT_EQ(q.cancel(id), in_model);
      if (in_model) {
        model.erase(std::find_if(model.begin(), model.end(), [&](const auto& e) {
          return std::get<2>(e) == id;
        }));
      }
    }
    ASSERT_EQ(q.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EventQueueModelSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(SchedulerKind::kBinaryHeap,
                                         SchedulerKind::kCalendar)));

// Twin-scheduler stress: drive a binary-heap queue and a calendar queue
// with the identical randomized op sequence (pushes over a wide, clustered
// time range to force calendar rebuilds; random cancels; interleaved pops)
// and require the exact same pop sequence — time AND payload — from both.
// The popped stream is also folded into a TraceDigest per queue, mirroring
// what the simulator pins in the golden tests.
class TwinSchedulerStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwinSchedulerStress, IdenticalPopOrderAndDigest) {
  util::Rng rng(GetParam());
  EventQueue heap(SchedulerKind::kBinaryHeap);
  EventQueue cal(SchedulerKind::kCalendar);
  ASSERT_EQ(heap.kind(), SchedulerKind::kBinaryHeap);
  ASSERT_EQ(cal.kind(), SchedulerKind::kCalendar);

  std::vector<int> heap_payloads;
  std::vector<int> cal_payloads;
  std::vector<std::pair<EventId, EventId>> live;  // parallel (heap, cal) ids
  TraceDigest heap_digest;
  TraceDigest cal_digest;
  std::int64_t clock = 0;  // pops only move forward from here
  int next_payload = 0;

  const auto pop_both = [&] {
    ASSERT_EQ(heap.empty(), cal.empty());
    if (heap.empty()) return;
    ASSERT_EQ(heap.next_time(), cal.next_time());
    auto a = heap.pop();
    auto b = cal.pop();
    ASSERT_EQ(a.at, b.at);
    a.fn();
    b.fn();
    ASSERT_EQ(heap_payloads, cal_payloads);
    heap_digest.fold(a.at, TraceKind::kEvent, -1, heap_payloads.size());
    cal_digest.fold(b.at, TraceKind::kEvent, -1, cal_payloads.size());
    clock = a.at.nanos();
  };

  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.below(100);
    if (op < 55) {  // push, never in the past
      // Mix of near-future clusters and far-flung outliers so the calendar
      // backend grows, shrinks, rewinds, and re-tunes its bucket width.
      std::int64_t t = clock;
      const auto shape = rng.below(10);
      if (shape < 6) {
        t += static_cast<std::int64_t>(rng.below(1'000'000));  // same day-ish
      } else if (shape < 9) {
        t += static_cast<std::int64_t>(rng.below(1'000'000'000));  // far
      } else {
        t += static_cast<std::int64_t>(rng.below(1'000'000'000'000));  // huge
      }
      const int payload = next_payload++;
      const EventId ha = heap.push(
          SimTime(t), [&heap_payloads, payload] { heap_payloads.push_back(payload); });
      const EventId ca = cal.push(
          SimTime(t), [&cal_payloads, payload] { cal_payloads.push_back(payload); });
      live.emplace_back(ha, ca);
    } else if (op < 80) {  // pop
      pop_both();
    } else {  // cancel a random (possibly stale) id pair
      if (live.empty()) continue;
      const auto idx = rng.below(live.size());
      const auto [ha, ca] = live[idx];
      ASSERT_EQ(heap.cancel(ha), cal.cancel(ca));
    }
    ASSERT_EQ(heap.size(), cal.size());
  }
  while (!heap.empty()) pop_both();
  EXPECT_EQ(heap_payloads, cal_payloads);
  EXPECT_EQ(heap_digest.value(), cal_digest.value());
  EXPECT_GT(heap_payloads.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwinSchedulerStress,
                         ::testing::Values(11, 22, 33));

// Lazy cancellation must not let bookkeeping grow without bound: stale
// ordering records are compacted once they outnumber the live ones, and
// slots recycle through the free list instead of accumulating.
class BoundedCancelState : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(BoundedCancelState, CancelChurnStaysBounded) {
  util::Rng rng(5);
  EventQueue q(GetParam());
  constexpr std::size_t kBatch = 200;
  std::vector<EventId> ids;
  for (int round = 0; round < 300; ++round) {
    ids.clear();
    for (std::size_t i = 0; i < kBatch; ++i) {
      ids.push_back(q.push(
          SimTime(static_cast<std::int64_t>(rng.below(1'000'000'000))), [] {}));
    }
    // Cancel everything we just scheduled, in random order.
    while (!ids.empty()) {
      const auto idx = rng.below(ids.size());
      EXPECT_TRUE(q.cancel(ids[idx]));
      ids[idx] = ids.back();
      ids.pop_back();
      // Invariant after every cancel: stale records never exceed
      // max(live, compaction threshold).
      ASSERT_LE(q.stale_items(), std::max<std::size_t>(64, q.size()));
    }
    ASSERT_TRUE(q.empty());
    // All slots ever needed fit the per-round peak; churn adds none.
    ASSERT_LE(q.slot_capacity(), kBatch);
    ASSERT_LE(q.backlog_items(), std::max<std::size_t>(64, q.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, BoundedCancelState,
                         ::testing::Values(SchedulerKind::kBinaryHeap,
                                           SchedulerKind::kCalendar));

TEST(EventQueue, StressRandomOrdering) {
  util::Rng rng(77);
  EventQueue q;
  std::vector<std::int64_t> popped;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<std::int64_t>(rng.below(1000));
    q.push(SimTime(t), [] {});
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    const auto ev = q.pop();
    EXPECT_GE(ev.at, last);
    last = ev.at;
  }
}

}  // namespace
}  // namespace hbp::sim
