#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace hbp::sim {
namespace {

TEST(SimTime, ArithmeticAndConversions) {
  const SimTime a = SimTime::seconds(1.5);
  EXPECT_EQ(a.nanos(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(a.to_seconds(), 1.5);
  EXPECT_EQ((a + SimTime::millis(500)).nanos(), 2'000'000'000);
  EXPECT_EQ((a - SimTime::seconds(1)).nanos(), 500'000'000);
  EXPECT_LT(SimTime::micros(1), SimTime::millis(1));
  EXPECT_EQ((SimTime::seconds(2) * 3).nanos(), 6'000'000'000);
}

TEST(SimTime, TransmissionTime) {
  // 1000 bytes at 8 Mb/s = 1 ms.
  EXPECT_EQ(transmission_time(1000, 8e6), SimTime::millis(1));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(SimTime::seconds(9), [] {});
  q.push(SimTime::seconds(4), [] {});
  EXPECT_EQ(q.next_time(), SimTime::seconds(4));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(SimTime::seconds(1), [&] { ran = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelFiredEventFails) {
  EventQueue q;
  const EventId id = q.push(SimTime::seconds(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventsSkippedAmongLive) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  const EventId id = q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

// Reference-model property test: random interleavings of push/pop/cancel
// behave exactly like a sorted multimap model.
class EventQueueModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModelSweep, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  EventQueue q;
  // Model: (time, seq) -> id, mirroring the queue's ordering contract.
  std::vector<std::tuple<std::int64_t, std::uint64_t, EventId>> model;
  std::uint64_t seq = 0;
  std::vector<EventId> live_ids;

  for (int step = 0; step < 2000; ++step) {
    const auto op = rng.below(10);
    if (op < 5) {  // push
      const auto t = static_cast<std::int64_t>(rng.below(100));
      const EventId id = q.push(SimTime(t), [] {});
      model.emplace_back(t, seq++, id);
      live_ids.push_back(id);
    } else if (op < 8) {  // pop
      ASSERT_EQ(q.empty(), model.empty());
      if (model.empty()) continue;
      const auto best = std::min_element(model.begin(), model.end());
      const auto ev = q.pop();
      ASSERT_EQ(ev.at.nanos(), std::get<0>(*best));
      model.erase(best);
    } else {  // cancel a random (possibly stale) id
      if (live_ids.empty()) continue;
      const EventId id = live_ids[rng.below(live_ids.size())];
      const bool in_model =
          std::find_if(model.begin(), model.end(), [&](const auto& e) {
            return std::get<2>(e) == id;
          }) != model.end();
      ASSERT_EQ(q.cancel(id), in_model);
      if (in_model) {
        model.erase(std::find_if(model.begin(), model.end(), [&](const auto& e) {
          return std::get<2>(e) == id;
        }));
      }
    }
    ASSERT_EQ(q.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(EventQueue, StressRandomOrdering) {
  util::Rng rng(77);
  EventQueue q;
  std::vector<std::int64_t> popped;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<std::int64_t>(rng.below(1000));
    q.push(SimTime(t), [] {});
  }
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    const auto ev = q.pop();
    EXPECT_GE(ev.at, last);
    last = ev.at;
  }
}

}  // namespace
}  // namespace hbp::sim
