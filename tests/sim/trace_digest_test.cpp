#include "sim/trace_digest.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hbp::sim {
namespace {

TEST(TraceDigest, FreshDigestsAgree) {
  TraceDigest a, b;
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.records(), 0u);
}

TEST(TraceDigest, FoldChangesValueAndCountsRecords) {
  TraceDigest d;
  const std::uint64_t empty = d.value();
  d.fold(SimTime::millis(3), TraceKind::kTransmit, 7, 42);
  EXPECT_NE(d.value(), empty);
  // fold() absorbs three words: time, kind^node, uid.
  EXPECT_EQ(d.records(), 3u);
}

TEST(TraceDigest, SameSequenceSameValue) {
  TraceDigest a, b;
  for (int i = 0; i < 100; ++i) {
    a.fold(SimTime::millis(i), TraceKind::kDeliver, i % 5, static_cast<std::uint64_t>(i));
    b.fold(SimTime::millis(i), TraceKind::kDeliver, i % 5, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.records(), b.records());
}

TEST(TraceDigest, OrderSensitive) {
  TraceDigest ab, ba;
  ab.fold(SimTime::millis(1), TraceKind::kEvent, 1, 1);
  ab.fold(SimTime::millis(2), TraceKind::kEvent, 2, 2);
  ba.fold(SimTime::millis(2), TraceKind::kEvent, 2, 2);
  ba.fold(SimTime::millis(1), TraceKind::kEvent, 1, 1);
  EXPECT_NE(ab.value(), ba.value());
}

TEST(TraceDigest, DiscriminatesEveryField) {
  auto one = [](SimTime t, TraceKind k, NodeId n, std::uint64_t uid) {
    TraceDigest d;
    d.fold(t, k, n, uid);
    return d.value();
  };
  const std::uint64_t base =
      one(SimTime::millis(1), TraceKind::kTransmit, 3, 9);
  EXPECT_NE(base, one(SimTime::millis(2), TraceKind::kTransmit, 3, 9));
  EXPECT_NE(base, one(SimTime::millis(1), TraceKind::kDeliver, 3, 9));
  EXPECT_NE(base, one(SimTime::millis(1), TraceKind::kTransmit, 4, 9));
  EXPECT_NE(base, one(SimTime::millis(1), TraceKind::kTransmit, 3, 10));
}

TEST(TraceDigest, ResetRestoresInitialState) {
  TraceDigest d;
  const std::uint64_t empty = d.value();
  d.fold(SimTime::seconds(1), TraceKind::kQueueDrop, 2, 5);
  d.reset();
  EXPECT_EQ(d.value(), empty);
  EXPECT_EQ(d.records(), 0u);
}

TEST(TraceDigest, SimulatorFoldsEveryDispatchedEvent) {
  struct Run {
    std::uint64_t digest;
    std::uint64_t records;
    std::uint64_t executed;
  };
  auto run = [](int events) {
    Simulator s;
    for (int i = 0; i < events; ++i) {
      s.at(SimTime::millis(i), [] {});
    }
    s.run_all();
    return Run{s.trace().value(), s.trace().records(), s.events_executed()};
  };
  const Run a = run(5);
  const Run b = run(5);
  EXPECT_EQ(a.digest, b.digest);
  // Each dispatched event folds one record triple.
  EXPECT_EQ(a.records, 3u * a.executed);

  const Run c = run(6);
  EXPECT_NE(a.digest, c.digest);
}

TEST(TraceDigest, SimulatorNextEventTime) {
  Simulator s;
  EXPECT_FALSE(s.next_event_time().has_value());
  s.at(SimTime::millis(7), [] {});
  s.at(SimTime::millis(3), [] {});
  ASSERT_TRUE(s.next_event_time().has_value());
  EXPECT_EQ(*s.next_event_time(), SimTime::millis(3));
  s.run_all();
  EXPECT_FALSE(s.next_event_time().has_value());
}

}  // namespace
}  // namespace hbp::sim
