#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hbp::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  std::vector<double> times;
  s.at(SimTime::seconds(2), [&] { times.push_back(s.now().to_seconds()); });
  s.at(SimTime::seconds(1), [&] { times.push_back(s.now().to_seconds()); });
  s.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator s;
  int ran = 0;
  s.at(SimTime::seconds(1), [&] { ++ran; });
  s.at(SimTime::seconds(5), [&] { ++ran; });
  s.run_until(SimTime::seconds(3));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), SimTime::seconds(3));
  EXPECT_EQ(s.events_pending(), 1u);
  s.run_until(SimTime::seconds(10));
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  double fired_at = -1;
  s.at(SimTime::seconds(4), [&] {
    s.after(SimTime::seconds(2), [&] { fired_at = s.now().to_seconds(); });
  });
  s.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 6.0);
}

TEST(Simulator, EventsChainDeterministically) {
  Simulator s;
  std::vector<int> order;
  // Events scheduled from within events at the same timestamp preserve
  // insertion order.
  s.at(SimTime::seconds(1), [&] {
    order.push_back(1);
    s.at(SimTime::seconds(1), [&] { order.push_back(2); });
    s.at(SimTime::seconds(1), [&] { order.push_back(3); });
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator s;
  bool ran = false;
  const EventId id = s.at(SimTime::seconds(1), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(ran);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator s;
  s.at(SimTime::seconds(5), [] {});
  s.run_all();
  EXPECT_DEATH(s.at(SimTime::seconds(1), [] {}), "past");
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator s;
  s.run_until(SimTime::seconds(42));
  EXPECT_EQ(s.now(), SimTime::seconds(42));
  EXPECT_EQ(s.events_executed(), 0u);
}

}  // namespace
}  // namespace hbp::sim
