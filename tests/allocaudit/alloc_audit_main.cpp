// Allocation audit for the packet hot path (no gtest: replacing the global
// allocator must own the whole binary).
//
// Replaces global operator new/delete with counting wrappers, runs a
// string-topology CBR flood to steady state, then asserts that a further
// measurement window performs ZERO heap allocations — every packet hop
// (host send, router forward, link queue, serialize/deliver events, receive)
// must run entirely on recycled storage: in-place sim::Event closures, the
// event-queue slab, and warm ring buffers.
//
// Only meaningful in Release builds (debug-mode containers and iterator
// bookkeeping allocate) and without sanitizers (ASan interposes the
// allocator); both cases exit 77, which ctest maps to SKIPPED.
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define HBP_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HBP_UNDER_ASAN 1
#endif
#endif
#ifndef HBP_UNDER_ASAN
#define HBP_UNDER_ASAN 0
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(size);
  } else {
    // aligned_alloc requires size to be a multiple of the alignment.
    p = std::aligned_alloc(align, (size + align - 1) / align * align);
  }
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#include "net/host.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/string_topo.hpp"
#include "traffic/cbr.hpp"
#include "util/rng.hpp"

namespace {

std::uint64_t g_delivered = 0;

void count_delivery(const hbp::sim::Packet&) { ++g_delivered; }

// Returns the number of heap allocations observed during a 5-simulated-
// second measurement window after a 3-second warm-up, plus the packet-hop
// count of the window via out-params.
std::uint64_t audit_backend(hbp::sim::SchedulerKind kind,
                            std::uint64_t* hops_out) {
  using namespace hbp;
  sim::Simulator simulator(kind);
  net::Network network(simulator);
  topo::StringParams params;
  params.hops = 6;
  params.link_bps = 10e6;
  const topo::StringTopo topo = topo::build_string(network, params);
  network.compute_routes();

  static_cast<net::Host&>(network.node(topo.server))
      .set_receiver(&count_delivery);

  util::Rng rng(1);
  traffic::CbrParams cbr;
  cbr.rate_bps = 4e6;  // well under link capacity: no growing backlog
  cbr.packet_size = 1000;
  const sim::Address dst = topo.server_addr;
  traffic::CbrSource source(simulator,
                            static_cast<net::Host&>(network.node(topo.attacker_host)),
                            rng, cbr, [dst] { return dst; });
  source.start();

  // Warm-up: ring buffers, the event slab, and the scheduler structure all
  // reach their steady-state capacity here.
  simulator.run_until(sim::SimTime::seconds(3));

  const std::uint64_t delivered_before = g_delivered;
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  simulator.run_until(sim::SimTime::seconds(8));
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const std::uint64_t packets = g_delivered - delivered_before;
  // Each delivered packet crossed every link of the chain: gateway, the
  // chain routers, the access switch.
  *hops_out = packets * static_cast<std::uint64_t>(params.hops + 3);
  return allocs;
}

}  // namespace

int main() {
#if !defined(NDEBUG)
  std::fprintf(stderr,
               "SKIP: allocation audit requires a Release build "
               "(debug containers allocate)\n");
  return 77;
#elif HBP_UNDER_ASAN
  std::fprintf(stderr, "SKIP: allocation audit is meaningless under ASan\n");
  return 77;
#else
  bool ok = true;
  for (const auto kind : {hbp::sim::SchedulerKind::kBinaryHeap,
                          hbp::sim::SchedulerKind::kCalendar}) {
    std::uint64_t hops = 0;
    const std::uint64_t allocs = audit_backend(kind, &hops);
    const char* name =
        kind == hbp::sim::SchedulerKind::kBinaryHeap ? "binary-heap" : "calendar";
    std::printf("%s: %llu packet hops, %llu heap allocations in window\n",
                name, static_cast<unsigned long long>(hops),
                static_cast<unsigned long long>(allocs));
    if (hops < 10000) {
      std::fprintf(stderr, "FAIL(%s): window too small (%llu hops)\n", name,
                   static_cast<unsigned long long>(hops));
      ok = false;
    }
    if (allocs != 0) {
      std::fprintf(stderr,
                   "FAIL(%s): steady-state packet path allocated %llu times "
                   "(expected 0)\n",
                   name, static_cast<unsigned long long>(allocs));
      ok = false;
    }
  }
  return ok ? 0 : 1;
#endif
}
