#include "topo/tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.hpp"

namespace hbp::topo {
namespace {

struct TreeFixture : public ::testing::Test {
  void SetUp() override {
    params.leaf_count = 120;
    util::Rng rng(2024);
    tree = build_tree(network, rng, params);
    network.compute_routes();
  }

  sim::Simulator simulator;
  net::Network network{simulator};
  TreeParams params;
  Tree tree;
};

TEST_F(TreeFixture, LeafAndServerCounts) {
  EXPECT_EQ(tree.leaf_hosts.size(), 120u);
  EXPECT_EQ(tree.servers.size(), 5u);
  EXPECT_EQ(tree.leaf_addrs.size(), 120u);
  EXPECT_EQ(tree.leaf_switch.size(), 120u);
  EXPECT_EQ(tree.leaf_access.size(), 120u);
}

TEST_F(TreeFixture, EveryLeafReachesEveryServerAtSampledDistance) {
  for (std::size_t i = 0; i < tree.leaf_hosts.size(); ++i) {
    for (const sim::Address server : tree.server_addrs) {
      const int d = network.hop_distance(tree.leaf_hosts[i], server);
      ASSERT_GT(d, 0);
      EXPECT_EQ(d, tree.leaf_hopcount[i])
          << "leaf " << i << " hop count mismatch";
    }
  }
}

TEST_F(TreeFixture, HopCountsWithinDistributionSupport) {
  for (const int h : tree.leaf_hopcount) {
    EXPECT_GE(h, 5);
    EXPECT_LE(h, 20);
  }
}

TEST_F(TreeFixture, LeavesByDistanceSorted) {
  ASSERT_EQ(tree.leaves_by_distance.size(), tree.leaf_hosts.size());
  for (std::size_t i = 1; i < tree.leaves_by_distance.size(); ++i) {
    EXPECT_LE(tree.leaf_hopcount[tree.leaves_by_distance[i - 1]],
              tree.leaf_hopcount[tree.leaves_by_distance[i]]);
  }
}

TEST_F(TreeFixture, EveryNodeBelongsToAnAs) {
  for (std::size_t n = 0; n < network.node_count(); ++n) {
    EXPECT_NE(network.node(static_cast<sim::NodeId>(n)).as_id(), net::kNoAs)
        << network.node(static_cast<sim::NodeId>(n)).name();
  }
}

TEST_F(TreeFixture, AsGraphIsATreeRootedAtServerAs) {
  const auto& as_map = tree.as_map;
  EXPECT_EQ(as_map.info(tree.server_as).downstream, net::kNoAs);
  for (std::size_t a = 0; a < as_map.count(); ++a) {
    const auto id = static_cast<net::AsId>(a);
    if (id == tree.server_as) continue;
    // Every other AS has exactly one downstream and can reach AS 0.
    EXPECT_NE(as_map.info(id).downstream, net::kNoAs);
    EXPECT_GE(as_map.as_hop_distance(id, tree.server_as), 1);
  }
}

TEST_F(TreeFixture, UpstreamDownstreamConsistent) {
  const auto& as_map = tree.as_map;
  for (std::size_t a = 0; a < as_map.count(); ++a) {
    const auto id = static_cast<net::AsId>(a);
    for (const net::AsId up : as_map.info(id).upstream) {
      EXPECT_EQ(as_map.info(up).downstream, id);
    }
  }
}

TEST_F(TreeFixture, StubAssAreNonTransitAndHostBearing) {
  const auto& as_map = tree.as_map;
  std::size_t hosts_in_stubs = 0;
  for (std::size_t a = 0; a < as_map.count(); ++a) {
    const auto& info = as_map.info(static_cast<net::AsId>(a));
    if (info.id == tree.server_as) continue;
    if (!info.transit) {
      EXPECT_TRUE(info.upstream.empty());
      hosts_in_stubs += info.hosts.size();
    }
  }
  // All leaf hosts live in non-transit (stub) ASs.
  EXPECT_EQ(hosts_in_stubs, tree.leaf_hosts.size());
}

TEST_F(TreeFixture, CrossLinksCrossAsBoundaries) {
  const auto& as_map = tree.as_map;
  for (std::size_t a = 0; a < as_map.count(); ++a) {
    const auto& info = as_map.info(static_cast<net::AsId>(a));
    std::set<int> edge_ids;
    for (const CrossLink& cl : info.cross_links) {
      EXPECT_EQ(network.node(cl.router).as_id(), info.id);
      const auto neighbor =
          network.node(cl.router).neighbor(static_cast<std::size_t>(cl.port));
      EXPECT_EQ(network.node(neighbor).as_id(), cl.neighbor_as);
      EXPECT_NE(cl.neighbor_as, info.id);
      EXPECT_TRUE(edge_ids.insert(cl.edge_id).second)
          << "duplicate edge id in AS " << info.id;
    }
  }
}

TEST_F(TreeFixture, HostsShareAsWithTheirAccessRouter) {
  for (std::size_t i = 0; i < tree.leaf_hosts.size(); ++i) {
    EXPECT_EQ(network.node(tree.leaf_hosts[i]).as_id(),
              network.node(tree.leaf_access[i]).as_id());
    EXPECT_EQ(network.node(tree.leaf_switch[i]).as_id(),
              network.node(tree.leaf_access[i]).as_id());
  }
}

TEST_F(TreeFixture, ServersInServerAs) {
  for (const sim::NodeId s : tree.servers) {
    EXPECT_EQ(network.node(s).as_id(), tree.server_as);
  }
  EXPECT_EQ(network.node(tree.gateway).as_id(), tree.server_as);
  EXPECT_NE(network.node(tree.root).as_id(), tree.server_as);
}

TEST_F(TreeFixture, DeterministicForSameSeed) {
  sim::Simulator sim2;
  net::Network net2(sim2);
  util::Rng rng2(2024);
  const Tree other = build_tree(net2, rng2, params);
  ASSERT_EQ(other.leaf_hopcount.size(), tree.leaf_hopcount.size());
  EXPECT_EQ(other.leaf_hopcount, tree.leaf_hopcount);
  EXPECT_EQ(other.as_map.count(), tree.as_map.count());
  EXPECT_EQ(net2.node_count(), network.node_count());
}

TEST_F(TreeFixture, DifferentSeedsDiffer) {
  sim::Simulator sim2;
  net::Network net2(sim2);
  util::Rng rng2(999);
  const Tree other = build_tree(net2, rng2, params);
  EXPECT_NE(other.leaf_hopcount, tree.leaf_hopcount);
}

// The structural invariants must hold for any seed and size, not just the
// fixture's: sweep a few (seed, leaf_count) combinations.
class TreeInvariantSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(TreeInvariantSweep, CoreInvariantsHold) {
  const auto [seed, leaf_count] = GetParam();
  sim::Simulator simulator;
  net::Network network(simulator);
  TreeParams params;
  params.leaf_count = leaf_count;
  util::Rng rng(seed);
  const Tree tree = build_tree(network, rng, params);
  network.compute_routes();

  ASSERT_EQ(tree.leaf_hosts.size(), leaf_count);

  // Reachability at the sampled distance.
  for (std::size_t i = 0; i < leaf_count; i += 7) {
    ASSERT_EQ(network.hop_distance(tree.leaf_hosts[i], tree.server_addrs[0]),
              tree.leaf_hopcount[i]);
  }

  // AS membership total and tree-ness.
  std::size_t members = 0;
  for (std::size_t a = 0; a < tree.as_map.count(); ++a) {
    const auto& info = tree.as_map.info(static_cast<net::AsId>(a));
    members += info.routers.size() + info.switches.size() + info.hosts.size();
    if (info.id != tree.server_as) {
      ASSERT_NE(info.downstream, net::kNoAs);
      ASSERT_GE(tree.as_map.as_hop_distance(info.id, tree.server_as), 1);
    }
    for (const net::AsId up : info.upstream) {
      ASSERT_EQ(tree.as_map.info(up).downstream, info.id);
    }
  }
  ASSERT_EQ(members, network.node_count());

  // Every leaf host lives in a non-transit AS reachable from the server AS.
  for (std::size_t i = 0; i < leaf_count; i += 11) {
    const auto as = network.node(tree.leaf_hosts[i]).as_id();
    ASSERT_FALSE(tree.as_map.info(as).transit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TreeInvariantSweep,
    ::testing::Values(std::make_tuple(1ull, 60u), std::make_tuple(2ull, 150u),
                      std::make_tuple(3ull, 150u), std::make_tuple(4ull, 400u),
                      std::make_tuple(99ull, 250u)));

TEST(TreeMultiHost, HostsPerAccessGrouping) {
  sim::Simulator simulator;
  net::Network network(simulator);
  TreeParams params;
  params.leaf_count = 40;
  params.hosts_per_access = 4;
  util::Rng rng(7);
  const Tree tree = build_tree(network, rng, params);
  EXPECT_EQ(tree.switches.size(), 10u);
  // All four hosts of a cluster share the switch.
  for (std::size_t i = 0; i < tree.leaf_hosts.size(); i += 4) {
    for (std::size_t j = 1; j < 4; ++j) {
      EXPECT_EQ(tree.leaf_switch[i], tree.leaf_switch[i + j]);
    }
  }
}

TEST(TreeRootFanout, InteriorChildrenBounded) {
  sim::Simulator simulator;
  net::Network network(simulator);
  TreeParams params;
  params.leaf_count = 200;
  params.root_interior_fanout = 5;
  util::Rng rng(11);
  const Tree tree = build_tree(network, rng, params);
  // Root ports: 1 to gateway + interior children (<= 5) + depth-1 access
  // routers.
  int interior_children = 0;
  const auto& root = network.node(tree.root);
  for (std::size_t p = 0; p < root.port_count(); ++p) {
    const auto& n = network.node(root.neighbor(p));
    if (n.kind() != net::NodeKind::kRouter) continue;
    if (n.id() == tree.gateway) continue;
    const bool is_access =
        std::find(tree.access_routers.begin(), tree.access_routers.end(),
                  n.id()) != tree.access_routers.end();
    if (!is_access) ++interior_children;
  }
  EXPECT_LE(interior_children, 5);
}

}  // namespace
}  // namespace hbp::topo
