#include "topo/string_topo.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace hbp::topo {
namespace {

TEST(StringTopo, StructureAndDistances) {
  sim::Simulator simulator;
  net::Network network(simulator);
  StringParams params;
  params.hops = 6;
  const StringTopo topo = build_string(network, params);
  network.compute_routes();

  EXPECT_EQ(topo.chain_routers.size(), 6u);
  // attacker - switch - r5..r0 - gateway - server: 6 + 3 links.
  EXPECT_EQ(network.hop_distance(topo.attacker_host, topo.server_addr), 9);
  EXPECT_EQ(topo.access_router, topo.chain_routers.back());
}

TEST(StringTopo, OneAsPerChainRouter) {
  sim::Simulator simulator;
  net::Network network(simulator);
  StringParams params;
  params.hops = 4;
  const StringTopo topo = build_string(network, params);

  EXPECT_EQ(topo.as_map.count(), 5u);  // server AS + 4 chain ASs
  EXPECT_EQ(topo.as_map.as_hop_distance(topo.attacker_as, topo.server_as), 4);
  // The chain is a path in the AS graph.
  net::AsId as = topo.attacker_as;
  int steps = 0;
  while (as != topo.server_as) {
    as = topo.as_map.info(as).downstream;
    ++steps;
    ASSERT_LE(steps, 5);
  }
  EXPECT_EQ(steps, 4);
}

TEST(StringTopo, AttackerAsIsNonTransitStub) {
  sim::Simulator simulator;
  net::Network network(simulator);
  StringParams params;
  params.hops = 3;
  const StringTopo topo = build_string(network, params);
  const auto& stub = topo.as_map.info(topo.attacker_as);
  EXPECT_FALSE(stub.transit);
  EXPECT_EQ(stub.hosts.size(), 1u);
  EXPECT_EQ(stub.switches.size(), 1u);
  // Every intermediate chain AS is transit.
  for (std::size_t i = 0; i + 1 < topo.chain_routers.size(); ++i) {
    EXPECT_TRUE(
        topo.as_map.info(network.node(topo.chain_routers[i]).as_id()).transit);
  }
}

TEST(StringTopo, OptionalClientAttached) {
  sim::Simulator simulator;
  net::Network network(simulator);
  StringParams params;
  params.hops = 2;
  params.with_client = true;
  const StringTopo topo = build_string(network, params);
  ASSERT_NE(topo.client_host, sim::kInvalidNode);
  EXPECT_EQ(network.node(topo.client_host).as_id(), topo.attacker_as);
  network.compute_routes();
  EXPECT_EQ(network.hop_distance(topo.client_host, topo.server_addr),
            network.hop_distance(topo.attacker_host, topo.server_addr));
}

TEST(StringTopo, CrossLinkDirections) {
  sim::Simulator simulator;
  net::Network network(simulator);
  StringParams params;
  params.hops = 3;
  const StringTopo topo = build_string(network, params);

  // Middle chain AS: one upstream cross link, one downstream.
  const net::AsId middle = network.node(topo.chain_routers[1]).as_id();
  const auto& info = topo.as_map.info(middle);
  ASSERT_EQ(info.cross_links.size(), 2u);
  int up = 0, down = 0;
  for (const auto& cl : info.cross_links) {
    (cl.upstream ? up : down) += 1;
  }
  EXPECT_EQ(up, 1);
  EXPECT_EQ(down, 1);
}

}  // namespace
}  // namespace hbp::topo
