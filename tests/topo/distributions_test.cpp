#include "topo/distributions.hpp"

#include <gtest/gtest.h>

#include <map>

namespace hbp::topo {
namespace {

TEST(DiscreteDistribution, SamplesStayInSupport) {
  DiscreteDistribution d({2, 5, 9}, {1.0, 2.0, 1.0});
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = d.sample(rng);
    EXPECT_TRUE(v == 2 || v == 5 || v == 9);
  }
}

TEST(DiscreteDistribution, ZeroWeightNeverSampled) {
  DiscreteDistribution d({1, 2, 3}, {1.0, 0.0, 1.0});
  util::Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(d.sample(rng), 2);
}

TEST(DiscreteDistribution, ProbabilitiesNormalised) {
  DiscreteDistribution d({1, 2}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(d.probability(0), 0.75);
  EXPECT_DOUBLE_EQ(d.probability(1), 0.25);
  EXPECT_DOUBLE_EQ(d.mean(), 1.25);
  EXPECT_EQ(d.min_value(), 1);
  EXPECT_EQ(d.max_value(), 2);
}

class DistributionSweep
    : public ::testing::TestWithParam<const char*> {
 protected:
  DiscreteDistribution dist() const {
    return std::string(GetParam()) == "hops" ? fig7_hop_count_distribution()
                                             : fig7_node_degree_distribution();
  }
};

TEST_P(DistributionSweep, EmpiricalFrequenciesMatchWeights) {
  const auto d = dist();
  util::Rng rng(42);
  std::map<std::int64_t, int> counts;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[d.sample(rng)];
  for (std::size_t i = 0; i < d.values().size(); ++i) {
    const double expected = d.probability(i);
    const double measured =
        static_cast<double>(counts[d.values()[i]]) / draws;
    EXPECT_NEAR(measured, expected, 0.005)
        << "value " << d.values()[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Fig7, DistributionSweep,
                         ::testing::Values("hops", "degrees"));

TEST(Fig7Distributions, QualitativeShape) {
  const auto hops = fig7_hop_count_distribution();
  EXPECT_EQ(hops.min_value(), 5);
  EXPECT_EQ(hops.max_value(), 20);
  EXPECT_GT(hops.mean(), 9.0);
  EXPECT_LT(hops.mean(), 13.0);

  const auto deg = fig7_node_degree_distribution();
  EXPECT_EQ(deg.min_value(), 2);
  // Degree mass is concentrated at 2-4.
  EXPECT_GT(deg.probability(0) + deg.probability(1) + deg.probability(2), 0.7);
}

}  // namespace
}  // namespace hbp::topo
