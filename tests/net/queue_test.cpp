#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace hbp::net {
namespace {

sim::Packet packet(std::int32_t bytes, std::uint64_t uid = 0) {
  sim::Packet p;
  p.size_bytes = bytes;
  p.uid = uid;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10'000);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(packet(100, i)));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, ByteCapacityEnforced) {
  DropTailQueue q(2500);
  EXPECT_TRUE(q.enqueue(packet(1000)));
  EXPECT_TRUE(q.enqueue(packet(1000)));
  EXPECT_FALSE(q.enqueue(packet(1000)));  // 3000 > 2500
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.accepted(), 2u);
  EXPECT_EQ(q.byte_length(), 2000);
  EXPECT_EQ(q.packet_length(), 2u);
  // Draining frees capacity.
  q.dequeue();
  EXPECT_TRUE(q.enqueue(packet(1000)));
}

TEST(DropTailQueue, SmallPacketFitsAfterBigRejected) {
  DropTailQueue q(1500);
  EXPECT_TRUE(q.enqueue(packet(1000)));
  EXPECT_FALSE(q.enqueue(packet(1000)));
  EXPECT_TRUE(q.enqueue(packet(400)));
}

TEST(DropTailQueue, DropObserverSeesDroppedPacket) {
  DropTailQueue q(1000);
  std::uint64_t dropped_uid = 0;
  auto on_drop = [&](const sim::Packet& p) { dropped_uid = p.uid; };
  q.set_drop_observer(on_drop);
  q.enqueue(packet(800, 1));
  q.enqueue(packet(800, 2));
  EXPECT_EQ(dropped_uid, 2u);
}

TEST(RedQueue, NoDropsBelowMinThreshold) {
  RedQueue::Params params;
  params.capacity_bytes = 100'000;
  params.min_th_bytes = 50'000;
  params.max_th_bytes = 90'000;
  RedQueue q(params);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(q.enqueue(packet(1000)));
  EXPECT_EQ(q.drops(), 0u);
}

TEST(RedQueue, EarlyDropsBetweenThresholds) {
  RedQueue::Params params;
  params.capacity_bytes = 200'000;
  params.min_th_bytes = 5'000;
  params.max_th_bytes = 50'000;
  params.max_p = 0.5;
  params.weight = 0.5;  // fast-moving average for the test
  RedQueue q(params);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (q.enqueue(packet(1000))) ++accepted;
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_GT(accepted, 0);
}

TEST(RedQueue, HardCapacityStillEnforced) {
  RedQueue::Params params;
  params.capacity_bytes = 3'000;
  params.min_th_bytes = 1'000;
  params.max_th_bytes = 2'500;
  params.weight = 0.0001;  // avg stays ~0, no early drops
  RedQueue q(params);
  EXPECT_TRUE(q.enqueue(packet(1500)));
  EXPECT_TRUE(q.enqueue(packet(1500)));
  EXPECT_FALSE(q.enqueue(packet(1500)));
}

TEST(RedQueue, DequeueFifo) {
  RedQueue::Params params;
  RedQueue q(params);
  q.enqueue(packet(100, 1));
  q.enqueue(packet(100, 2));
  EXPECT_EQ(q.dequeue()->uid, 1u);
  EXPECT_EQ(q.dequeue()->uid, 2u);
}

TEST(QueueFactory, DroptailFactoryProducesIndependentQueues) {
  auto factory = droptail_factory(1000);
  auto a = factory();
  auto b = factory();
  EXPECT_TRUE(a->enqueue(packet(900)));
  EXPECT_TRUE(b->enqueue(packet(900)));
  EXPECT_FALSE(a->enqueue(packet(900)));
  EXPECT_EQ(a->drops(), 1u);
  EXPECT_EQ(b->drops(), 0u);
}

}  // namespace
}  // namespace hbp::net
