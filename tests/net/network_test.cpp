#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/host.hpp"
#include "net/router.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"

namespace hbp::net {
namespace {

struct TwoHostsFixture : public ::testing::Test {
  // host_a -- router -- host_b, 8 Mb/s, 1 ms per link.
  void SetUp() override {
    router = &network.add_node<Router>("r");
    a = &network.add_node<Host>("a");
    b = &network.add_node<Host>("b");
    LinkParams link;
    link.capacity_bps = 8e6;
    link.delay = sim::SimTime::millis(1);
    network.connect(a->id(), router->id(), link);
    network.connect(router->id(), b->id(), link);
    a->set_address(network.assign_address(a->id()));
    b->set_address(network.assign_address(b->id()));
    network.compute_routes();
  }

  sim::Packet make_packet(sim::Address dst, std::int32_t bytes = 1000) {
    sim::Packet p;
    p.dst = dst;
    p.size_bytes = bytes;
    return p;
  }

  sim::Simulator simulator;
  Network network{simulator};
  Router* router = nullptr;
  Host* a = nullptr;
  Host* b = nullptr;
};

TEST_F(TwoHostsFixture, EndToEndDelivery) {
  int received = 0;
  auto on_packet = [&](const sim::Packet&) { ++received; };
  b->set_receiver(on_packet);
  a->send(make_packet(b->address()));
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(b->packets_received(), 1u);
  EXPECT_EQ(b->bytes_received(), 1000u);
}

TEST_F(TwoHostsFixture, DeliveryTimingExact) {
  // 1000 B at 8 Mb/s = 1 ms serialization + 1 ms propagation per link,
  // two links => 4 ms.
  sim::SimTime arrival = sim::SimTime::zero();
  auto on_packet = [&](const sim::Packet&) { arrival = simulator.now(); };
  b->set_receiver(on_packet);
  a->send(make_packet(b->address()));
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(arrival, sim::SimTime::millis(4));
}

TEST_F(TwoHostsFixture, SerializationQueuesBackToBack) {
  // Two packets sent at t=0: the second waits 1 ms behind the first at the
  // host's uplink, arriving 1 ms later.
  std::vector<sim::SimTime> arrivals;
  auto on_packet = [&](const sim::Packet&) { arrivals.push_back(simulator.now()); };
  b->set_receiver(on_packet);
  a->send(make_packet(b->address()));
  a->send(make_packet(b->address()));
  simulator.run_until(sim::SimTime::seconds(1));
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], sim::SimTime::millis(1));
}

TEST_F(TwoHostsFixture, GroundTruthOriginStamped) {
  sim::NodeId origin = sim::kInvalidNode;
  auto on_packet = [&](const sim::Packet& p) { origin = p.origin_node; };
  b->set_receiver(on_packet);
  sim::Packet p = make_packet(b->address());
  p.src = 0xdeadbeef;  // spoofed: origin must still be the real sender
  a->send(std::move(p));
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(origin, a->id());
}

TEST_F(TwoHostsFixture, TtlExpiryDropsPacket) {
  int received = 0;
  auto on_packet = [&](const sim::Packet&) { ++received; };
  b->set_receiver(on_packet);
  sim::Packet p = make_packet(b->address());
  p.ttl = 0;
  a->send(std::move(p));
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.counters().dropped_ttl, 1u);
}

TEST_F(TwoHostsFixture, MisdeliveredPacketIgnoredByHost) {
  // dst = a's address sent by a itself: router returns it to a? No — route
  // to a goes back out port 0; a receives own packet. Send to an address
  // that belongs to nobody else: host b must ignore packets not addressed
  // to it.
  int received = 0;
  auto on_packet = [&](const sim::Packet&) { ++received; };
  b->set_receiver(on_packet);
  a->send(make_packet(a->address()));  // loops back to a, not b
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(received, 0);
}

TEST_F(TwoHostsFixture, HopDistance) {
  EXPECT_EQ(network.hop_distance(a->id(), b->address()), 2);
  EXPECT_EQ(network.hop_distance(router->id(), b->address()), 1);
  EXPECT_EQ(network.hop_distance(b->id(), b->address()), 0);
}

TEST_F(TwoHostsFixture, CountersConserve) {
  auto on_packet = [](const sim::Packet&) {};
  b->set_receiver(on_packet);
  for (int i = 0; i < 10; ++i) a->send(make_packet(b->address()));
  simulator.run_until(sim::SimTime::seconds(1));
  const auto& c = network.counters();
  // Every transmission is eventually delivered or dropped somewhere.
  EXPECT_EQ(c.delivered + c.dropped_ttl + c.dropped_filter +
                network.total_queue_drops(),
            c.transmitted);
}

TEST(Network, QueueOverflowDropsAreCounted) {
  sim::Simulator simulator;
  Network network(simulator);
  auto& a = network.add_node<Host>("a");
  auto& b = network.add_node<Host>("b");
  LinkParams slow;
  slow.capacity_bps = 80'000;  // 100 ms per 1000 B packet
  slow.delay = sim::SimTime::millis(1);
  slow.queue_bytes = 2'000;  // two packets
  network.connect(a.id(), b.id(), slow);
  a.set_address(network.assign_address(a.id()));
  b.set_address(network.assign_address(b.id()));
  network.compute_routes();

  for (int i = 0; i < 10; ++i) {
    sim::Packet p;
    p.dst = b.address();
    p.size_bytes = 1000;
    a.send(std::move(p));
  }
  simulator.run_until(sim::SimTime::seconds(5));
  EXPECT_GT(network.total_queue_drops(), 0u);
  EXPECT_LT(b.packets_received(), 10u);
  EXPECT_EQ(b.packets_received() + network.total_queue_drops(), 10u);
}

TEST(Network, PortNumberingIsSymmetric) {
  sim::Simulator simulator;
  Network network(simulator);
  auto& x = network.add_node<Router>("x");
  auto& y = network.add_node<Router>("y");
  auto& z = network.add_node<Router>("z");
  const auto [xy_x, xy_y] = network.connect(x.id(), y.id(), LinkParams{});
  const auto [xz_x, xz_z] = network.connect(x.id(), z.id(), LinkParams{});
  EXPECT_EQ(xy_x, 0);
  EXPECT_EQ(xy_y, 0);
  EXPECT_EQ(xz_x, 1);
  EXPECT_EQ(xz_z, 0);
  EXPECT_EQ(x.neighbor(0), y.id());
  EXPECT_EQ(x.neighbor(1), z.id());
  EXPECT_EQ(y.neighbor(0), x.id());
}

TEST(Network, RoutesPickShortestPath) {
  // Diamond: a - r1 - r2 - b and a - r1 - r3 - r4 - b; shortest wins.
  sim::Simulator simulator;
  Network network(simulator);
  auto& r1 = network.add_node<Router>("r1");
  auto& r2 = network.add_node<Router>("r2");
  auto& r3 = network.add_node<Router>("r3");
  auto& r4 = network.add_node<Router>("r4");
  auto& a = network.add_node<Host>("a");
  auto& b = network.add_node<Host>("b");
  network.connect(a.id(), r1.id(), LinkParams{});
  network.connect(r1.id(), r2.id(), LinkParams{});
  network.connect(r1.id(), r3.id(), LinkParams{});
  network.connect(r3.id(), r4.id(), LinkParams{});
  network.connect(r2.id(), b.id(), LinkParams{});
  network.connect(r4.id(), b.id(), LinkParams{});
  a.set_address(network.assign_address(a.id()));
  b.set_address(network.assign_address(b.id()));
  network.compute_routes();
  EXPECT_EQ(network.hop_distance(a.id(), b.address()), 3);
  // r1's port toward b is the r2 port (shorter branch).
  const int port = network.route_port(r1.id(), b.address());
  EXPECT_EQ(r1.neighbor(static_cast<std::size_t>(port)), r2.id());
}

}  // namespace
}  // namespace hbp::net
