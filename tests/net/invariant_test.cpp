// InvariantChecker: a healthy network always passes; deliberately broken
// queue disciplines (lost packets, corrupted byte ledger) are detected.
#include "net/invariant_checker.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <optional>

#include "net/host.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "sim/simulator.hpp"

namespace hbp::net {
namespace {

// Accepts every packet into its accounting but silently discards every
// second one — packets vanish without a drop record, so the quiescent
// conservation check (transmitted == delivered + drops) must fire.
class LossyQueue final : public PacketQueue {
 public:
  bool enqueue(sim::Packet&& p) override {
    count_accept();
    if (++seen_ % 2 == 0) return true;  // pretend accepted, never stored
    bytes_ += p.size_bytes;
    q_.push_back(std::move(p));
    return true;
  }
  std::optional<sim::Packet> dequeue() override {
    if (q_.empty()) return std::nullopt;
    sim::Packet p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p.size_bytes;
    return p;
  }
  std::int64_t byte_length() const override { return bytes_; }
  std::size_t packet_length() const override { return q_.size(); }

 private:
  std::uint64_t seen_ = 0;
  std::int64_t bytes_ = 0;
  std::deque<sim::Packet> q_;
};

// Forgets to subtract bytes on dequeue: the ledger drifts upward, so an
// emptied queue reports non-zero bytes (always-on check) and the strict
// recount disagrees with the ledger.
class MiscountQueue final : public PacketQueue {
 public:
  bool enqueue(sim::Packet&& p) override {
    count_accept();
    bytes_ += p.size_bytes;
    q_.push_back(std::move(p));
    return true;
  }
  std::optional<sim::Packet> dequeue() override {
    if (q_.empty()) return std::nullopt;
    sim::Packet p = std::move(q_.front());
    q_.pop_front();
    // bug under test: bytes_ not decremented
    return p;
  }
  std::int64_t byte_length() const override { return bytes_; }
  std::size_t packet_length() const override { return q_.size(); }
  std::int64_t recount_bytes() const override {
    std::int64_t total = 0;
    for (const sim::Packet& p : q_) total += p.size_bytes;
    return total;
  }

 private:
  std::int64_t bytes_ = 0;
  std::deque<sim::Packet> q_;
};

struct Net {
  static void sink(const sim::Packet&) {}

  explicit Net(const LinkParams& link = {}) : network(simulator) {
    auto& r = network.add_node<Router>("r");
    a = &network.add_node<Host>("a");
    b = &network.add_node<Host>("b");
    network.connect(a->id(), r.id(), link);
    network.connect(r.id(), b->id(), link);
    a->set_address(network.assign_address(a->id()));
    b->set_address(network.assign_address(b->id()));
    network.compute_routes();
    b->set_receiver(sink);
  }

  void blast(int packets) {
    for (int i = 0; i < packets; ++i) {
      sim::Packet p;
      p.dst = b->address();
      p.size_bytes = 1000;
      a->send(std::move(p));
    }
  }

  sim::Simulator simulator;
  Network network;
  Host* a = nullptr;
  Host* b = nullptr;
};

TEST(InvariantChecker, HealthyNetworkPasses) {
  Net net;
  net.blast(50);
  net.simulator.run_all();
  InvariantChecker checker(net.network);
  EXPECT_TRUE(checker.check().empty());
  EXPECT_TRUE(checker.check_quiescent().empty());
  EXPECT_EQ(checker.checks_run(), 2u);
}

TEST(InvariantChecker, MidFlightTrafficPassesNonQuiescentCheck) {
  Net net;
  net.blast(20);
  // Stop while packets are still queued/propagating.
  net.simulator.run_until(sim::SimTime::micros(1500));
  InvariantChecker checker(net.network);
  EXPECT_TRUE(checker.check().empty());
  // But the quiescent variant must notice the in-flight packets.
  EXPECT_FALSE(checker.check_quiescent().empty());
}

TEST(InvariantChecker, OverflowDropsAreConserved) {
  LinkParams slow;
  slow.capacity_bps = 80'000;
  slow.queue_bytes = 2'000;
  Net net(slow);
  net.blast(30);
  net.simulator.run_all();
  ASSERT_GT(net.network.total_queue_drops(), 0u);
  InvariantChecker checker(net.network);
  EXPECT_TRUE(checker.check_quiescent().empty());
}

TEST(InvariantChecker, StrictModePassesOnHealthyQueues) {
  Net net;
  net.blast(20);
  net.simulator.run_until(sim::SimTime::micros(1500));  // some still queued
  InvariantChecker::Options opts;
  opts.strict = true;
  InvariantChecker checker(net.network, opts);
  EXPECT_TRUE(checker.check().empty());
}

TEST(InvariantChecker, DetectsSilentlyLostPackets) {
  LinkParams lossy;
  lossy.queue_factory = [] { return std::make_unique<LossyQueue>(); };
  Net net(lossy);
  net.blast(10);
  net.simulator.run_all();
  InvariantChecker checker(net.network);
  const auto violations = checker.check_quiescent();
  EXPECT_FALSE(violations.empty());
}

TEST(InvariantChecker, DetectsCorruptByteLedger) {
  LinkParams miscounting;
  miscounting.queue_factory = [] { return std::make_unique<MiscountQueue>(); };
  Net net(miscounting);
  net.blast(5);
  net.simulator.run_all();
  // Always-on check: the drained queue still claims bytes.
  InvariantChecker checker(net.network);
  EXPECT_FALSE(checker.check().empty());
}

TEST(InvariantChecker, StrictRecountCatchesLedgerDrift) {
  LinkParams miscounting;
  miscounting.queue_factory = [] { return std::make_unique<MiscountQueue>(); };
  Net net(miscounting);
  net.blast(20);
  // Mid-flight: queues are non-empty, so only the strict recount can see
  // that the ledger disagrees with the stored packets.
  net.simulator.run_until(sim::SimTime::micros(2500));
  InvariantChecker::Options opts;
  opts.strict = true;
  InvariantChecker strict(net.network, opts);
  EXPECT_FALSE(strict.check().empty());
}

TEST(InvariantChecker, ExpectOkAbortsOnViolation) {
  EXPECT_DEATH(
      {
        LinkParams miscounting;
        miscounting.queue_factory = [] {
          return std::make_unique<MiscountQueue>();
        };
        Net net(miscounting);
        net.blast(5);
        net.simulator.run_all();
        InvariantChecker checker(net.network);
        checker.expect_ok();
      },
      "HBP_ASSERT");
}

TEST(InvariantChecker, SchedulingIntoThePastAborts) {
  EXPECT_DEATH(
      {
        sim::Simulator simulator;
        simulator.at(sim::SimTime::seconds(1), [] {});
        simulator.run_all();
        simulator.at(sim::SimTime::millis(1), [] {});  // now == 1 s
      },
      "HBP_ASSERT");
}

TEST(InvariantChecker, WatchAuditsPeriodicallyWhileTrafficRuns) {
  Net net;
  // Spread sends over time so events remain pending across several audits.
  for (int burst = 0; burst < 10; ++burst) {
    net.simulator.at(sim::SimTime::millis(10 * burst),
                     [&net] { net.blast(5); });
  }
  InvariantChecker checker(net.network);
  checker.watch(sim::SimTime::millis(5));
  net.simulator.run_all();
  // Audited repeatedly and never kept the drained simulation alive.
  EXPECT_GT(checker.checks_run(), 5u);
  EXPECT_EQ(net.simulator.events_pending(), 0u);
}

}  // namespace
}  // namespace hbp::net
