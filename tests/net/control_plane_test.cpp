#include "net/control_plane.hpp"

#include <gtest/gtest.h>

namespace hbp::net {
namespace {

TEST(ControlPlane, DeliversAfterPerHopLatency) {
  sim::Simulator simulator;
  ControlPlane::Params params;
  params.per_hop_latency = sim::SimTime::millis(100);
  params.jitter_fraction = 0.0;
  ControlPlane cp(simulator, params);

  sim::SimTime delivered_at = sim::SimTime::zero();
  cp.send("test", 3, [&] { delivered_at = simulator.now(); });
  simulator.run_all();
  EXPECT_EQ(delivered_at, sim::SimTime::millis(300));
}

TEST(ControlPlane, JitterBoundsLatency) {
  sim::Simulator simulator;
  ControlPlane::Params params;
  params.per_hop_latency = sim::SimTime::millis(100);
  params.jitter_fraction = 0.2;
  ControlPlane cp(simulator, params);
  for (int i = 0; i < 100; ++i) {
    const double s = cp.sample_latency(2).to_seconds();
    EXPECT_GE(s, 0.16);
    EXPECT_LE(s, 0.24);
  }
}

TEST(ControlPlane, CountsPerKind) {
  sim::Simulator simulator;
  ControlPlane cp(simulator, {});
  cp.send("request", 1, [] {});
  cp.send("request", 1, [] {});
  cp.send("cancel", 1, [] {});
  EXPECT_EQ(cp.messages_sent("request"), 2u);
  EXPECT_EQ(cp.messages_sent("cancel"), 1u);
  EXPECT_EQ(cp.messages_sent("other"), 0u);
  EXPECT_EQ(cp.total_messages(), 3u);
}

TEST(ControlPlane, LossPreventsDelivery) {
  sim::Simulator simulator;
  ControlPlane::Params params;
  params.loss_probability = 1.0;
  ControlPlane cp(simulator, params);
  bool delivered = false;
  cp.send("x", 1, [&] { delivered = true; });
  simulator.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(cp.messages_lost(), 1u);
}

TEST(ControlPlane, PartialLossRoughlyMatchesProbability) {
  sim::Simulator simulator;
  ControlPlane::Params params;
  params.loss_probability = 0.3;
  ControlPlane cp(simulator, params);
  int delivered = 0;
  for (int i = 0; i < 10000; ++i) {
    cp.send("x", 1, [&] { ++delivered; });
  }
  simulator.run_all();
  EXPECT_NEAR(delivered / 10000.0, 0.7, 0.03);
}

TEST(ControlPlane, ZeroHopsDeliversImmediately) {
  sim::Simulator simulator;
  ControlPlane cp(simulator, {});
  bool delivered = false;
  cp.send("x", 0, [&] { delivered = true; });
  simulator.run_all();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(simulator.now(), sim::SimTime::zero());
}

}  // namespace
}  // namespace hbp::net
