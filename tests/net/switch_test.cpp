#include "net/switch_node.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/host.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "sim/simulator.hpp"

namespace hbp::net {
namespace {

struct SwitchFixture : public ::testing::Test {
  // h1, h2, h3 -- switch -- router -- server
  void SetUp() override {
    sw = &network.add_node<Switch>("sw");
    router = &network.add_node<Router>("r");
    server = &network.add_node<Host>("server");
    LinkParams link;
    link.capacity_bps = 10e6;
    link.delay = sim::SimTime::millis(1);
    for (int i = 0; i < 3; ++i) {
      hosts[i] = &network.add_node<Host>("h" + std::to_string(i));
      const auto [sw_port, host_port] =
          network.connect(sw->id(), hosts[i]->id(), link);
      host_ports[i] = sw_port;
      (void)host_port;
    }
    const auto [sw_up, r_down] = network.connect(sw->id(), router->id(), link);
    uplink_port = sw_up;
    (void)r_down;
    network.connect(router->id(), server->id(), link);
    for (auto* h : hosts) h->set_address(network.assign_address(h->id()));
    server->set_address(network.assign_address(server->id()));
    network.compute_routes();
  }

  void send(int host, sim::Address dst) {
    sim::Packet p;
    p.dst = dst;
    p.size_bytes = 100;
    hosts[host]->send(std::move(p));
  }

  sim::Simulator simulator;
  Network network{simulator};
  Switch* sw = nullptr;
  Router* router = nullptr;
  Host* server = nullptr;
  Host* hosts[3] = {};
  int host_ports[3] = {};
  int uplink_port = -1;
};

TEST_F(SwitchFixture, ForwardsThroughUplink) {
  send(0, server->address());
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(server->packets_received(), 1u);
  EXPECT_EQ(sw->frames_forwarded(), 1u);
}

TEST_F(SwitchFixture, LocalSwitchingBetweenHosts) {
  send(0, hosts[1]->address());
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(hosts[1]->packets_received(), 1u);
  // Local frames never touch the router.
  EXPECT_EQ(router->forwarded(), 0u);
}

TEST_F(SwitchFixture, ClosePortBlocksHost) {
  sw->close_port(host_ports[1]);
  send(0, server->address());
  send(1, server->address());
  send(2, server->address());
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(server->packets_received(), 2u);
  EXPECT_EQ(sw->frames_blocked(), 1u);
  EXPECT_TRUE(sw->is_closed(host_ports[1]));
  EXPECT_EQ(sw->closed_port_count(), 1u);
}

TEST_F(SwitchFixture, ClosedPortBlocksDownstreamToo) {
  // Traffic *to* the closed host is also not forwarded out the closed port?
  // The port is closed for frames arriving *from* it; delivery toward the
  // host still works (the paper shuts off the attacker's transmissions).
  sw->close_port(host_ports[0]);
  send(1, hosts[0]->address());
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(hosts[0]->packets_received(), 1u);
}

TEST_F(SwitchFixture, WatchCountsOnlyWatchedDestination) {
  sw->start_watch(server->address());
  EXPECT_TRUE(sw->watching(server->address()));
  send(0, server->address());
  send(1, hosts[2]->address());  // not watched
  simulator.run_until(sim::SimTime::seconds(1));
  const auto ports = sw->ports_sending_to(server->address());
  ASSERT_EQ(ports.size(), 1u);
  EXPECT_EQ(ports[0], host_ports[0]);
}

TEST_F(SwitchFixture, WatchSeesMultipleSenders) {
  sw->start_watch(server->address());
  send(0, server->address());
  send(2, server->address());
  simulator.run_until(sim::SimTime::seconds(1));
  auto ports = sw->ports_sending_to(server->address());
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<int>{host_ports[0], host_ports[2]}));
}

TEST_F(SwitchFixture, StopWatchClearsCounts) {
  sw->start_watch(server->address());
  send(0, server->address());
  simulator.run_until(sim::SimTime::seconds(1));
  sw->stop_watch(server->address());
  EXPECT_FALSE(sw->watching(server->address()));
  EXPECT_TRUE(sw->ports_sending_to(server->address()).empty());
}

TEST_F(SwitchFixture, WatchDoesNotSeeSpoofedSourceOnlyPhysicalPort) {
  // The watch identifies the physical port regardless of the forged source
  // address — the unspoofability the MAC endgame relies on.
  sw->start_watch(server->address());
  sim::Packet p;
  p.dst = server->address();
  p.src = 0x7f000001;  // forged
  p.size_bytes = 100;
  hosts[2]->send(std::move(p));
  simulator.run_until(sim::SimTime::seconds(1));
  const auto ports = sw->ports_sending_to(server->address());
  ASSERT_EQ(ports.size(), 1u);
  EXPECT_EQ(sw->attached_host(ports[0]), hosts[2]->id());
}

TEST_F(SwitchFixture, AttachedHostIdentifiesHostsAndUplink) {
  EXPECT_EQ(sw->attached_host(host_ports[0]), hosts[0]->id());
  EXPECT_EQ(sw->attached_host(uplink_port), sim::kInvalidNode);
}

}  // namespace
}  // namespace hbp::net
