// Link-level behaviour: serialization ordering with mixed packet sizes,
// delivery counters, and queue interaction.
#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/host.hpp"
#include "net/network.hpp"

namespace hbp::net {
namespace {

struct LinkFixture : public ::testing::Test {
  void SetUp() override {
    a = &network.add_node<Host>("a");
    b = &network.add_node<Host>("b");
    LinkParams link;
    link.capacity_bps = 8e6;  // 1 ms per 1000 B
    link.delay = sim::SimTime::millis(2);
    network.connect(a->id(), b->id(), link);
    a->set_address(network.assign_address(a->id()));
    b->set_address(network.assign_address(b->id()));
    network.compute_routes();
  }

  void send(std::int32_t bytes, std::uint64_t tag) {
    sim::Packet p;
    p.dst = b->address();
    p.size_bytes = bytes;
    p.flow = static_cast<std::uint32_t>(tag);
    a->send(std::move(p));
  }

  sim::Simulator simulator;
  Network network{simulator};
  Host* a = nullptr;
  Host* b = nullptr;
};

TEST_F(LinkFixture, MixedSizesStayFifo) {
  std::vector<std::uint32_t> order;
  auto on_packet = [&](const sim::Packet& p) { order.push_back(p.flow); };
  b->set_receiver(on_packet);
  send(4000, 1);
  send(100, 2);
  send(2000, 3);
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(LinkFixture, SerializationTimesScaleWithSize) {
  std::vector<double> arrivals;
  auto on_packet = [&](const sim::Packet&) {
    arrivals.push_back(simulator.now().to_seconds());
  };
  b->set_receiver(on_packet);
  send(4000, 1);  // 4 ms serialization
  send(1000, 2);  // +1 ms behind it
  simulator.run_until(sim::SimTime::seconds(1));
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.006, 1e-9);  // 4 ms tx + 2 ms prop
  EXPECT_NEAR(arrivals[1], 0.007, 1e-9);  // queued behind, 1 ms more
}

TEST_F(LinkFixture, DeliveredCountersAdvance) {
  auto on_packet = [](const sim::Packet&) {};
  b->set_receiver(on_packet);
  send(1000, 1);
  send(500, 2);
  simulator.run_until(sim::SimTime::seconds(1));
  auto& link = network.link(a->id(), 0);
  EXPECT_EQ(link.packets_delivered(), 2u);
  EXPECT_EQ(link.bytes_delivered(), 1500u);
  EXPECT_DOUBLE_EQ(link.capacity_bps(), 8e6);
  EXPECT_EQ(link.delay(), sim::SimTime::millis(2));
}

TEST_F(LinkFixture, IdleLinkRestartsCleanly) {
  std::vector<double> arrivals;
  auto on_packet = [&](const sim::Packet&) {
    arrivals.push_back(simulator.now().to_seconds());
  };
  b->set_receiver(on_packet);
  send(1000, 1);
  simulator.run_until(sim::SimTime::seconds(5));
  send(1000, 2);  // after a long idle gap, timing restarts from now
  simulator.run_until(sim::SimTime::seconds(10));
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - 5.0, 0.003, 1e-9);
}

}  // namespace
}  // namespace hbp::net
