#include "net/router.hpp"

#include <gtest/gtest.h>

#include "net/host.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace hbp::net {
namespace {

class CountingTap : public ForwardTap {
 public:
  void on_forward(const sim::Packet& p, int in_port, int out_port) override {
    ++count;
    last_in = in_port;
    last_out = out_port;
    last_uid = p.uid;
  }
  int count = 0;
  int last_in = -1;
  int last_out = -1;
  std::uint64_t last_uid = 0;
};

class ActionFilter : public PacketFilter {
 public:
  explicit ActionFilter(FilterAction a) : action(a) {}
  FilterAction on_packet(const sim::Packet&, int) override {
    ++seen;
    return action;
  }
  FilterAction action;
  int seen = 0;
};

struct RouterFixture : public ::testing::Test {
  void SetUp() override {
    router = &network.add_node<Router>("r");
    a = &network.add_node<Host>("a");
    b = &network.add_node<Host>("b");
    network.connect(a->id(), router->id(), LinkParams{});
    network.connect(router->id(), b->id(), LinkParams{});
    a->set_address(network.assign_address(a->id()));
    b->set_address(network.assign_address(b->id()));
    network.compute_routes();
  }

  void send_one() {
    sim::Packet p;
    p.dst = b->address();
    p.size_bytes = 500;
    a->send(std::move(p));
    simulator.run_until(simulator.now() + sim::SimTime::seconds(1));
  }

  sim::Simulator simulator;
  Network network{simulator};
  Router* router = nullptr;
  Host* a = nullptr;
  Host* b = nullptr;
};

TEST_F(RouterFixture, TapObservesForwardedPacketsWithPorts) {
  CountingTap tap;
  router->add_tap(&tap);
  send_one();
  EXPECT_EQ(tap.count, 1);
  EXPECT_EQ(router->neighbor(static_cast<std::size_t>(tap.last_in)), a->id());
  EXPECT_EQ(router->neighbor(static_cast<std::size_t>(tap.last_out)), b->id());
  router->remove_tap(&tap);
  send_one();
  EXPECT_EQ(tap.count, 1);
}

TEST_F(RouterFixture, DropFilterStopsPacket) {
  ActionFilter filter(FilterAction::kDrop);
  router->add_filter(&filter);
  send_one();
  EXPECT_EQ(filter.seen, 1);
  EXPECT_EQ(b->packets_received(), 0u);
  EXPECT_EQ(network.counters().dropped_filter, 1u);
  router->remove_filter(&filter);
}

TEST_F(RouterFixture, ConsumeFilterStopsWithoutDropCount) {
  ActionFilter filter(FilterAction::kConsume);
  router->add_filter(&filter);
  send_one();
  EXPECT_EQ(b->packets_received(), 0u);
  EXPECT_EQ(network.counters().dropped_filter, 0u);
  router->remove_filter(&filter);
}

TEST_F(RouterFixture, PassFilterForwards) {
  ActionFilter filter(FilterAction::kPass);
  router->add_filter(&filter);
  send_one();
  EXPECT_EQ(b->packets_received(), 1u);
  router->remove_filter(&filter);
}

TEST_F(RouterFixture, FilterChainShortCircuits) {
  ActionFilter first(FilterAction::kDrop);
  ActionFilter second(FilterAction::kPass);
  router->add_filter(&first);
  router->add_filter(&second);
  send_one();
  EXPECT_EQ(first.seen, 1);
  EXPECT_EQ(second.seen, 0);
  router->remove_filter(&first);
  router->remove_filter(&second);
}

TEST_F(RouterFixture, TapNotCalledForFilteredPackets) {
  CountingTap tap;
  ActionFilter filter(FilterAction::kDrop);
  router->add_tap(&tap);
  router->add_filter(&filter);
  send_one();
  EXPECT_EQ(tap.count, 0);
  router->remove_tap(&tap);
  router->remove_filter(&filter);
}

TEST_F(RouterFixture, TtlDecrementsPerHop) {
  std::uint8_t ttl_at_b = 0;
  auto on_packet = [&](const sim::Packet& p) { ttl_at_b = p.ttl; };
  b->set_receiver(on_packet);
  sim::Packet p;
  p.dst = b->address();
  p.ttl = 64;
  a->send(std::move(p));
  simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(ttl_at_b, 63);  // one router hop
}

TEST_F(RouterFixture, ForwardedCounter) {
  send_one();
  send_one();
  EXPECT_EQ(router->forwarded(), 2u);
}

}  // namespace
}  // namespace hbp::net
