# End-to-end determinism check for the machine-readable exporters: runs one
# bench binary twice with the same flags, each time writing a JSON record,
# and fails unless the two files agree byte-for-byte once truncated at the
# trailing host-dependent `"perf":` object (the hbp-bench/1 and
# hbp-run-report/1 layout contract — see src/telemetry/report.hpp).
#
#   cmake -DDET_BIN=<binary> "-DDET_ARGS=--a=1" -DDET_FLAG=--json
#         -DDET_OUT=<workdir> -P run_json_determinism.cmake
if(NOT DEFINED DET_BIN)
  message(FATAL_ERROR "DET_BIN not set")
endif()
if(NOT DEFINED DET_OUT)
  message(FATAL_ERROR "DET_OUT not set")
endif()
if(NOT DEFINED DET_FLAG)
  set(DET_FLAG "--json")
endif()

file(MAKE_DIRECTORY ${DET_OUT})

foreach(run 1 2)
  set(json_${run} ${DET_OUT}/det_${run}.json)
  execute_process(
    COMMAND ${DET_BIN} ${DET_ARGS} ${DET_FLAG} ${json_${run}}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "${DET_BIN} exited with ${code}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  if(NOT EXISTS ${json_${run}})
    message(FATAL_ERROR "${DET_BIN} did not write ${json_${run}}")
  endif()
endforeach()

foreach(run 1 2)
  file(READ ${json_${run}} content)
  # Keep only the deterministic prefix: everything before `"perf":`.
  string(FIND "${content}" "\"perf\":" perf_pos)
  if(perf_pos EQUAL -1)
    message(FATAL_ERROR "${json_${run}} has no \"perf\" object")
  endif()
  string(SUBSTRING "${content}" 0 ${perf_pos} prefix_${run})
  if(prefix_${run} STREQUAL "")
    message(FATAL_ERROR "${json_${run}} has an empty deterministic prefix")
  endif()
endforeach()

if(NOT prefix_1 STREQUAL prefix_2)
  message(FATAL_ERROR
    "deterministic prefixes differ between two same-seed runs of ${DET_BIN}\n"
    "compare ${DET_OUT}/det_1.json and ${DET_OUT}/det_2.json")
endif()

message(STATUS "${DET_BIN} JSON output deterministic (minus perf)")
