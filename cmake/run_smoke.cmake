# Smoke-test driver: runs one binary and fails unless it exits 0 and prints
# something.  Invoked by the smoke_* ctest entries registered in
# bench/CMakeLists.txt and examples/CMakeLists.txt:
#
#   cmake -DSMOKE_BIN=<binary> "-DSMOKE_ARGS=--a=1;--b=2" -P run_smoke.cmake
if(NOT DEFINED SMOKE_BIN)
  message(FATAL_ERROR "SMOKE_BIN not set")
endif()

execute_process(
  COMMAND ${SMOKE_BIN} ${SMOKE_ARGS}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "${SMOKE_BIN} exited with ${code}\nstdout:\n${out}\nstderr:\n${err}")
endif()

string(STRIP "${out}" stripped)
if(stripped STREQUAL "")
  message(FATAL_ERROR "${SMOKE_BIN} produced no output\nstderr:\n${err}")
endif()

message(STATUS "${SMOKE_BIN} OK (${SMOKE_ARGS})")
