# Exercises tools/bench_diff end to end: generates two hbp-bench/1 records
# from one bench binary (same flags, same seed) and diffs them.  Fails if
# the diff errors out or reports moved deterministic counters.
#
#   cmake -DDIFF_BIN=<binary> "-DDIFF_ARGS=--a=1" -DDIFF_TOOL=<bench_diff.cmake>
#         -DDIFF_OUT=<workdir> -P run_bench_diff_test.cmake
foreach(var DIFF_BIN DIFF_TOOL DIFF_OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY ${DIFF_OUT})

foreach(run 1 2)
  execute_process(
    COMMAND ${DIFF_BIN} ${DIFF_ARGS} --json ${DIFF_OUT}/rec_${run}.json
    RESULT_VARIABLE code
    OUTPUT_QUIET
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${DIFF_BIN} exited with ${code}\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND}
    -DBENCH_A=${DIFF_OUT}/rec_1.json
    -DBENCH_B=${DIFF_OUT}/rec_2.json
    -P ${DIFF_TOOL}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "bench_diff failed (${code})\n${out}\n${err}")
endif()
# Plain message() writes to stderr; merge both streams before checking.
set(all "${out}\n${err}")
if(all MATCHES "deterministic counters moved")
  message(FATAL_ERROR
    "bench_diff flagged moved counters between same-seed runs\n${all}")
endif()
if(NOT all MATCHES "wall_seconds" OR NOT all MATCHES "counters:")
  message(FATAL_ERROR "bench_diff output missing expected sections\n${all}")
endif()

message(STATUS "bench_diff OK on ${DIFF_BIN}")
