# Exercises the trace tooling end to end: runs one traced scenario twice
# (CSV + JSON exports), validates the Perfetto JSON with check_trace.cmake,
# and queries the CSV with trace_query.cmake (a capture filter must print a
# wave summary).
#
#   cmake -DTRACE_BIN=<simulate binary> "-DTRACE_ARGS=--leaves=12;..."
#         -DTRACE_TOOLS=<tools dir> -DTRACE_OUT=<workdir>
#         -P run_trace_tools_test.cmake
foreach(var TRACE_BIN TRACE_TOOLS TRACE_OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY ${TRACE_OUT})

foreach(ext csv json)
  execute_process(
    COMMAND ${TRACE_BIN} ${TRACE_ARGS} --trace=${TRACE_OUT}/run.${ext}
    RESULT_VARIABLE code
    OUTPUT_QUIET
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${TRACE_BIN} (--trace=*.${ext}) exited with ${code}\n${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND}
    -DTRACE=${TRACE_OUT}/run.json -P ${TRACE_TOOLS}/check_trace.cmake
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "check_trace failed (${code})\n${out}\n${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND}
    -DTRACE=${TRACE_OUT}/run.csv -DVERB=capture -DLIMIT=5
    -P ${TRACE_TOOLS}/trace_query.cmake
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "trace_query failed (${code})\n${out}\n${err}")
endif()
# message() output lands on stderr; merge before checking.
set(all "${out}\n${err}")
if(NOT all MATCHES "back-propagation wave milestones:" OR
   NOT all MATCHES "capture")
  message(FATAL_ERROR "trace_query output missing the wave summary\n${all}")
endif()

message(STATUS "trace tools OK on ${TRACE_BIN}")
