// Umbrella header: the public API of the honeypot back-propagation
// library.  Downstream users can include just this; the individual module
// headers remain available for finer-grained dependencies.
//
//   #include "hbp.hpp"
//
//   hbp::scenario::TreeExperimentConfig config;
//   config.scheme = hbp::scenario::Scheme::kHbp;
//   const auto result = hbp::scenario::run_tree_experiment(config, seed);
#pragma once

// Substrates.
#include "net/control_plane.hpp"    // IWYU pragma: export
#include "net/host.hpp"             // IWYU pragma: export
#include "net/network.hpp"          // IWYU pragma: export
#include "net/router.hpp"           // IWYU pragma: export
#include "net/switch_node.hpp"      // IWYU pragma: export
#include "sim/simulator.hpp"        // IWYU pragma: export
#include "topo/string_topo.hpp"     // IWYU pragma: export
#include "topo/tree.hpp"            // IWYU pragma: export
#include "traffic/cbr.hpp"          // IWYU pragma: export
#include "traffic/follower.hpp"     // IWYU pragma: export
#include "traffic/onoff.hpp"        // IWYU pragma: export
#include "traffic/probe.hpp"        // IWYU pragma: export
#include "traffic/spoof.hpp"        // IWYU pragma: export
#include "transport/tcp.hpp"        // IWYU pragma: export

// Roaming honeypots.
#include "honeypot/client.hpp"      // IWYU pragma: export
#include "honeypot/schedule.hpp"    // IWYU pragma: export
#include "honeypot/server_pool.hpp" // IWYU pragma: export
#include "honeypot/tcp_client.hpp"  // IWYU pragma: export

// Defenses and baselines.
#include "core/defense.hpp"         // IWYU pragma: export
#include "marking/ppm.hpp"          // IWYU pragma: export
#include "marking/stackpi.hpp"      // IWYU pragma: export
#include "pushback/agent.hpp"       // IWYU pragma: export

// Analysis and experiments.
#include "analysis/capture_time.hpp"       // IWYU pragma: export
#include "scenario/string_experiment.hpp"  // IWYU pragma: export
#include "scenario/tree_experiment.hpp"    // IWYU pragma: export
