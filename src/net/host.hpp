// End host: owns one address, attaches one application, and sends through
// its single access port.
#pragma once

#include "net/node.hpp"
#include "sim/packet.hpp"
#include "util/function_ref.hpp"

namespace hbp::net {

class Host final : public Node {
 public:
  // Non-owning: the receiver callable must outlive the registration.
  using ReceiveFn = util::function_ref<void(const sim::Packet&)>;

  explicit Host(std::string name) : Node(std::move(name), NodeKind::kHost) {}

  sim::Address address() const { return address_; }
  void set_address(sim::Address a) { address_ = a; }

  void set_receiver(ReceiveFn fn) { receiver_ = fn; }

  void receive(sim::Packet&& p, int in_port) override;

  // Fills in origin ground truth and uid, then transmits via port 0.
  void send(sim::Packet&& p);

  std::uint64_t packets_received() const { return received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  sim::Address address_ = 0;
  ReceiveFn receiver_;
  std::uint64_t received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace hbp::net
