#include "net/invariant_checker.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "net/link.hpp"
#include "net/network.hpp"
#include "util/assert.hpp"

namespace hbp::net {

namespace {

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

InvariantChecker::InvariantChecker(Network& network, Options options)
    : network_(network), options_(options) {}

void InvariantChecker::check_into(std::vector<std::string>& out,
                                  bool require_quiescent) {
  ++checks_;
  const sim::Simulator& simulator = network_.simulator();

  // C5: monotone clock, no pending event in the past.
  const sim::SimTime now = simulator.now();
  if (now < last_now_) {
    out.push_back(format("clock moved backwards: %" PRId64 " ns after %" PRId64
                         " ns",
                         now.nanos(), last_now_.nanos()));
  }
  last_now_ = now;
  if (const auto next = simulator.next_event_time();
      next.has_value() && *next < now) {
    out.push_back(format("pending event at %" PRId64 " ns lies before now=%" PRId64
                         " ns",
                         next->nanos(), now.nanos()));
  }

  // Per-link sweep feeding C1-C4.  Violation messages carry the sim-time
  // and the node's name so a failure in a 10k-node run is attributable
  // without a debugger.
  std::uint64_t accepted = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t link_delivered = 0;
  for (sim::NodeId id = 0; id < static_cast<sim::NodeId>(network_.node_count());
       ++id) {
    const char* name = network_.node(id).name().c_str();
    for (std::size_t port = 0; port < network_.link_count(id); ++port) {
      const Link& link = network_.link(id, static_cast<int>(port));
      const PacketQueue& queue = link.queue();
      accepted += queue.accepted();
      queue_drops += queue.drops();
      link_delivered += link.packets_delivered();

      if (queue.accepted() < link.packets_delivered()) {
        out.push_back(format("[t=%.9fs] link %s(#%d):%zu delivered %" PRIu64
                             " packets but only accepted %" PRIu64,
                             now.to_seconds(), name, id, port,
                             link.packets_delivered(), queue.accepted()));
      }
      const std::int64_t bytes = queue.byte_length();
      if (bytes < 0) {
        out.push_back(format("[t=%.9fs] link %s(#%d):%zu queue holds negative "
                             "bytes (%" PRId64 ")",
                             now.to_seconds(), name, id, port, bytes));
      }
      if (queue.packet_length() == 0 && bytes != 0) {
        out.push_back(format("[t=%.9fs] link %s(#%d):%zu queue is empty but "
                             "byte ledger says %" PRId64,
                             now.to_seconds(), name, id, port, bytes));
      }
      if (options_.strict) {
        const std::int64_t recount = queue.recount_bytes();
        if (recount != bytes) {
          out.push_back(format("[t=%.9fs] link %s(#%d):%zu byte ledger %" PRId64
                               " != recounted %" PRId64,
                               now.to_seconds(), name, id, port, bytes,
                               recount));
        }
      }
    }
  }

  const Network::Counters& c = network_.counters();
  if (c.transmitted != accepted + queue_drops) {
    out.push_back(format("[t=%.9fs] transmitted %" PRIu64 " != accepted %"
                         PRIu64 " + queue drops %" PRIu64,
                         now.to_seconds(), c.transmitted, accepted,
                         queue_drops));
  }
  if (c.delivered != link_delivered) {
    out.push_back(format("[t=%.9fs] network delivered %" PRIu64
                         " != per-link sum %" PRIu64,
                         now.to_seconds(), c.delivered, link_delivered));
  }
  const std::uint64_t in_flight =
      accepted >= link_delivered ? accepted - link_delivered : 0;
  if (c.transmitted != c.delivered + queue_drops + in_flight) {
    out.push_back(format("[t=%.9fs] conservation: transmitted %" PRIu64
                         " != delivered %" PRIu64 " + queue drops %" PRIu64
                         " + in-flight %" PRIu64,
                         now.to_seconds(), c.transmitted, c.delivered,
                         queue_drops, in_flight));
  }
  if (require_quiescent && in_flight != 0) {
    out.push_back(format("[t=%.9fs] %" PRIu64
                         " packets still in flight in a quiescent network",
                         now.to_seconds(), in_flight));
  }
}

std::vector<std::string> InvariantChecker::check() {
  std::vector<std::string> out;
  check_into(out, /*require_quiescent=*/false);
  return out;
}

std::vector<std::string> InvariantChecker::check_quiescent() {
  std::vector<std::string> out;
  check_into(out, /*require_quiescent=*/true);
  return out;
}

void InvariantChecker::expect_ok() {
  const std::vector<std::string> violations = check();
  for (const std::string& v : violations) {
    std::fprintf(stderr, "invariant violation: %s\n", v.c_str());
  }
  if (!violations.empty()) {
    // When a trace::Tracer is attached its flight recorder holds the last-N
    // trace events — the moments leading up to the violation.  Dump them
    // before aborting; without a tracer this degrades to a hint.
    std::string tail;
    if (network_.simulator().dump_flight(tail)) {
      std::fprintf(stderr, "%s", tail.c_str());
    } else {
      std::fprintf(stderr,
                   "(no flight recorder attached; run with tracing enabled "
                   "to capture the events leading up to the violation)\n");
    }
  }
  HBP_ASSERT_MSG(violations.empty(), "network invariant audit failed");
}

void InvariantChecker::watch(sim::SimTime interval) {
  sim::Simulator& simulator = network_.simulator();
  simulator.after(
      interval,
      [this, interval] {
        expect_ok();
        if (network_.simulator().events_pending() > 0) watch(interval);
      },
      "net.audit.watch");
}

}  // namespace hbp::net
