#include "net/host.hpp"

#include "net/network.hpp"
#include "util/assert.hpp"

namespace hbp::net {

void Host::receive(sim::Packet&& p, int in_port) {
  (void)in_port;
  if (p.dst != address_) return;  // mis-delivered; hosts are not routers
  ++received_;
  bytes_received_ += p.size_bytes;
  if (receiver_) receiver_(p);
}

void Host::send(sim::Packet&& p) {
  HBP_ASSERT_MSG(port_count() == 1, "hosts have exactly one access port");
  p.uid = network().next_packet_uid();
  p.origin_node = id();
  p.sent_at = network().simulator().now();
  network().transmit(id(), 0, std::move(p));
}

}  // namespace hbp::net
