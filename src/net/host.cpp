#include "net/host.hpp"

#include "net/network.hpp"
#include "util/assert.hpp"

namespace hbp::net {

void Host::receive(sim::Packet&& p, int in_port) {
  if (p.dst != address_) return;  // mis-delivered; hosts are not routers
  ++received_;
  bytes_received_ += p.size_bytes;
  sim::Simulator& simulator = network().simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kReceive, id(),
                           p.uid, 0, in_port,
                           static_cast<std::int32_t>(p.type)});
  }
  if (receiver_) receiver_(p);
}

void Host::send(sim::Packet&& p) {
  HBP_ASSERT_MSG(port_count() == 1, "hosts have exactly one access port");
  p.uid = network().next_packet_uid();
  p.origin_node = id();
  sim::Simulator& simulator = network().simulator();
  p.sent_at = simulator.now();
  if (simulator.tracing()) {
    simulator.trace_event({p.sent_at, sim::TraceVerb::kSend, id(), p.uid, 0,
                           static_cast<std::int32_t>(p.dst),
                           static_cast<std::int32_t>(p.type)});
  }
  network().transmit(id(), 0, std::move(p));
}

}  // namespace hbp::net
