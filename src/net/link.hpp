// A unidirectional link: output queue + serialization at `capacity_bps` +
// fixed propagation delay.  Network::connect() creates one per direction.
#pragma once

#include <cstdint>
#include <memory>

#include "net/queue.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hbp::net {

struct LinkParams {
  double capacity_bps = 10e6;
  sim::SimTime delay = sim::SimTime::millis(1);
  std::int64_t queue_bytes = 64'000;
  // Optional custom queue; when unset a DropTailQueue(queue_bytes) is used.
  QueueFactory queue_factory;
};

class Network;

class Link {
 public:
  Link(sim::Simulator& simulator, Network& network, sim::NodeId from_node,
       sim::NodeId to_node, int to_port, const LinkParams& params);

  // Hands a packet to the link; it is queued and serialized in order.
  void send(sim::Packet&& p);

  double capacity_bps() const { return capacity_bps_; }
  sim::SimTime delay() const { return delay_; }
  PacketQueue& queue() { return *queue_; }
  const PacketQueue& queue() const { return *queue_; }

  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  void start_transmission();

  sim::Simulator& simulator_;
  Network& network_;
  sim::NodeId from_node_;
  sim::NodeId to_node_;
  int to_port_;
  double capacity_bps_;
  sim::SimTime delay_;
  std::unique_ptr<PacketQueue> queue_;
  bool transmitting_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace hbp::net
