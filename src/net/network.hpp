// The Network owns every node and link, assigns addresses, computes static
// shortest-path routes, and moves packets between links and nodes.
//
// Routing is recomputed once after topology construction (the paper's
// scenarios are static trees); routers then answer next-hop lookups in O(1).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace hbp::telemetry {
class Registry;
}

namespace hbp::net {

class Network {
 public:
  explicit Network(sim::Simulator& simulator) : simulator_(simulator) {}

  sim::Simulator& simulator() { return simulator_; }

  // --- topology construction ---

  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *node;
    node->id_ = static_cast<sim::NodeId>(nodes_.size());
    node->network_ = this;
    nodes_.push_back(std::move(node));
    links_.emplace_back();
    return ref;
  }

  // Creates a bidirectional connection; returns the (port on a, port on b).
  std::pair<int, int> connect(sim::NodeId a, sim::NodeId b,
                              const LinkParams& a_to_b, const LinkParams& b_to_a);
  std::pair<int, int> connect(sim::NodeId a, sim::NodeId b,
                              const LinkParams& both) {
    return connect(a, b, both, both);
  }

  // Assigns the next free address to `node` (hosts only).
  sim::Address assign_address(sim::NodeId node);

  // Computes next-hop routing tables for all currently assigned addresses.
  // Must be called after the topology is final and before traffic starts.
  void compute_routes();

  // --- lookups ---

  std::size_t node_count() const { return nodes_.size(); }
  Node& node(sim::NodeId id) { return *nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(sim::NodeId id) const {
    return *nodes_[static_cast<std::size_t>(id)];
  }

  sim::NodeId node_of(sim::Address a) const;
  std::size_t address_count() const { return addr_to_node_.size(); }

  // Out-port of `from` toward address `dst`, or -1 if unreachable.
  int route_port(sim::NodeId from, sim::Address dst) const;

  // Hop distance between a node and an address (router hops + host links).
  int hop_distance(sim::NodeId from, sim::Address dst) const;

  Link& link(sim::NodeId from, int port) {
    return *links_[static_cast<std::size_t>(from)][static_cast<std::size_t>(port)];
  }
  const Link& link(sim::NodeId from, int port) const {
    return *links_[static_cast<std::size_t>(from)][static_cast<std::size_t>(port)];
  }
  std::size_t link_count(sim::NodeId from) const {
    return links_[static_cast<std::size_t>(from)].size();
  }

  // --- data plane ---

  // Called by nodes to emit a packet on one of their ports.
  void transmit(sim::NodeId from, int port, sim::Packet&& p);

  // Called by links when a packet finishes propagation.
  void deliver(sim::NodeId to, sim::Packet&& p, int in_port);

  // Drop accounting entry points: count the drop and fold it into the run's
  // trace digest.  Routers call these instead of touching counters directly
  // so every terminal packet fate is fingerprinted.
  void drop_ttl(const sim::Packet& p, sim::NodeId at);
  void drop_filter(const sim::Packet& p, sim::NodeId at);

  std::uint64_t next_packet_uid() { return ++uid_counter_; }

  // --- global accounting ---

  struct Counters {
    std::uint64_t transmitted = 0;     // packets handed to links
    std::uint64_t delivered = 0;       // link->node deliveries
    std::uint64_t dropped_ttl = 0;
    std::uint64_t dropped_filter = 0;  // dropped by router filters/blocks
    std::uint64_t dropped_queue = 0;   // computed lazily from queues
  };
  Counters& counters() { return counters_; }
  // Sums queue drops over all links into counters().dropped_queue.
  std::uint64_t total_queue_drops() const;

  // End-of-run snapshot into the registry: global packet counters,
  // aggregate queue histograms, and per-queue drop/occupancy series for
  // every queue that dropped at least one packet ("net.queue.<node>:<port>"
  // — lossless queues are summarised only in the aggregates to bound the
  // export size).  Purely passive; never called on the hot path.
  void export_telemetry(telemetry::Registry& registry) const;

 private:
  sim::Simulator& simulator_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::vector<std::unique_ptr<Link>>> links_;  // [node][port]
  std::vector<sim::NodeId> addr_to_node_;  // index == address - 1
  // routes_[node][address - 1] = out port toward that address (-1 none).
  std::vector<std::vector<std::int32_t>> routes_;
  // hops_[node][address - 1] = hop distance (-1 unreachable).
  std::vector<std::vector<std::int32_t>> hops_;
  bool routes_valid_ = false;
  std::uint64_t uid_counter_ = 0;
  Counters counters_;
};

}  // namespace hbp::net
