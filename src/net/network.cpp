#include "net/network.hpp"

#include <deque>
#include <string>

#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace hbp::net {

std::pair<int, int> Network::connect(sim::NodeId a, sim::NodeId b,
                                     const LinkParams& a_to_b,
                                     const LinkParams& b_to_a) {
  HBP_ASSERT(a != b);
  Node& na = node(a);
  Node& nb = node(b);
  const int port_a = static_cast<int>(na.neighbors_.size());
  const int port_b = static_cast<int>(nb.neighbors_.size());
  na.neighbors_.push_back(b);
  nb.neighbors_.push_back(a);
  links_[static_cast<std::size_t>(a)].push_back(
      std::make_unique<Link>(simulator_, *this, a, b, port_b, a_to_b));
  links_[static_cast<std::size_t>(b)].push_back(
      std::make_unique<Link>(simulator_, *this, b, a, port_a, b_to_a));
  routes_valid_ = false;
  return {port_a, port_b};
}

sim::Address Network::assign_address(sim::NodeId node_id) {
  addr_to_node_.push_back(node_id);
  routes_valid_ = false;
  return static_cast<sim::Address>(addr_to_node_.size());  // addresses start at 1
}

sim::NodeId Network::node_of(sim::Address a) const {
  HBP_ASSERT(a >= 1 && a <= addr_to_node_.size());
  return addr_to_node_[a - 1];
}

void Network::compute_routes() {
  const std::size_t n = nodes_.size();
  const std::size_t m = addr_to_node_.size();
  routes_.assign(n, std::vector<std::int32_t>(m, -1));
  hops_.assign(n, std::vector<std::int32_t>(m, -1));

  // One BFS per destination address, rooted at the destination host.  The
  // next hop from v toward the root is v's BFS parent; the out-port is the
  // port of that parent neighbor (first match for determinism).
  std::vector<std::int32_t> dist(n);
  std::deque<sim::NodeId> frontier;
  for (std::size_t ai = 0; ai < m; ++ai) {
    const sim::NodeId root = addr_to_node_[ai];
    dist.assign(n, -1);
    dist[static_cast<std::size_t>(root)] = 0;
    hops_[static_cast<std::size_t>(root)][ai] = 0;
    frontier.clear();
    frontier.push_back(root);
    while (!frontier.empty()) {
      const sim::NodeId u = frontier.front();
      frontier.pop_front();
      const Node& nu = node(u);
      for (std::size_t port = 0; port < nu.neighbors_.size(); ++port) {
        const sim::NodeId v = nu.neighbors_[port];
        if (dist[static_cast<std::size_t>(v)] != -1) continue;
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        hops_[static_cast<std::size_t>(v)][ai] = dist[static_cast<std::size_t>(v)];
        // Next hop from v toward root is u; find v's port to u.
        const Node& nv = node(v);
        for (std::size_t vport = 0; vport < nv.neighbors_.size(); ++vport) {
          if (nv.neighbors_[vport] == u) {
            routes_[static_cast<std::size_t>(v)][ai] =
                static_cast<std::int32_t>(vport);
            break;
          }
        }
        frontier.push_back(v);
      }
    }
  }
  routes_valid_ = true;
}

int Network::route_port(sim::NodeId from, sim::Address dst) const {
  HBP_ASSERT_MSG(routes_valid_, "compute_routes() must run before forwarding");
  HBP_ASSERT(dst >= 1 && dst <= addr_to_node_.size());
  return routes_[static_cast<std::size_t>(from)][dst - 1];
}

int Network::hop_distance(sim::NodeId from, sim::Address dst) const {
  HBP_ASSERT_MSG(routes_valid_, "compute_routes() must run first");
  HBP_ASSERT(dst >= 1 && dst <= addr_to_node_.size());
  return hops_[static_cast<std::size_t>(from)][dst - 1];
}

void Network::transmit(sim::NodeId from, int port, sim::Packet&& p) {
  HBP_ASSERT(port >= 0 &&
             static_cast<std::size_t>(port) < links_[static_cast<std::size_t>(from)].size());
  ++counters_.transmitted;
  simulator_.trace().fold(simulator_.now(), sim::TraceKind::kTransmit, from,
                          p.uid);
  links_[static_cast<std::size_t>(from)][static_cast<std::size_t>(port)]->send(
      std::move(p));
}

void Network::deliver(sim::NodeId to, sim::Packet&& p, int in_port) {
  ++counters_.delivered;
  simulator_.trace().fold(simulator_.now(), sim::TraceKind::kDeliver, to, p.uid);
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kDeliver, to,
                            p.uid, 0, in_port, -1});
  }
  node(to).receive(std::move(p), in_port);
}

void Network::drop_ttl(const sim::Packet& p, sim::NodeId at) {
  ++counters_.dropped_ttl;
  simulator_.trace().fold(simulator_.now(), sim::TraceKind::kTtlDrop, at, p.uid);
  if (simulator_.tracing()) {
    simulator_.trace_event(
        {simulator_.now(), sim::TraceVerb::kTtlDrop, at, p.uid, 0, -1, -1});
  }
}

void Network::drop_filter(const sim::Packet& p, sim::NodeId at) {
  ++counters_.dropped_filter;
  simulator_.trace().fold(simulator_.now(), sim::TraceKind::kFilterDrop, at,
                          p.uid);
  if (simulator_.tracing()) {
    simulator_.trace_event(
        {simulator_.now(), sim::TraceVerb::kFilterDrop, at, p.uid, 0, -1, -1});
  }
}

std::uint64_t Network::total_queue_drops() const {
  std::uint64_t total = 0;
  for (const auto& node_links : links_) {
    for (const auto& link : node_links) {
      total += link->queue().drops();
    }
  }
  return total;
}

void Network::export_telemetry(telemetry::Registry& registry) const {
  registry.counter("net.packets.transmitted").add(counters_.transmitted);
  registry.counter("net.packets.delivered").add(counters_.delivered);
  registry.counter("net.packets.dropped_ttl").add(counters_.dropped_ttl);
  registry.counter("net.packets.dropped_filter").add(counters_.dropped_filter);
  registry.counter("net.queue.drops").add(total_queue_drops());

  auto& peak_hist = registry.histogram("net.queue.peak_bytes");
  auto& drop_hist = registry.histogram("net.queue.drops_per_queue");
  for (std::size_t n = 0; n < links_.size(); ++n) {
    for (std::size_t port = 0; port < links_[n].size(); ++port) {
      const PacketQueue& q = links_[n][port]->queue();
      peak_hist.record(static_cast<std::uint64_t>(q.peak_bytes()));
      if (q.drops() == 0) continue;
      drop_hist.record(q.drops());
      const std::string prefix = "net.queue." + nodes_[n]->name() + ":" +
                                 std::to_string(port);
      registry.counter(prefix + ".drops").add(q.drops());
      registry.counter(prefix + ".accepted").add(q.accepted());
      registry.gauge(prefix + ".peak_bytes")
          .set(static_cast<double>(q.peak_bytes()));
    }
  }
}

}  // namespace hbp::net
