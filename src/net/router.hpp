// IP-like router with extension points used by the defense schemes:
//
//  - PacketFilter chain: consulted before forwarding.  Pushback rate
//    limiters, HBP divert rules, and blacklists are filters.
//  - ForwardTap observers: see every forwarded packet with its input and
//    output port.  Input debugging (mapping a packet at the output queue to
//    its input port, Section 2/5.2) is a tap.
//
// Filters and taps are non-owning observers whose lifetime is managed by
// the defense agents that install them; agents must out-live the run.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.hpp"
#include "sim/packet.hpp"

namespace hbp::net {

enum class FilterAction : std::uint8_t {
  kPass,    // continue down the chain / forward normally
  kDrop,    // discard the packet (counted as a filter drop)
  kConsume, // the filter took ownership (e.g. diverted to an HSM)
};

class PacketFilter {
 public:
  virtual ~PacketFilter() = default;
  virtual FilterAction on_packet(const sim::Packet& p, int in_port) = 0;
};

// Mutators rewrite header fields in flight (e.g. probabilistic packet
// marking stamps edge fragments into the ID field).  They run before the
// filter chain.
class PacketMutator {
 public:
  virtual ~PacketMutator() = default;
  virtual void mutate(sim::Packet& p, int in_port) = 0;
};

class ForwardTap {
 public:
  virtual ~ForwardTap() = default;
  virtual void on_forward(const sim::Packet& p, int in_port, int out_port) = 0;
};

class Router final : public Node {
 public:
  explicit Router(std::string name) : Node(std::move(name), NodeKind::kRouter) {}

  void receive(sim::Packet&& p, int in_port) override;

  void add_filter(PacketFilter* filter) { filters_.push_back(filter); }
  void remove_filter(PacketFilter* filter);
  void add_tap(ForwardTap* tap) { taps_.push_back(tap); }
  void remove_tap(ForwardTap* tap);
  void add_mutator(PacketMutator* mutator) { mutators_.push_back(mutator); }
  void remove_mutator(PacketMutator* mutator);

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  std::vector<PacketFilter*> filters_;
  std::vector<ForwardTap*> taps_;
  std::vector<PacketMutator*> mutators_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace hbp::net
