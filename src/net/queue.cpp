#include "net/queue.hpp"

#include "util/assert.hpp"

namespace hbp::net {

DropTailQueue::DropTailQueue(std::int64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  HBP_ASSERT(capacity_bytes > 0);
}

bool DropTailQueue::enqueue(sim::Packet&& p) {
  if (bytes_ + p.size_bytes > capacity_bytes_) {
    count_drop(p);
    return false;
  }
  bytes_ += p.size_bytes;
  count_accept();
  note_occupancy(bytes_);
  q_.push_back(std::move(p));
  return true;
}

std::optional<sim::Packet> DropTailQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  sim::Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  HBP_ASSERT(bytes_ >= 0);
  return p;
}

std::int64_t DropTailQueue::recount_bytes() const {
  std::int64_t total = 0;
  q_.for_each([&total](const sim::Packet& p) { total += p.size_bytes; });
  return total;
}

RedQueue::RedQueue(const Params& params)
    : params_(params), rng_state_(params.seed | 1) {
  HBP_ASSERT(params.min_th_bytes < params.max_th_bytes);
  HBP_ASSERT(params.max_th_bytes <= static_cast<double>(params.capacity_bytes));
  HBP_ASSERT(params.max_p > 0.0 && params.max_p <= 1.0);
}

double RedQueue::drop_probability() const {
  if (avg_ < params_.min_th_bytes) return 0.0;
  if (avg_ >= params_.max_th_bytes) return 1.0;
  const double base = params_.max_p * (avg_ - params_.min_th_bytes) /
                      (params_.max_th_bytes - params_.min_th_bytes);
  // Uniformised drop probability (gentle variant of the original paper).
  const double denom = 1.0 - static_cast<double>(count_since_drop_) * base;
  return denom <= 0.0 ? 1.0 : base / denom;
}

bool RedQueue::enqueue(sim::Packet&& p) {
  avg_ = (1.0 - params_.weight) * avg_ +
         params_.weight * static_cast<double>(bytes_);

  if (bytes_ + p.size_bytes > params_.capacity_bytes) {
    count_since_drop_ = 0;
    count_drop(p);
    return false;
  }

  const double prob = drop_probability();
  if (prob > 0.0) {
    // xorshift64* for a deterministic uniform draw.
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    const double u = static_cast<double>((rng_state_ * 0x2545F4914F6CDD1DULL) >> 11) *
                     0x1.0p-53;
    if (u < prob) {
      count_since_drop_ = 0;
      count_drop(p);
      return false;
    }
    ++count_since_drop_;
  } else {
    count_since_drop_ = 0;
  }

  bytes_ += p.size_bytes;
  count_accept();
  note_occupancy(bytes_);
  q_.push_back(std::move(p));
  return true;
}

std::optional<sim::Packet> RedQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  sim::Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  HBP_ASSERT(bytes_ >= 0);
  return p;
}

std::int64_t RedQueue::recount_bytes() const {
  std::int64_t total = 0;
  q_.for_each([&total](const sim::Packet& p) { total += p.size_bytes; });
  return total;
}

QueueFactory droptail_factory(std::int64_t capacity_bytes) {
  return [capacity_bytes] {
    return std::make_unique<DropTailQueue>(capacity_bytes);
  };
}

}  // namespace hbp::net
