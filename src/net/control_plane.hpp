// Control-plane message transport.
//
// Honeypot request/cancel, intermediate-AS reports, and pushback messages
// are small authenticated messages that can be piggybacked on BGP/hop-by-hop
// exchanges (Sections 5.1, 5.3).  They are modelled with an explicit per-hop
// latency τ (plus jitter) rather than competing with attack traffic in the
// data-plane queues — matching the paper's analysis where τ is "the average
// time required for the honeypot request message to propagate one AS hop
// upstream and set up a honeypot session".
//
// An optional loss probability exercises the progressive scheme's
// lost-report handling (Section 6, rule 1).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hbp::telemetry {
class Registry;
}

namespace hbp::net {

class ControlPlane {
 public:
  struct Params {
    sim::SimTime per_hop_latency = sim::SimTime::millis(50);
    double jitter_fraction = 0.1;  // uniform +/- fraction of the latency
    double loss_probability = 0.0;
    std::uint64_t seed = 0x5eed;
  };

  ControlPlane(sim::Simulator& simulator, const Params& params)
      : simulator_(simulator), params_(params), rng_(params.seed) {}

  // Schedules `deliver` after `hops` control-plane hops of latency; the
  // message may be lost (deliver never runs) with the configured
  // probability.  `kind` is an accounting label (e.g. "honeypot_request").
  // Owning closure: temporaries are fine, and large signed messages may
  // legitimately spill the event's inline buffer (this is not a packet path).
  void send(const std::string& kind, int hops, sim::Event deliver);

  // Latency draw for a given hop count (used by analysis-facing tests).
  sim::SimTime sample_latency(int hops);

  std::uint64_t messages_sent(const std::string& kind) const;
  std::uint64_t total_messages() const { return total_; }
  std::uint64_t messages_lost() const { return lost_; }
  const std::map<std::string, std::uint64_t>& per_kind() const { return sent_; }

  const Params& params() const { return params_; }

  // End-of-run snapshot: per-kind send counts ("net.control.sent.<kind>"),
  // totals, and losses.
  void export_telemetry(telemetry::Registry& registry) const;

 private:
  sim::Simulator& simulator_;
  Params params_;
  util::Rng rng_;
  std::map<std::string, std::uint64_t> sent_;
  std::uint64_t total_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace hbp::net
