// L2 access switch between end hosts and their access router.
//
// The physical arrival port of a frame cannot be spoofed, which is what the
// paper's intra-AS end game relies on: "access routers identify the MAC
// addresses of attack hosts and inform the network switches to close the
// ports connected to the identified MAC addresses" (Section 5.2).  Here MAC
// identity is the attached host on a port, and close_port() severs it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/node.hpp"
#include "sim/packet.hpp"

namespace hbp::net {

class Switch final : public Node {
 public:
  explicit Switch(std::string name) : Node(std::move(name), NodeKind::kSwitch) {}

  void receive(sim::Packet&& p, int in_port) override;

  // --- port management (the capture mechanism) ---

  void close_port(int port);
  bool is_closed(int port) const { return closed_.contains(port); }
  std::size_t closed_port_count() const { return closed_.size(); }

  // --- per-destination watch (router-driven input debugging at L2) ---

  // While a watch is active the switch counts, per arrival port, frames
  // destined to `dst`.  Used by the access router during a honeypot session.
  void start_watch(sim::Address dst);
  void stop_watch(sim::Address dst);
  bool watching(sim::Address dst) const { return watches_.contains(dst); }

  // Ports that sent at least one frame to `dst` since the watch started.
  std::vector<int> ports_sending_to(sim::Address dst) const;

  // The host node attached on `port` (kInvalidNode if the neighbor is not a
  // host, e.g. the uplink).
  sim::NodeId attached_host(int port) const;

  std::uint64_t frames_forwarded() const { return forwarded_; }
  std::uint64_t frames_blocked() const { return blocked_; }

 private:
  std::set<int> closed_;
  std::map<sim::Address, std::map<int, std::uint64_t>> watches_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace hbp::net
