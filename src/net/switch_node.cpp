#include "net/switch_node.hpp"

#include "net/network.hpp"
#include "util/assert.hpp"

namespace hbp::net {

void Switch::receive(sim::Packet&& p, int in_port) {
  if (closed_.contains(in_port)) {
    ++blocked_;
    network().drop_filter(p, id());
    return;
  }

  if (auto it = watches_.find(p.dst); it != watches_.end()) {
    ++it->second[in_port];
  }

  const int out_port = network().route_port(id(), p.dst);
  if (out_port < 0) {
    network().drop_filter(p, id());
    return;
  }
  ++forwarded_;
  network().transmit(id(), out_port, std::move(p));
}

void Switch::close_port(int port) {
  HBP_ASSERT(port >= 0 && static_cast<std::size_t>(port) < port_count());
  closed_.insert(port);
}

void Switch::start_watch(sim::Address dst) { watches_.try_emplace(dst); }

void Switch::stop_watch(sim::Address dst) { watches_.erase(dst); }

std::vector<int> Switch::ports_sending_to(sim::Address dst) const {
  std::vector<int> out;
  if (auto it = watches_.find(dst); it != watches_.end()) {
    out.reserve(it->second.size());
    for (const auto& [port, count] : it->second) {
      if (count > 0) out.push_back(port);
    }
  }
  return out;
}

sim::NodeId Switch::attached_host(int port) const {
  HBP_ASSERT(port >= 0 && static_cast<std::size_t>(port) < port_count());
  const sim::NodeId n = neighbor(static_cast<std::size_t>(port));
  if (network().node(n).kind() == NodeKind::kHost) return n;
  return sim::kInvalidNode;
}

}  // namespace hbp::net
