// Always-available audit of the simulation core's accounting invariants.
//
// The Network and its links already maintain cheap counters on every packet
// transition; this checker cross-validates them:
//
//   C1  every transmitted packet was either accepted by a queue or dropped
//       by it:  transmitted == Σ accepted + Σ queue drops
//   C2  the network-level delivery counter matches the per-link ones
//   C3  per link, accepted >= delivered (in-flight is non-negative), and
//       globally  transmitted == delivered + queue drops + in-flight
//   C4  per queue, the byte ledger is sane: byte_length >= 0 and an empty
//       queue holds zero bytes; strict mode recounts the stored packets and
//       demands an exact match
//   C5  the clock never moves backwards between checks, and no pending
//       event is scheduled before now (the Simulator additionally enforces
//       this with HBP_ASSERT at scheduling time)
//
// check() walks counters only (O(links)); it allocates nothing when the
// network is healthy.  check_quiescent() additionally demands that nothing
// is left in flight — valid once traffic has drained (after run_all()).
//
// Violations are returned as strings instead of aborting so tests can
// assert that intentionally broken fixtures are detected; expect_ok() is
// the aborting flavour scenarios use as a correctness ratchet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hbp::net {

class Network;

class InvariantChecker {
 public:
  struct Options {
    // Strict mode re-walks every queue's contents to verify the byte
    // ledger; O(packets queued) instead of O(links).
    bool strict = false;
  };

  explicit InvariantChecker(Network& network)
      : InvariantChecker(network, Options()) {}
  InvariantChecker(Network& network, Options options);

  // Runs all checks; returns human-readable violations (empty == healthy).
  std::vector<std::string> check();

  // check() plus "no packets remain in flight anywhere".
  std::vector<std::string> check_quiescent();

  // Aborts via HBP_ASSERT on the first violation.
  void expect_ok();

  // Re-runs expect_ok() every `interval` for as long as other events remain
  // pending, then stops (so it never keeps an otherwise-drained simulation
  // alive).
  void watch(sim::SimTime interval);

  std::uint64_t checks_run() const { return checks_; }

 private:
  void check_into(std::vector<std::string>& out, bool require_quiescent);

  Network& network_;
  Options options_;
  sim::SimTime last_now_ = sim::SimTime::zero();
  std::uint64_t checks_ = 0;
};

}  // namespace hbp::net
