// Base class for all network elements (routers, hosts, switches).
//
// Port numbering is symmetric: when Network::connect(a, b) assigns port i on
// a and port j on b, packets from b arrive at a with in_port == i, and a
// sends to b through out port i.  "The upstream neighbor connected to input
// port x" — the phrase input debugging relies on — is therefore simply the
// neighbor on port x.
#pragma once

#include <string>
#include <vector>

#include "sim/packet.hpp"

namespace hbp::net {

class Network;

enum class NodeKind : std::uint8_t {
  kRouter,
  kHost,
  kSwitch,
};

// Autonomous-system identifier; kNoAs for nodes outside any AS (none in our
// scenarios, but builders start from this state).
using AsId = std::int32_t;
inline constexpr AsId kNoAs = -1;

class Node {
 public:
  Node(std::string name, NodeKind kind) : name_(std::move(name)), kind_(kind) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  sim::NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  NodeKind kind() const { return kind_; }

  AsId as_id() const { return as_id_; }
  void set_as_id(AsId as) { as_id_ = as; }

  std::size_t port_count() const { return neighbors_.size(); }
  sim::NodeId neighbor(std::size_t port) const { return neighbors_[port]; }
  const std::vector<sim::NodeId>& neighbors() const { return neighbors_; }

  Network& network() const { return *network_; }

  // Delivery of a packet that finished traversing the link on `in_port`.
  virtual void receive(sim::Packet&& p, int in_port) = 0;

 private:
  friend class Network;

  std::string name_;
  NodeKind kind_;
  sim::NodeId id_ = sim::kInvalidNode;
  AsId as_id_ = kNoAs;
  Network* network_ = nullptr;
  std::vector<sim::NodeId> neighbors_;  // indexed by port
};

}  // namespace hbp::net
