#include "net/link.hpp"

#include "net/network.hpp"
#include "util/assert.hpp"

namespace hbp::net {

Link::Link(sim::Simulator& simulator, Network& network, sim::NodeId from_node,
           sim::NodeId to_node, int to_port, const LinkParams& params)
    : simulator_(simulator),
      network_(network),
      from_node_(from_node),
      to_node_(to_node),
      to_port_(to_port),
      capacity_bps_(params.capacity_bps),
      delay_(params.delay) {
  HBP_ASSERT(params.capacity_bps > 0);
  if (params.queue_factory) {
    queue_ = params.queue_factory();
  } else {
    queue_ = std::make_unique<DropTailQueue>(params.queue_bytes);
  }
}

void Link::send(sim::Packet&& p) {
  const std::uint64_t uid = p.uid;
  if (!queue_->enqueue(std::move(p))) {
    // Dropped; counted by the queue, fingerprinted here.
    simulator_.trace().fold(simulator_.now(), sim::TraceKind::kQueueDrop,
                            to_node_, uid);
    if (simulator_.tracing()) {
      simulator_.trace_event({simulator_.now(), sim::TraceVerb::kQueueDrop,
                              from_node_, uid, 0, to_node_, to_port_});
    }
    return;
  }
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kEnqueue,
                            from_node_, uid, 0, to_node_, to_port_});
  }
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  auto next = queue_->dequeue();
  if (!next) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kDequeue,
                            from_node_, next->uid, 0, to_node_, to_port_});
  }
  const sim::SimTime tx = sim::transmission_time(next->size_bytes, capacity_bps_);
  // Delivery after serialization + propagation; the transmitter frees up
  // after serialization only.
  sim::Packet delivered_packet = std::move(*next);
  auto deliver = [this, p = std::move(delivered_packet)]() mutable {
    ++delivered_;
    bytes_delivered_ += p.size_bytes;
    network_.deliver(to_node_, std::move(p), to_port_);
  };
  // The packet-path closure must stay in the event's inline buffer: a heap
  // fallback here would put an allocation on every forwarded packet.
  static_assert(sim::Event::fits_inline<decltype(deliver)>());
  simulator_.after(tx + delay_, std::move(deliver), "net.link.deliver");
  simulator_.after(tx, [this] { start_transmission(); }, "net.link.tx");
}

}  // namespace hbp::net
