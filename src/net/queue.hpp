// Output-queue disciplines for links: drop-tail and RED.
//
// Pushback's ACC detects congestion from the drop history of the output
// queue, so queues expose drop counters and an optional drop observer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "sim/packet.hpp"
#include "util/function_ref.hpp"
#include "util/ring_buffer.hpp"

namespace hbp::net {

// Called with every packet the queue drops (overflow or RED early drop).
// Non-owning: the observer callable must outlive the queue registration
// (name the lambda, or bind a member function of a long-lived component).
using DropObserver = util::function_ref<void(const sim::Packet&)>;

class PacketQueue {
 public:
  virtual ~PacketQueue() = default;

  // Returns false (and counts a drop) if the packet was not accepted.
  virtual bool enqueue(sim::Packet&& p) = 0;
  virtual std::optional<sim::Packet> dequeue() = 0;

  virtual std::int64_t byte_length() const = 0;
  virtual std::size_t packet_length() const = 0;

  // Recomputes the queued byte total by walking the stored packets (strict
  // invariant audits cross-check it against byte_length()).  Disciplines
  // that cannot enumerate their contents fall back to byte_length().
  virtual std::int64_t recount_bytes() const { return byte_length(); }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t accepted() const { return accepted_; }
  // High-water mark of the queued byte total (telemetry exports).
  std::int64_t peak_bytes() const { return peak_bytes_; }

  void set_drop_observer(DropObserver obs) { drop_observer_ = obs; }

 protected:
  void count_drop(const sim::Packet& p) {
    ++drops_;
    if (drop_observer_) drop_observer_(p);
  }
  void count_accept() { ++accepted_; }
  void note_occupancy(std::int64_t bytes) {
    if (bytes > peak_bytes_) peak_bytes_ = bytes;
  }

 private:
  std::uint64_t drops_ = 0;
  std::uint64_t accepted_ = 0;
  std::int64_t peak_bytes_ = 0;
  DropObserver drop_observer_;
};

// FIFO queue with a byte-capacity bound.
class DropTailQueue final : public PacketQueue {
 public:
  explicit DropTailQueue(std::int64_t capacity_bytes);

  bool enqueue(sim::Packet&& p) override;
  std::optional<sim::Packet> dequeue() override;
  std::int64_t byte_length() const override { return bytes_; }
  std::size_t packet_length() const override { return q_.size(); }
  std::int64_t recount_bytes() const override;

 private:
  std::int64_t capacity_bytes_;
  std::int64_t bytes_ = 0;
  util::RingBuffer<sim::Packet> q_;
};

// Random Early Detection (Floyd & Jacobson 1993), byte mode, with an
// exponentially-weighted average queue size.  Drop probability ramps from 0
// at min_th to max_p at max_th; above max_th everything is dropped.
class RedQueue final : public PacketQueue {
 public:
  struct Params {
    std::int64_t capacity_bytes = 64'000;
    double min_th_bytes = 16'000;
    double max_th_bytes = 48'000;
    double max_p = 0.1;
    double weight = 0.002;      // EWMA weight
    std::uint64_t seed = 1;     // deterministic drop decisions
  };

  explicit RedQueue(const Params& params);

  bool enqueue(sim::Packet&& p) override;
  std::optional<sim::Packet> dequeue() override;
  std::int64_t byte_length() const override { return bytes_; }
  std::size_t packet_length() const override { return q_.size(); }
  std::int64_t recount_bytes() const override;

  double average_bytes() const { return avg_; }

 private:
  double drop_probability() const;

  Params params_;
  std::int64_t bytes_ = 0;
  double avg_ = 0.0;
  std::uint64_t count_since_drop_ = 0;
  std::uint64_t rng_state_;
  util::RingBuffer<sim::Packet> q_;
};

using QueueFactory = std::function<std::unique_ptr<PacketQueue>()>;

// Default factory: drop-tail with the given byte capacity.
QueueFactory droptail_factory(std::int64_t capacity_bytes);

}  // namespace hbp::net
