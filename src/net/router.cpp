#include "net/router.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "util/assert.hpp"

namespace hbp::net {

void Router::remove_filter(PacketFilter* filter) {
  filters_.erase(std::remove(filters_.begin(), filters_.end(), filter),
                 filters_.end());
}

void Router::remove_tap(ForwardTap* tap) {
  taps_.erase(std::remove(taps_.begin(), taps_.end(), tap), taps_.end());
}

void Router::remove_mutator(PacketMutator* mutator) {
  mutators_.erase(std::remove(mutators_.begin(), mutators_.end(), mutator),
                  mutators_.end());
}

void Router::receive(sim::Packet&& p, int in_port) {
  if (p.ttl == 0) {
    network().drop_ttl(p, id());
    return;
  }
  p.ttl -= 1;

  for (PacketMutator* m : mutators_) m->mutate(p, in_port);

  for (PacketFilter* f : filters_) {
    switch (f->on_packet(p, in_port)) {
      case FilterAction::kPass:
        break;
      case FilterAction::kDrop:
        network().drop_filter(p, id());
        return;
      case FilterAction::kConsume:
        return;
    }
  }

  const int out_port = network().route_port(id(), p.dst);
  if (out_port < 0) {
    network().drop_filter(p, id());  // unroutable
    return;
  }

  for (ForwardTap* tap : taps_) tap->on_forward(p, in_port, out_port);

  ++forwarded_;
  sim::Simulator& simulator = network().simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kForward, id(),
                           p.uid, 0, in_port, out_port});
  }
  network().transmit(id(), out_port, std::move(p));
}

}  // namespace hbp::net
