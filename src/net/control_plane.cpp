#include "net/control_plane.hpp"

#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace hbp::net {

sim::SimTime ControlPlane::sample_latency(int hops) {
  HBP_ASSERT(hops >= 0);
  const double base = params_.per_hop_latency.to_seconds() * hops;
  const double jitter = params_.jitter_fraction > 0.0
                            ? rng_.uniform(-params_.jitter_fraction,
                                           params_.jitter_fraction) * base
                            : 0.0;
  return sim::SimTime::seconds(base + jitter);
}

void ControlPlane::send(const std::string& kind, int hops,
                        sim::Event deliver) {
  ++sent_[kind];
  ++total_;
  if (params_.loss_probability > 0.0 && rng_.bernoulli(params_.loss_probability)) {
    ++lost_;
    return;
  }
  simulator_.after(sample_latency(hops), std::move(deliver),
                   "net.control.deliver");
}

std::uint64_t ControlPlane::messages_sent(const std::string& kind) const {
  const auto it = sent_.find(kind);
  return it == sent_.end() ? 0 : it->second;
}

void ControlPlane::export_telemetry(telemetry::Registry& registry) const {
  registry.counter("net.control.total").add(total_);
  registry.counter("net.control.lost").add(lost_);
  for (const auto& [kind, count] : sent_) {
    registry.counter("net.control.sent." + kind).add(count);
  }
}

}  // namespace hbp::net
