#include "net/control_plane.hpp"

#include "util/assert.hpp"

namespace hbp::net {

sim::SimTime ControlPlane::sample_latency(int hops) {
  HBP_ASSERT(hops >= 0);
  const double base = params_.per_hop_latency.to_seconds() * hops;
  const double jitter = params_.jitter_fraction > 0.0
                            ? rng_.uniform(-params_.jitter_fraction,
                                           params_.jitter_fraction) * base
                            : 0.0;
  return sim::SimTime::seconds(base + jitter);
}

void ControlPlane::send(const std::string& kind, int hops,
                        std::function<void()> deliver) {
  ++sent_[kind];
  ++total_;
  if (params_.loss_probability > 0.0 && rng_.bernoulli(params_.loss_probability)) {
    ++lost_;
    return;
  }
  simulator_.after(sample_latency(hops), std::move(deliver));
}

std::uint64_t ControlPlane::messages_sent(const std::string& kind) const {
  const auto it = sent_.find(kind);
  return it == sent_.end() ? 0 : it->second;
}

}  // namespace hbp::net
