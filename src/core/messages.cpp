#include "core/messages.hpp"

#include <algorithm>
#include <cstdio>

namespace hbp::core {

namespace {
std::string field(const char* name, long long v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%lld;", name, v);
  return buf;
}
}  // namespace

std::string serialize(const HoneypotRequest& m) {
  return "hbp-request;" + field("dst", m.dst) +
         field("epoch", static_cast<long long>(m.epoch)) +
         field("wstart_ns", m.window.start.nanos()) +
         field("wend_ns", m.window.end.nanos()) +
         field("from", m.from_as) + field("to", m.to_as) +
         field("direct", m.progressive_direct ? 1 : 0);
}

std::string serialize(const HoneypotCancel& m) {
  return "hbp-cancel;" + field("dst", m.dst) +
         field("epoch", static_cast<long long>(m.epoch)) +
         field("from", m.from_as) + field("to", m.to_as) +
         field("server", m.from_server ? 1 : 0);
}

std::string serialize(const IntermediateReport& m) {
  return "hbp-report;" + field("as", m.as) + field("dst", m.dst) +
         field("epoch", static_cast<long long>(m.epoch)) +
         field("stamp_ns", m.stamped_at.nanos());
}

util::Digest KeyStore::pair_key(net::AsId a, net::AsId b) const {
  const net::AsId lo = std::min(a, b);
  const net::AsId hi = std::max(a, b);
  return util::hmac_sha256(master_, "as-pair;" + field("lo", lo) + field("hi", hi));
}

util::Digest KeyStore::server_key(net::AsId a) const {
  return util::hmac_sha256(master_, "server;" + field("as", a));
}

}  // namespace hbp::core
