#include "core/progressive.hpp"

#include "util/assert.hpp"

namespace hbp::core {

void ProgressiveManager::on_report(net::AsId as, sim::SimTime stamped_at,
                                   sim::SimTime now) {
  HBP_ASSERT(now >= stamped_at);
  ++reports_;
  auto [it, created] = entries_.try_emplace(as);
  Entry& e = it->second;
  e.as = as;
  e.t_a_seconds = (now - stamped_at).to_seconds();
  e.reported_this_round = true;
  if (created) {
    e.consecutive_reports = 1;
  } else {
    ++e.consecutive_reports;
  }
}

std::vector<ProgressiveManager::Entry> ProgressiveManager::end_round() {
  std::vector<Entry> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    if (!e.reported_this_round) {
      // Rule 1: no report this epoch — either propagation moved upstream of
      // this AS or the report was lost; restart discovery from scratch for
      // this branch either way.
      ++rule1_;
      it = entries_.erase(it);
      continue;
    }
    if (e.consecutive_reports >= rho_) {
      // Rule 2: ρ consecutive reports without progress.
      ++rule2_;
      it = entries_.erase(it);
      continue;
    }
    e.reported_this_round = false;
    out.push_back(e);
    ++it;
  }
  return out;
}

}  // namespace hbp::core
