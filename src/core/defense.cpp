#include "core/defense.hpp"

#include <algorithm>
#include <string>

#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace hbp::core {

HbpDefense::HbpDefense(sim::Simulator& simulator, net::Network& network,
                       net::ControlPlane& control, honeypot::ServerPool& pool,
                       const topo::AsMap& as_map, const HbpParams& params)
    : simulator_(simulator),
      network_(network),
      control_(control),
      pool_(pool),
      as_map_(as_map),
      params_(params),
      keys_(params.master_secret) {
  const auto n = static_cast<std::size_t>(pool_.server_count());
  windows_.resize(n);
  requested_.resize(n);
  progressive_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    progressive_.push_back(std::make_unique<ProgressiveManager>(params_.rho));
  }
}

HbpDefense::~HbpDefense() = default;

void HbpDefense::start() {
  HBP_ASSERT_MSG(hsms_.empty(), "start() must be called once");
  for (std::size_t as = 0; as < as_map_.count(); ++as) {
    const auto id = static_cast<net::AsId>(as);
    if (!params_.deployment.deploys(id)) continue;
    hsms_.emplace(id, std::make_unique<Hsm>(*this, as_map_.info(id)));
  }
  for (int s = 0; s < pool_.server_count(); ++s) {
    HBP_ASSERT_MSG(hsms_.contains(home_as(s)),
                   "the victim's home AS must deploy the scheme");
  }

  pool_.add_honeypot_window_listener(
      honeypot::ServerPool::WindowFn::bind<&HbpDefense::on_window_start>(*this),
      honeypot::ServerPool::WindowFn::bind<&HbpDefense::on_window_end>(*this));
  pool_.add_honeypot_hit_listener(
      honeypot::ServerPool::HitFn::bind<&HbpDefense::on_honeypot_hit>(*this));
}

Hsm* HbpDefense::hsm(net::AsId as) {
  const auto it = hsms_.find(as);
  return it == hsms_.end() ? nullptr : it->second.get();
}

net::AsId HbpDefense::home_as(int server) const {
  return network_.node(pool_.node(server)).as_id();
}

std::size_t HbpDefense::next_honeypot_epoch(int server,
                                            std::size_t after) const {
  const auto& schedule = pool_.schedule();
  for (std::size_t e = after + 1; e < after + 1000; ++e) {
    if (!schedule.is_active(server, e)) return e;
  }
  return 0;  // none found in horizon
}

void HbpDefense::on_window_start(int server, std::size_t epoch) {
  auto& w = windows_[static_cast<std::size_t>(server)];
  w = ServerWindow{};
  w.epoch = epoch;
  w.open = true;
}

void HbpDefense::on_honeypot_hit(int server, const sim::Packet& p) {
  auto& w = windows_[static_cast<std::size_t>(server)];
  if (!w.open) return;
  ++w.hits;
  if (p.is_attack) ++w.attack_hits;
  w.last_hit_uid = p.uid;
  if (!w.activated && w.hits >= params_.activation_threshold) {
    w.activated = true;
    ++activations_;
    if (w.attack_hits == 0) ++false_activations_;
    if (simulator_.tracing()) {
      simulator_.trace_event({simulator_.now(), sim::TraceVerb::kActivate,
                              pool_.node(server), p.uid, p.uid, server,
                              static_cast<std::int32_t>(w.epoch)});
    }
    activate(server);
  }
}

void HbpDefense::activate(int server) {
  // "Whenever the server S starts a honeypot epoch, it sends a honeypot
  // request message to the HSM(s) of its AS(s)" — gated here by the
  // activation threshold.
  const auto& w = windows_[static_cast<std::size_t>(server)];
  const net::AsId home = home_as(server);
  const sim::Address dst = pool_.address(server);

  HoneypotRequest m;
  m.dst = dst;
  m.epoch = w.epoch;
  m.window.start =
      pool_.schedule().epoch_start(w.epoch) + pool_.window_start_guard();
  m.window.end = pool_.schedule().epoch_end(w.epoch) - pool_.window_end_guard();
  m.from_as = home;  // server speaks for its home AS
  m.to_as = home;
  keys_.sign(m, keys_.server_key(home));
  m.trace_cause = w.last_hit_uid;

  requested_[static_cast<std::size_t>(server)][w.epoch].insert(home);
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kRequestSend,
                            pool_.node(server), w.last_hit_uid, w.last_hit_uid,
                            home, home});
  }
  control_.send("honeypot_request", 1, [this, m] { deliver_request(m); });
}

void HbpDefense::on_window_end(int server, std::size_t epoch) {
  auto& w = windows_[static_cast<std::size_t>(server)];
  w.open = false;

  // Cancel every session tree rooted this epoch (home AS plus progressive
  // direct targets).
  auto& by_epoch = requested_[static_cast<std::size_t>(server)];
  const auto it = by_epoch.find(epoch);
  if (it != by_epoch.end()) {
    const sim::Address dst = pool_.address(server);
    for (const net::AsId as : it->second) {
      const int hops = 1 + std::max(0, as_map_.as_hop_distance(home_as(server), as));
      HoneypotCancel c;
      c.dst = dst;
      c.epoch = epoch;
      c.from_as = home_as(server);
      c.to_as = as;
      c.from_server = true;
      keys_.sign(c, keys_.server_key(as));
      if (simulator_.tracing()) {
        simulator_.trace_event({simulator_.now(), sim::TraceVerb::kCancelSend,
                                pool_.node(server), 0, 0, home_as(server), as});
      }
      control_.send("honeypot_cancel", hops, [this, c] { deliver_cancel(c); });
    }
    by_epoch.erase(it);
  }

  if (params_.progressive) {
    // Give the intermediate reports time to arrive, then close the round
    // and schedule the next epoch's direct requests.
    simulator_.after(params_.report_grace,
                     [this, server] { schedule_direct_requests(server); },
                     "core.defense.round");
  }
}

void HbpDefense::schedule_direct_requests(int server) {
  auto& manager = *progressive_[static_cast<std::size_t>(server)];
  const auto entries = manager.end_round();
  if (entries.empty()) return;

  const std::size_t next_epoch =
      next_honeypot_epoch(server, pool_.schedule().epoch_of(simulator_.now()));
  if (next_epoch == 0) return;
  const sim::SimTime window_start =
      pool_.schedule().epoch_start(next_epoch) + pool_.window_start_guard();
  const sim::Address dst = pool_.address(server);
  const net::AsId home = home_as(server);

  for (const auto& entry : entries) {
    // "At t_A + τ seconds before the next honeypot epoch, a request message
    // is sent to each AS A in the intermediate-AS list."
    const sim::SimTime lead =
        sim::SimTime::seconds(entry.t_a_seconds) + params_.tau_estimate;
    sim::SimTime when = window_start - lead;
    if (when < simulator_.now()) when = simulator_.now();

    const net::AsId target = entry.as;
    SessionWindow window;
    window.start =
        pool_.schedule().epoch_start(next_epoch) + pool_.window_start_guard();
    window.end =
        pool_.schedule().epoch_end(next_epoch) - pool_.window_end_guard();
    simulator_.at(when, [this, server, target, dst, next_epoch, window,
                         home] {
      HoneypotRequest m;
      m.dst = dst;
      m.epoch = next_epoch;
      m.window = window;
      m.from_as = home;
      m.to_as = target;
      m.progressive_direct = true;
      keys_.sign(m, keys_.server_key(target));
      requested_[static_cast<std::size_t>(server)][next_epoch].insert(target);
      const int hops = 1 + std::max(0, as_map_.as_hop_distance(home, target));
      if (simulator_.tracing()) {
        simulator_.trace_event({simulator_.now(),
                                sim::TraceVerb::kDirectRequest,
                                pool_.node(server), 0, 0, target,
                                static_cast<std::int32_t>(next_epoch)});
      }
      control_.send("honeypot_request", hops, [this, m] { deliver_request(m); });
    }, "core.defense.direct_request");
  }
}

void HbpDefense::propagate_request(net::AsId from, net::AsId to,
                                   sim::Address dst, std::size_t epoch,
                                   const SessionWindow& window,
                                   int extra_hops, std::uint64_t trace_cause) {
  if (hsm(to) != nullptr) {
    HoneypotRequest m;
    m.dst = dst;
    m.epoch = epoch;
    m.window = window;
    m.from_as = from;
    m.to_as = to;
    keys_.sign(m, keys_.pair_key(from, to));
    m.trace_cause = trace_cause;
    if (simulator_.tracing()) {
      simulator_.trace_event({simulator_.now(), sim::TraceVerb::kRequestSend,
                              sim::kInvalidNode, trace_cause, trace_cause,
                              from, to});
    }
    control_.send("honeypot_request", 1 + extra_hops,
                  [this, m] { deliver_request(m); });
    return;
  }
  // Deployment gap (Section 5.3): broadcast over routing announcements to
  // every upstream AS of the non-deploying one, until deploying ASs resume
  // normal propagation.
  ++bridged_;
  for (const net::AsId up : as_map_.info(to).upstream) {
    propagate_request(from, up, dst, epoch, window, extra_hops + 1,
                      trace_cause);
  }
}

void HbpDefense::propagate_cancel(net::AsId from, net::AsId to,
                                  sim::Address dst, std::size_t epoch,
                                  int extra_hops) {
  if (hsm(to) != nullptr) {
    HoneypotCancel m;
    m.dst = dst;
    m.epoch = epoch;
    m.from_as = from;
    m.to_as = to;
    keys_.sign(m, keys_.pair_key(from, to));
    if (simulator_.tracing()) {
      simulator_.trace_event({simulator_.now(), sim::TraceVerb::kCancelSend,
                              sim::kInvalidNode, 0, 0, from, to});
    }
    control_.send("honeypot_cancel", 1 + extra_hops,
                  [this, m] { deliver_cancel(m); });
    return;
  }
  ++bridged_;
  for (const net::AsId up : as_map_.info(to).upstream) {
    propagate_cancel(from, up, dst, epoch, extra_hops + 1);
  }
}

void HbpDefense::report_to_server(net::AsId from, sim::Address dst,
                                  std::size_t epoch) {
  IntermediateReport m;
  m.as = from;
  m.dst = dst;
  m.epoch = epoch;
  m.stamped_at = simulator_.now();
  keys_.sign(m, keys_.server_key(from));

  const int server = pool_.index_of(dst);
  if (server < 0) return;
  const int hops =
      1 + std::max(0, as_map_.as_hop_distance(from, home_as(server)));
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kReportSend,
                            sim::kInvalidNode, 0, 0, from,
                            static_cast<std::int32_t>(epoch)});
  }
  control_.send("intermediate_report", hops, [this, m] { deliver_report(m); });
}

void HbpDefense::deliver_request(const HoneypotRequest& m) {
  Hsm* target = hsm(m.to_as);
  if (target == nullptr) return;
  if (params_.authenticate) {
    const util::Digest key = m.from_as == m.to_as || m.progressive_direct
                                 ? keys_.server_key(m.to_as)
                                 : keys_.pair_key(m.from_as, m.to_as);
    if (!keys_.verify(m, key)) {
      ++forged_rejected_;
      return;
    }
  }
  target->receive_request(m);
}

void HbpDefense::deliver_cancel(const HoneypotCancel& m) {
  Hsm* target = hsm(m.to_as);
  if (target == nullptr) return;
  if (params_.authenticate) {
    const util::Digest key = m.from_server
                                 ? keys_.server_key(m.to_as)
                                 : keys_.pair_key(m.from_as, m.to_as);
    if (!keys_.verify(m, key)) {
      ++forged_rejected_;
      return;
    }
  }
  target->receive_cancel(m);
}

void HbpDefense::deliver_report(const IntermediateReport& m) {
  if (params_.authenticate && !keys_.verify(m, keys_.server_key(m.as))) {
    ++forged_rejected_;
    return;
  }
  const int server = pool_.index_of(m.dst);
  if (server < 0) return;
  progressive_[static_cast<std::size_t>(server)]->on_report(
      m.as, m.stamped_at, simulator_.now());
}

void HbpDefense::export_telemetry(telemetry::Registry& registry) const {
  registry.counter("core.defense.activations").add(activations_);
  registry.counter("core.defense.false_activations").add(false_activations_);
  registry.counter("core.defense.forged_rejected").add(forged_rejected_);
  registry.counter("core.defense.bridged_messages").add(bridged_);
  registry.counter("core.defense.captures").add(captures_.size());
  for (const auto& [as, hsm] : hsms_) {
    const std::string prefix = "core.hsm." + std::to_string(as);
    registry.counter(prefix + ".requests").add(hsm->requests_received());
    registry.counter(prefix + ".cancels").add(hsm->cancels_received());
    registry.counter(prefix + ".diverted").add(hsm->packets_diverted());
  }
}

void HbpDefense::on_capture(sim::NodeId host, sim::Address dst) {
  if (captured_hosts_.contains(host)) return;
  captured_hosts_.insert(host);
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kCapture, host,
                            0, 0, static_cast<std::int32_t>(dst), -1});
  }
  const CaptureEvent event{host, dst, simulator_.now()};
  captures_.push_back(event);
  for (const auto& fn : capture_listeners_) fn(event);
}

}  // namespace hbp::core
