#include "core/hsm.hpp"

#include "core/defense.hpp"
#include "net/network.hpp"
#include "util/assert.hpp"

namespace hbp::core {

// ---------------------------------------------------------------- router agent

HbpRouterAgent::HbpRouterAgent(Hsm& hsm, net::Router& router)
    : hsm_(hsm), router_(router) {
  router_.add_tap(this);
}

HbpRouterAgent::~HbpRouterAgent() {
  router_.remove_tap(this);
  for (auto& block : blocks_) router_.remove_filter(block.get());
}

void HbpRouterAgent::open_session(sim::Address dst,
                                  const SessionWindow& window) {
  auto [it, created] = sessions_.try_emplace(dst);
  it->second.window = window;
}

void HbpRouterAgent::close_session(sim::Address dst) {
  const auto it = sessions_.find(dst);
  if (it == sessions_.end()) return;
  for (const int port : it->second.watched_switches) {
    auto& sw = hsm_.switch_node(router_.neighbor(static_cast<std::size_t>(port)));
    sw.stop_watch(dst);
  }
  sessions_.erase(it);
}

void HbpRouterAgent::on_forward(const sim::Packet& p, int in_port, int out_port) {
  (void)out_port;
  if (sessions_.contains(p.dst)) observe(p.dst, in_port);
}

void HbpRouterAgent::harvest(sim::Address dst, int switch_port) {
  const auto it = sessions_.find(dst);
  if (it == sessions_.end()) return;  // cancelled
  LocalSession& session = it->second;
  const sim::SimTime now = hsm_.defense().simulator().now();
  if (now > session.window.end) return;  // signature expired
  if (now < session.window.start) {
    // Session armed early (progressive direct request): idle until the
    // window opens, then resume harvesting.
    hsm_.defense().simulator().at(
        session.window.start + sim::SimTime::millis(50),
        [this, dst, switch_port] { harvest(dst, switch_port); });
    return;
  }

  auto& sw = hsm_.switch_node(
      router_.neighbor(static_cast<std::size_t>(switch_port)));
  for (const int port : sw.ports_sending_to(dst)) {
    if (sw.is_closed(port)) continue;
    const sim::NodeId host = sw.attached_host(port);
    if (host == sim::kInvalidNode) continue;  // uplink port
    sw.close_port(port);
    hsm_.on_local_capture(dst, host);
  }

  // Keep harvesting the watch until the window closes or the session is
  // cancelled.
  hsm_.defense().simulator().after(
      sim::SimTime::millis(50),
      [this, dst, switch_port] { harvest(dst, switch_port); },
      "core.hsm.harvest");
}

void HbpRouterAgent::observe(sim::Address dst, int in_port) {
  const auto it = sessions_.find(dst);
  if (it == sessions_.end()) return;
  LocalSession& session = it->second;
  if (!session.window.contains(hsm_.defense().simulator().now())) return;

  const sim::NodeId neighbor_id =
      router_.neighbor(static_cast<std::size_t>(in_port));
  const net::Node& neighbor = router_.network().node(neighbor_id);

  switch (neighbor.kind()) {
    case net::NodeKind::kSwitch: {
      // MAC end game (Section 5.2): watch which switch ports send to the
      // honeypot, then shut them.  The first observation arms the watch and
      // a periodic harvest bounded by the honeypot window.
      auto& sw = hsm_.switch_node(neighbor_id);
      if (!session.watched_switches.contains(in_port)) {
        session.watched_switches.insert(in_port);
        sw.start_watch(dst);
        hsm_.defense().simulator().after(
            sim::SimTime::millis(50),
            [this, dst, in_port] { harvest(dst, in_port); },
            "core.hsm.harvest");
      }
      return;  // the harvest loop takes it from here
    }
    case net::NodeKind::kRouter: {
      if (neighbor.as_id() != router_.as_id()) {
        // Input debugging walked back to an AS boundary: hand over to the
        // HSM for inter-AS propagation.  (Local honeypot messages "do not
        // cross AS boundaries".)
        hsm_.on_ingress_reached(dst, router_.id(), in_port);
        return;
      }
      if (!session.propagated_ports.contains(in_port)) {
        session.propagated_ports.insert(in_port);
        hsm_.send_local_request(router_.id(), neighbor_id, dst);
      }
      return;
    }
    case net::NodeKind::kHost: {
      // Host wired straight into the router (no switch): block its port.
      if (!session.propagated_ports.contains(in_port)) {
        session.propagated_ports.insert(in_port);
        blocks_.push_back(std::make_unique<PortBlock>(in_port));
        router_.add_filter(blocks_.back().get());
        hsm_.on_local_capture(dst, neighbor_id);
      }
      return;
    }
  }
}

// ---------------------------------------------------------------- divert filter

Hsm::DivertFilter::DivertFilter(Hsm& hsm, net::Router& router)
    : hsm_(hsm), router_(router) {
  router_.add_filter(this);
}

Hsm::DivertFilter::~DivertFilter() { router_.remove_filter(this); }

net::FilterAction Hsm::DivertFilter::on_packet(const sim::Packet& p,
                                               int in_port) {
  if (!dsts_.contains(p.dst)) return net::FilterAction::kPass;
  // Past the honeypot window the server may be active again: let traffic
  // through (the cancel that removes this filter is still in flight).
  const auto session = hsm_.sessions_.find(p.dst);
  if (session == hsm_.sessions_.end() ||
      !session->second.window.contains(hsm_.defense().simulator().now())) {
    return net::FilterAction::kPass;
  }

  sim::Packet stamped = p;
  const auto it = hsm_.cross_by_port_.find({router_.id(), in_port});
  if (it != hsm_.cross_by_port_.end() && it->second->upstream) {
    // Ingress from an upstream AS: stamp the edge id in the configured way.
    const int edge_id = lie_edge_id_ >= 0 ? lie_edge_id_ : it->second->edge_id;
    if (hsm_.defense().params().ingress_mode ==
        HbpParams::IngressMode::kMarking) {
      stamped.mark = edge_id;
    } else {
      stamped.tunnel_id = edge_id;
    }
  }
  // Divert to the HSM: one intra-AS control hop of latency, then consumed
  // ("only the honeypot traffic, which will be discarded anyway").
  const sim::NodeId reporter = router_.id();
  sim::Simulator& simulator = hsm_.defense().simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kDivert,
                           reporter, p.uid, 0, in_port,
                           std::max(stamped.mark, stamped.tunnel_id)});
  }
  hsm_.defense().control().send(
      "divert_report", 1, [hsm = &hsm_, reporter, in_port, stamped] {
        hsm->on_diverted(reporter, in_port, stamped);
      });
  return net::FilterAction::kConsume;
}

// ------------------------------------------------------------------------- hsm

Hsm::Hsm(HbpDefense& defense, const topo::AsInfo& info)
    : defense_(defense), info_(info) {
  for (const topo::CrossLink& cl : info_.cross_links) {
    cross_by_port_[{cl.router, cl.port}] = &cl;
    cross_by_edge_id_[cl.edge_id] = &cl;
  }
}

Hsm::~Hsm() = default;

net::Switch& Hsm::switch_node(sim::NodeId id) {
  auto& node = defense_.network().node(id);
  HBP_ASSERT(node.kind() == net::NodeKind::kSwitch);
  return static_cast<net::Switch&>(node);
}

HbpRouterAgent& Hsm::agent(sim::NodeId router) {
  auto it = agents_.find(router);
  if (it == agents_.end()) {
    auto& r = static_cast<net::Router&>(defense_.network().node(router));
    it = agents_.emplace(router, std::make_unique<HbpRouterAgent>(*this, r))
             .first;
  }
  return *it->second;
}

void Hsm::install_divert(sim::Address dst) {
  for (const topo::CrossLink& cl : info_.cross_links) {
    auto it = filters_.find(cl.router);
    if (it == filters_.end()) {
      auto& r = static_cast<net::Router&>(defense_.network().node(cl.router));
      it = filters_.emplace(cl.router, std::make_unique<DivertFilter>(*this, r))
               .first;
      if (const auto lie = lies_.find(cl.router); lie != lies_.end()) {
        it->second->set_lie(lie->second);
      }
    }
    it->second->add_dst(dst);
  }
}

void Hsm::remove_divert(sim::Address dst) {
  for (auto it = filters_.begin(); it != filters_.end();) {
    it->second->remove_dst(dst);
    if (it->second->empty()) {
      it = filters_.erase(it);
    } else {
      ++it;
    }
  }
}

void Hsm::receive_request(const HoneypotRequest& m) {
  ++requests_received_;
  sim::Simulator& simulator = defense_.simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kSessionOpen,
                           sim::kInvalidNode, m.trace_cause, m.trace_cause,
                           info_.id, static_cast<std::int32_t>(m.epoch)});
  }
  auto [it, created] = sessions_.try_emplace(m.dst);
  HsmSession& session = it->second;
  session.epoch = m.epoch;
  session.window = m.window;
  if (created) {
    install_divert(m.dst);
  }
}

void Hsm::receive_cancel(const HoneypotCancel& m) {
  ++cancels_received_;
  sim::Simulator& simulator = defense_.simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kSessionClose,
                           sim::kInvalidNode, 0, 0, info_.id,
                           static_cast<std::int32_t>(m.epoch)});
  }
  const auto it = sessions_.find(m.dst);
  if (it == sessions_.end()) return;
  HsmSession session = std::move(it->second);
  sessions_.erase(it);

  remove_divert(m.dst);

  // Propagate the cancel along the request tree.
  for (const net::AsId up : session.propagated_upstream) {
    defense_.propagate_cancel(info_.id, up, m.dst, m.epoch);
  }

  // Progressive scheme (Section 6): an AS where back-propagation stalled
  // reports its identity + timestamp to the server so the next epoch can
  // resume from there.  For transit ASs the stall means no upstream request
  // was sent; for non-transit (stub) ASs it means the intra-AS walk did not
  // cut anyone off yet ("the HSM of a non-transit AS retains the honeypot
  // session until intra-AS back-propagation is performed" — we realise the
  // retention through a direct re-activation next epoch).
  if (defense_.params().progressive && !session.any_upstream_request) {
    const bool stalled =
        info_.transit ? true : session.captures == 0;
    if (stalled) {
      defense_.report_to_server(info_.id, m.dst, m.epoch);
    }
  }

  // Tear down intra-AS sessions.  Their useful life ended at window_end
  // anyway (past it the dst=S signature stops distinguishing attack from
  // legitimate traffic); the window bound inside the agents guarantees no
  // action was taken on post-window observations even though the cancel
  // message arrives with some control-plane latency.
  for (const sim::NodeId r : session.local_sessions) {
    const auto ag = agents_.find(r);
    if (ag != agents_.end()) ag->second->close_session(m.dst);
  }
}

void Hsm::on_diverted(sim::NodeId edge_router, int in_port,
                      const sim::Packet& p) {
  const auto it = sessions_.find(p.dst);
  if (it == sessions_.end()) return;  // stale report after cancel
  HsmSession& session = it->second;
  ++session.packets;
  ++diverted_;

  // Feed edge-router observations into an active intra-AS session there
  // (the edge filter consumes packets before the router tap would see them).
  if (session.local_sessions.contains(edge_router)) {
    agent(edge_router).observe(p.dst, in_port);
  }

  const int stamp = defense_.params().ingress_mode ==
                            HbpParams::IngressMode::kMarking
                        ? p.mark
                        : p.tunnel_id;
  if (stamp >= 0) {
    // Ingress from an upstream AS identified by the stamped edge id.
    const auto cl = cross_by_edge_id_.find(stamp);
    if (cl != cross_by_edge_id_.end() && cl->second->upstream) {
      propagate_upstream(p.dst, session, cl->second->neighbor_as, p.uid);
    }
    return;
  }

  // No stamp: the packet originated inside this AS — start (or continue)
  // intra-AS back-propagation at the reporting router.
  start_intra_as(p.dst, session, edge_router, in_port, p.uid);
}

void Hsm::start_intra_as(sim::Address dst, HsmSession& session,
                         sim::NodeId router, int in_port,
                         std::uint64_t cause_uid) {
  if (!session.local_sessions.contains(router)) {
    session.local_sessions.insert(router);
    sim::Simulator& simulator = defense_.simulator();
    if (simulator.tracing()) {
      simulator.trace_event({simulator.now(), sim::TraceVerb::kIntraTrace,
                             router, cause_uid, cause_uid, in_port,
                             info_.id});
    }
    agent(router).open_session(dst, session.window);
  }
  agent(router).observe(dst, in_port);
}

void Hsm::propagate_upstream(sim::Address dst, HsmSession& session,
                             net::AsId neighbor, std::uint64_t cause_uid) {
  if (session.propagated_upstream.contains(neighbor)) return;
  session.propagated_upstream.insert(neighbor);
  session.any_upstream_request = true;
  sim::Simulator& simulator = defense_.simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kUpstream,
                           sim::kInvalidNode, cause_uid, cause_uid, info_.id,
                           neighbor});
  }
  defense_.propagate_request(info_.id, neighbor, dst, session.epoch,
                             session.window, 0, cause_uid);
}

void Hsm::on_ingress_reached(sim::Address dst, sim::NodeId router, int port) {
  const auto it = sessions_.find(dst);
  if (it == sessions_.end()) return;
  const auto cl = cross_by_port_.find({router, port});
  if (cl == cross_by_port_.end() || !cl->second->upstream) return;
  sim::Simulator& simulator = defense_.simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kIngressReached,
                           router, 0, 0, port, cl->second->neighbor_as});
  }
  propagate_upstream(dst, it->second, cl->second->neighbor_as);
}

void Hsm::on_local_capture(sim::Address dst, sim::NodeId host) {
  if (const auto it = sessions_.find(dst); it != sessions_.end()) {
    ++it->second.captures;
  }
  defense_.on_capture(host, dst);
}

void Hsm::send_local_request(sim::NodeId from_router, sim::NodeId to_router,
                             sim::Address dst) {
  // TTL-255 authenticity: neighbors only, by construction.
  const auto it = sessions_.find(dst);
  if (it == sessions_.end()) return;
  it->second.local_sessions.insert(to_router);
  const SessionWindow window = it->second.window;
  sim::Simulator& simulator = defense_.simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kLocalRequest,
                           from_router, 0, 0, to_router, info_.id});
  }
  defense_.control().send("local_request", 1, [this, to_router, dst, window] {
    agent(to_router).open_session(dst, window);
  });
}

void Hsm::compromise_edge_router(sim::NodeId router, int lie_edge_id) {
  lies_[router] = lie_edge_id;
  if (const auto it = filters_.find(router); it != filters_.end()) {
    it->second->set_lie(lie_edge_id);
  }
}

}  // namespace hbp::core
