// Honeypot back-propagation control messages (Section 5).
//
// Inter-AS honeypot request/cancel messages and the progressive scheme's
// intermediate-AS reports are "encrypted and authenticated using shared
// keys between ASs, in a similar way to securing BGP sessions"
// (Section 5.3).  We authenticate with HMAC-SHA256 over a canonical
// serialization under a per-AS-pair key; forged messages (the DoS-on-the-
// defense vector) are rejected and counted.
//
// Intra-AS hop-by-hop messages use the TTL-255 trick of ACC/Pushback
// (routers only accept from one hop away); in the simulator that property
// is modelled by delivering local messages only between direct neighbors.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/node.hpp"
#include "sim/packet.hpp"
#include "sim/time.hpp"
#include "util/sha256.hpp"

namespace hbp::core {

enum class MessageType : std::uint8_t {
  kHoneypotRequest,
  kHoneypotCancel,
  kIntermediateReport,
};

// The honeypot observation window: traffic to the honeypot address is a
// valid attack signature only inside [start, end].  Sessions may be set up
// before the window opens (progressive direct requests arrive t_A + τ
// early) and cancelled after it closes (control latency), so every
// data-driven action — diversion, ingress identification, input debugging,
// switch-port harvesting — is gated on this window.
struct SessionWindow {
  sim::SimTime start = sim::SimTime::zero();
  sim::SimTime end = sim::SimTime::zero();

  bool contains(sim::SimTime t) const { return t >= start && t <= end; }
};

struct HoneypotRequest {
  sim::Address dst = 0;          // the honeypot's address (attack signature)
  std::size_t epoch = 0;
  SessionWindow window;
  net::AsId from_as = net::kNoAs;
  net::AsId to_as = net::kNoAs;
  bool progressive_direct = false;  // sent directly by the server (Section 6)
  // Causal-trace annotation: uid of the packet (honeypot hit or diverted
  // attack packet) whose observation triggered this request.  Not part of
  // the canonical serialization, so it never enters the MAC — it is
  // observability metadata, not protocol state.
  std::uint64_t trace_cause = 0;
  util::Digest mac{};
};

struct HoneypotCancel {
  sim::Address dst = 0;
  std::size_t epoch = 0;
  net::AsId from_as = net::kNoAs;
  net::AsId to_as = net::kNoAs;
  bool from_server = false;  // sent by the victim server, not a peer HSM
  util::Digest mac{};
};

// Progressive scheme: "the HSM of A sends its identity A and a time stamp
// to S, which in turn calculates t_A, A's time distance in seconds from S."
struct IntermediateReport {
  net::AsId as = net::kNoAs;
  sim::Address dst = 0;          // which honeypot's session stalled
  std::size_t epoch = 0;
  sim::SimTime stamped_at = sim::SimTime::zero();
  util::Digest mac{};
};

// Canonical serializations covered by the MAC.
std::string serialize(const HoneypotRequest& m);
std::string serialize(const HoneypotCancel& m);
std::string serialize(const IntermediateReport& m);

// Per-AS-pair shared keys derived from a deployment master secret.
class KeyStore {
 public:
  explicit KeyStore(const util::Digest& master) : master_(master) {}

  // Symmetric: key(a, b) == key(b, a).
  util::Digest pair_key(net::AsId a, net::AsId b) const;

  // Key between an AS and the protected server pool (for reports/directs).
  util::Digest server_key(net::AsId a) const;

  template <typename Message>
  void sign(Message& m, const util::Digest& key) const {
    m.mac = {};
    m.mac = util::hmac_sha256(key, serialize(m));
  }

  template <typename Message>
  bool verify(const Message& m, const util::Digest& key) const {
    Message copy = m;
    copy.mac = {};
    return util::digest_equal(util::hmac_sha256(key, serialize(copy)), m.mac);
  }

 private:
  util::Digest master_;
};

}  // namespace hbp::core
