// Server-side intermediate-AS list of progressive honeypot back-propagation
// (Section 6).
//
// When back-propagation stalls at a transit AS A (no upstream request was
// sent during the epoch), A reports its identity and a timestamp; the
// server stores t_A (A's one-way time distance) and, t_A + τ before the
// next honeypot epoch, sends a request directly to A so propagation resumes
// where it stopped.  Two pruning rules bound the list:
//   1. drop A if it did not report again in the following honeypot epoch
//      (propagation moved past it, or the report was lost);
//   2. drop A after ρ consecutive reports (no progress is being made
//      through it).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/node.hpp"
#include "sim/time.hpp"

namespace hbp::core {

class ProgressiveManager {
 public:
  explicit ProgressiveManager(int rho) : rho_(rho) {}

  struct Entry {
    net::AsId as = net::kNoAs;
    double t_a_seconds = 0.0;  // one-way distance from the server
    int consecutive_reports = 0;
    bool reported_this_round = false;
  };

  // A report from AS `as` stamped at `stamped_at` arrived at `now`.
  void on_report(net::AsId as, sim::SimTime stamped_at, sim::SimTime now);

  // Applies rule 1 (drop silent entries) at the end of a reporting round
  // (i.e. once all reports from the previous honeypot epoch are in) and
  // clears the per-round flags.  Returns the surviving entries to which
  // direct requests should be scheduled for the next honeypot epoch.
  std::vector<Entry> end_round();

  std::size_t size() const { return entries_.size(); }
  bool contains(net::AsId as) const { return entries_.contains(as); }
  int rho() const { return rho_; }

  std::uint64_t reports_received() const { return reports_; }
  std::uint64_t rule1_removals() const { return rule1_; }
  std::uint64_t rule2_removals() const { return rule2_; }

 private:
  int rho_;
  std::map<net::AsId, Entry> entries_;
  bool first_round_done_ = false;
  std::uint64_t reports_ = 0;
  std::uint64_t rule1_ = 0;
  std::uint64_t rule2_ = 0;
};

}  // namespace hbp::core
