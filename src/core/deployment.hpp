// Incremental-deployment policy (Section 5.3): which ASs run an HSM.
//
// With partial deployment, request/cancel messages bridge gaps between
// deploying ASs by piggybacking on routing announcements ("broadcast ...
// over routing announcements to all upstream ASs ... until they reach a
// deploying AS, from which point normal propagation is resumed").
#pragma once

#include <set>

#include "net/node.hpp"
#include "util/rng.hpp"

namespace hbp::core {

class DeploymentPolicy {
 public:
  // Full deployment.
  DeploymentPolicy() = default;

  // Partial deployment: each AS deploys independently with probability
  // `fraction`; the listed ASs always deploy (the victim's home AS must).
  static DeploymentPolicy random_fraction(double fraction, std::size_t as_count,
                                          util::Rng& rng,
                                          std::set<net::AsId> always_deploy);

  // Explicit set.
  static DeploymentPolicy explicit_set(std::set<net::AsId> deploying);

  bool deploys(net::AsId as) const {
    return full_ || deploying_.contains(as);
  }
  bool full() const { return full_; }

 private:
  bool full_ = true;
  std::set<net::AsId> deploying_;
};

inline DeploymentPolicy DeploymentPolicy::random_fraction(
    double fraction, std::size_t as_count, util::Rng& rng,
    std::set<net::AsId> always_deploy) {
  DeploymentPolicy p;
  p.full_ = false;
  p.deploying_ = std::move(always_deploy);
  for (std::size_t as = 0; as < as_count; ++as) {
    if (rng.bernoulli(fraction)) p.deploying_.insert(static_cast<net::AsId>(as));
  }
  return p;
}

inline DeploymentPolicy DeploymentPolicy::explicit_set(
    std::set<net::AsId> deploying) {
  DeploymentPolicy p;
  p.full_ = false;
  p.deploying_ = std::move(deploying);
  return p;
}

}  // namespace hbp::core
