// The Honeypot Session Manager and intra-AS machinery (Sections 5.1, 5.2).
//
// One HSM per deploying AS.  On a honeypot request it creates a honeypot
// session for the victim address S and diverts dst=S traffic at every AS
// edge router into itself (the iBGP next-hop announcement of the paper,
// modelled as a divert filter: the traffic would be discarded at the
// honeypot anyway, so the edge router reports the packet to the HSM and
// consumes it).  Ingress identification uses either GRE-style tunnel ids or
// packet marking in the (otherwise unused) ID field — lg(n) bits for n edge
// routers.  Packets arriving on intra-AS ports carry no stamp: they
// originate inside the AS and trigger intra-AS back-propagation, a
// hop-by-hop input-debugging walk from the reporting (egress) router to the
// access routers, ending with MAC identification and switch-port shutoff.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "core/messages.hpp"
#include "net/router.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"
#include "topo/as_map.hpp"

namespace hbp::core {

class HbpDefense;
class Hsm;

// Intra-AS honeypot session at one router: observes dst=S traffic per input
// port (input debugging) and walks upstream (Section 5.2).
class HbpRouterAgent final : public net::ForwardTap {
 public:
  HbpRouterAgent(Hsm& hsm, net::Router& router);
  ~HbpRouterAgent() override;

  HbpRouterAgent(const HbpRouterAgent&) = delete;
  HbpRouterAgent& operator=(const HbpRouterAgent&) = delete;

  // `window` bounds every action of the session: outside it, traffic to
  // dst is no longer a trustworthy attack signature.
  void open_session(sim::Address dst, const SessionWindow& window);
  void close_session(sim::Address dst);
  bool has_session(sim::Address dst) const { return sessions_.contains(dst); }

  // From the tap (interior routers) or from divert reports (edge routers).
  void observe(sim::Address dst, int in_port);

  void on_forward(const sim::Packet& p, int in_port, int out_port) override;

 private:
  // Blocks all traffic arriving on one port — used when a host hangs off
  // the router directly (no switch in between).
  class PortBlock final : public net::PacketFilter {
   public:
    explicit PortBlock(int port) : port_(port) {}
    net::FilterAction on_packet(const sim::Packet&, int in_port) override {
      return in_port == port_ ? net::FilterAction::kDrop
                              : net::FilterAction::kPass;
    }

   private:
    int port_;
  };

  struct LocalSession {
    SessionWindow window;
    std::set<int> propagated_ports;   // upstream routers already requested
    std::set<int> watched_switches;   // ports whose switch watch is running
  };

  void harvest(sim::Address dst, int switch_port);

  Hsm& hsm_;
  net::Router& router_;
  std::map<sim::Address, LocalSession> sessions_;
  std::vector<std::unique_ptr<PortBlock>> blocks_;
};

class Hsm {
 public:
  Hsm(HbpDefense& defense, const topo::AsInfo& info);
  ~Hsm();

  Hsm(const Hsm&) = delete;
  Hsm& operator=(const Hsm&) = delete;

  net::AsId as_id() const { return info_.id; }
  const topo::AsInfo& info() const { return info_; }

  // --- inter-AS message handling (MAC already verified by the defense) ---
  void receive_request(const HoneypotRequest& m);
  void receive_cancel(const HoneypotCancel& m);

  // --- data-plane callbacks ---
  // A diverted packet report from an edge router (already stamped).
  void on_diverted(sim::NodeId edge_router, int in_port, const sim::Packet& p);
  // Intra-AS traceback reached a port crossing into another AS.
  void on_ingress_reached(sim::Address dst, sim::NodeId router, int port);

  // --- intra-AS helpers used by router agents ---
  void send_local_request(sim::NodeId from_router, sim::NodeId to_router,
                          sim::Address dst);
  net::Switch& switch_node(sim::NodeId id);
  HbpDefense& defense() { return defense_; }
  // An attack host on this AS was cut off for `dst`.
  void on_local_capture(sim::Address dst, sim::NodeId host);

  bool session_active(sim::Address dst) const { return sessions_.contains(dst); }
  std::uint64_t packets_diverted() const { return diverted_; }
  std::size_t session_count() const { return sessions_.size(); }
  std::uint64_t requests_received() const { return requests_received_; }
  std::uint64_t cancels_received() const { return cancels_received_; }

  // Test hook: make one edge router stamp a fixed wrong edge id
  // (compromised-router false-positive analysis, Section 5.1/5.3).
  void compromise_edge_router(sim::NodeId router, int lie_edge_id);

 private:
  friend class HbpRouterAgent;

  // Divert filter installed on one edge router; handles every active dst.
  class DivertFilter final : public net::PacketFilter {
   public:
    DivertFilter(Hsm& hsm, net::Router& router);
    ~DivertFilter();

    net::FilterAction on_packet(const sim::Packet& p, int in_port) override;

    void add_dst(sim::Address dst) { dsts_.insert(dst); }
    void remove_dst(sim::Address dst) { dsts_.erase(dst); }
    bool empty() const { return dsts_.empty(); }
    void set_lie(int edge_id) { lie_edge_id_ = edge_id; }

   private:
    Hsm& hsm_;
    net::Router& router_;
    std::set<sim::Address> dsts_;
    int lie_edge_id_ = -1;
  };

  struct HsmSession {
    std::size_t epoch = 0;
    SessionWindow window;
    std::set<net::AsId> propagated_upstream;
    bool any_upstream_request = false;
    std::set<sim::NodeId> local_sessions;  // routers tracing intra-AS
    std::uint64_t packets = 0;
    std::uint64_t captures = 0;  // attack hosts cut off under this session
  };

  void install_divert(sim::Address dst);
  void remove_divert(sim::Address dst);
  // `cause_uid` is the uid of the diverted packet that triggered this step
  // (0 when the trigger was an aggregate observation); causal tracing only.
  void propagate_upstream(sim::Address dst, HsmSession& session,
                          net::AsId neighbor, std::uint64_t cause_uid = 0);
  HbpRouterAgent& agent(sim::NodeId router);
  void start_intra_as(sim::Address dst, HsmSession& session,
                      sim::NodeId router, int in_port,
                      std::uint64_t cause_uid = 0);

  HbpDefense& defense_;
  const topo::AsInfo& info_;
  // (edge router, port) -> cross link, for stamping and ingress lookup.
  std::map<std::pair<sim::NodeId, int>, const topo::CrossLink*> cross_by_port_;
  std::map<int, const topo::CrossLink*> cross_by_edge_id_;
  std::map<sim::Address, HsmSession> sessions_;
  std::map<sim::NodeId, std::unique_ptr<DivertFilter>> filters_;
  std::map<sim::NodeId, std::unique_ptr<HbpRouterAgent>> agents_;
  std::map<sim::NodeId, int> lies_;  // compromised edge routers (tests)
  std::uint64_t diverted_ = 0;
  std::uint64_t requests_received_ = 0;
  std::uint64_t cancels_received_ = 0;
};

}  // namespace hbp::core
