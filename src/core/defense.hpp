// Orchestrator of honeypot back-propagation (Section 5): wires the roaming
// server pool's honeypot windows to the HSM tree, owns per-server
// progressive state (Section 6), transports and authenticates inter-AS
// messages, bridges deployment gaps (Section 5.3), and records captures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/deployment.hpp"
#include "core/hsm.hpp"
#include "core/messages.hpp"
#include "core/progressive.hpp"
#include "honeypot/server_pool.hpp"
#include "net/control_plane.hpp"
#include "net/network.hpp"
#include "topo/as_map.hpp"
#include "util/function_ref.hpp"

namespace hbp::telemetry {
class Registry;
}

namespace hbp::core {

struct HbpParams {
  enum class IngressMode { kMarking, kTunneling };
  IngressMode ingress_mode = IngressMode::kMarking;

  // Honeypot packets within a window before a request is sent (false-
  // positive tolerance, Section 5.3).
  std::uint64_t activation_threshold = 1;

  bool progressive = true;
  int rho = 5;                         // rule-2 threshold (Section 6)
  sim::SimTime tau_estimate = sim::SimTime::millis(500);  // direct-send lead
  sim::SimTime report_grace = sim::SimTime::seconds(1.5); // reports settle

  bool authenticate = true;
  DeploymentPolicy deployment;
  util::Digest master_secret{};  // key-store master
};

struct CaptureEvent {
  sim::NodeId host = sim::kInvalidNode;
  sim::Address dst = 0;  // the honeypot whose session caught it
  sim::SimTime when = sim::SimTime::zero();
};

class HbpDefense {
 public:
  HbpDefense(sim::Simulator& simulator, net::Network& network,
             net::ControlPlane& control, honeypot::ServerPool& pool,
             const topo::AsMap& as_map, const HbpParams& params);
  ~HbpDefense();

  // Creates HSMs for deploying ASs and registers server-pool listeners.
  void start();

  // Non-owning: the listener callable must outlive the defense run.
  using CaptureFn = util::function_ref<void(const CaptureEvent&)>;
  void add_capture_listener(CaptureFn fn) { capture_listeners_.push_back(fn); }

  // --- accessors used by HSMs ---
  const HbpParams& params() const { return params_; }
  sim::Simulator& simulator() { return simulator_; }
  net::Network& network() { return network_; }
  net::ControlPlane& control() { return control_; }
  const topo::AsMap& as_map() const { return as_map_; }
  Hsm* hsm(net::AsId as);

  // Inter-AS propagation with gap bridging: delivers a request (or cancel)
  // from AS `from` to AS `to`; if `to` does not deploy, the message is
  // broadcast via routing options to the nearest deploying ASs upstream.
  // `trace_cause` is the uid of the packet that triggered this hop of the
  // wave (0 = unknown); it rides along for causal tracing only and never
  // enters the MAC.
  void propagate_request(net::AsId from, net::AsId to, sim::Address dst,
                         std::size_t epoch, const SessionWindow& window,
                         int extra_hops = 0, std::uint64_t trace_cause = 0);
  void propagate_cancel(net::AsId from, net::AsId to, sim::Address dst,
                        std::size_t epoch, int extra_hops = 0);

  // Progressive report from a stalled transit AS back to the server.
  void report_to_server(net::AsId from, sim::Address dst, std::size_t epoch);

  // A switch port (or router port) was closed on `host`.
  void on_capture(sim::NodeId host, sim::Address dst);

  // Raw entry points with MAC verification (tests inject forged messages).
  void deliver_request(const HoneypotRequest& m);
  void deliver_cancel(const HoneypotCancel& m);
  void deliver_report(const IntermediateReport& m);

  // --- statistics ---
  const std::vector<CaptureEvent>& captures() const { return captures_; }
  std::uint64_t activations() const { return activations_; }
  std::uint64_t false_activations() const { return false_activations_; }
  std::uint64_t forged_rejected() const { return forged_rejected_; }
  std::uint64_t bridged_messages() const { return bridged_; }
  const ProgressiveManager& progressive(int server) const {
    return *progressive_[static_cast<std::size_t>(server)];
  }

  // End-of-run snapshot: defense-wide counters ("core.defense.*") and
  // per-HSM request/cancel/divert counts ("core.hsm.<as>.*").
  void export_telemetry(telemetry::Registry& registry) const;

 private:
  struct ServerWindow {
    std::size_t epoch = 0;
    bool open = false;
    bool activated = false;
    std::uint64_t hits = 0;
    std::uint64_t attack_hits = 0;
    // Uid of the latest hit — the wave's trace id once activation fires.
    std::uint64_t last_hit_uid = 0;
  };

  void on_window_start(int server, std::size_t epoch);
  void on_window_end(int server, std::size_t epoch);
  void on_honeypot_hit(int server, const sim::Packet& p);
  void activate(int server);
  void schedule_direct_requests(int server);
  net::AsId home_as(int server) const;
  std::size_t next_honeypot_epoch(int server, std::size_t after) const;

  sim::Simulator& simulator_;
  net::Network& network_;
  net::ControlPlane& control_;
  honeypot::ServerPool& pool_;
  const topo::AsMap& as_map_;
  HbpParams params_;
  KeyStore keys_;

  std::map<net::AsId, std::unique_ptr<Hsm>> hsms_;
  std::vector<ServerWindow> windows_;                    // per server
  std::vector<std::unique_ptr<ProgressiveManager>> progressive_;  // per server
  // ASs sent a request for the current/upcoming window, per server/epoch.
  std::vector<std::map<std::size_t, std::set<net::AsId>>> requested_;

  std::vector<CaptureFn> capture_listeners_;
  std::vector<CaptureEvent> captures_;
  std::set<sim::NodeId> captured_hosts_;
  std::uint64_t activations_ = 0;
  std::uint64_t false_activations_ = 0;
  std::uint64_t forged_rejected_ = 0;
  std::uint64_t bridged_ = 0;
};

}  // namespace hbp::core
