// Experiment metrics: the client-throughput timeline of Fig. 8 and the
// capture bookkeeping behind Figs. 6/10/11.
//
// Both meters are backed by telemetry instruments registered on the
// simulator's registry, so scenario metrics and substrate metrics flow
// through one system and appear together in JSON run reports / CSV dumps:
//   scenario.goodput.bytes        time series (kSum, one bin per interval)
//   scenario.goodput.total_bytes  counter
//   scenario.capture.captured     counter (true attacker captures)
//   scenario.capture.false        counter (innocent hosts cut off)
//   scenario.capture.delay_ms     histogram (delay from attack start)
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "core/defense.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/instruments.hpp"

namespace hbp::scenario {

// Bins legitimate goodput delivered at the servers into fixed intervals and
// reports it as a fraction of a reference capacity (the bottleneck link) —
// exactly the y-axis of Figs. 8/10/11.
class ThroughputMeter {
 public:
  ThroughputMeter(sim::Simulator& simulator, double reference_bps,
                  sim::SimTime bin = sim::SimTime::seconds(1));

  // Wire as a ServerPool delivery listener.
  void on_delivery(int server, const sim::Packet& p);

  struct Point {
    double t_seconds;
    double fraction;  // of the reference capacity
  };
  std::vector<Point> timeline(double until_seconds) const;

  // Mean fraction over [t0, t1).
  double mean_fraction(double t0, double t1) const;

  std::uint64_t total_bytes() const { return total_bytes_.value(); }

 private:
  sim::Simulator& simulator_;
  double reference_bps_;
  sim::SimTime bin_;
  telemetry::TimeSeries& series_;
  telemetry::Counter& total_bytes_;
};

// Scores capture events against the ground-truth attacker set.
class CaptureRecorder {
 public:
  void set_attackers(std::set<sim::NodeId> attackers) {
    attackers_ = std::move(attackers);
  }

  // Optional: also publish capture counts and the capture-delay histogram
  // (delays measured from `attack_start_seconds`, in milliseconds) as
  // scenario.capture.* instruments.
  void attach(telemetry::Registry& registry, double attack_start_seconds);

  // Wire as an HbpDefense capture listener.
  void on_capture(const core::CaptureEvent& e);

  std::size_t attackers_total() const { return attackers_.size(); }
  std::size_t attackers_captured() const { return captured_attackers_; }
  std::size_t false_captures() const { return false_captures_; }
  double capture_fraction() const;

  // Capture delays measured from `attack_start`; empty if none captured.
  std::vector<double> capture_delays(double attack_start_seconds) const;
  double mean_capture_delay(double attack_start_seconds) const;
  double max_capture_delay(double attack_start_seconds) const;

  const std::vector<core::CaptureEvent>& events() const { return events_; }

 private:
  std::set<sim::NodeId> attackers_;
  std::vector<core::CaptureEvent> events_;
  std::size_t captured_attackers_ = 0;
  std::size_t false_captures_ = 0;

  double attack_start_seconds_ = 0.0;
  telemetry::Counter* captured_counter_ = nullptr;
  telemetry::Counter* false_counter_ = nullptr;
  telemetry::Log2Histogram* delay_ms_ = nullptr;
};

}  // namespace hbp::scenario
