#include "scenario/tree_experiment.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "honeypot/client.hpp"
#include "net/invariant_checker.hpp"
#include "net/network.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "traffic/follower.hpp"
#include "traffic/onoff.hpp"
#include "traffic/probe.hpp"
#include "traffic/spoof.hpp"
#include "transport/tcp.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hbp::scenario {

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kNoDefense: return "No Defense";
    case Scheme::kPushback: return "Pushback";
    case Scheme::kHbp: return "Honeypot Back-propagation";
  }
  return "?";
}

std::string to_string(AttackerPlacement p) {
  switch (p) {
    case AttackerPlacement::kClose: return "Close";
    case AttackerPlacement::kFar: return "Far";
    case AttackerPlacement::kEven: return "Evenly Distributed";
  }
  return "?";
}

TreeResult run_tree_experiment(const TreeExperimentConfig& config,
                               std::uint64_t seed) {
  HBP_ASSERT(config.n_clients + config.n_attackers <=
             static_cast<int>(config.tree.leaf_count));

  const auto wall_start = std::chrono::steady_clock::now();
  sim::Simulator simulator(config.scheduler);
  if (config.profile) simulator.enable_profiling();
  net::Network network(simulator);
  std::unique_ptr<trace::Tracer> tracer;
  if (!config.trace_path.empty()) {
    trace::TracerOptions trace_options;
    trace_options.flight_capacity = config.trace_flight;
    tracer = std::make_unique<trace::Tracer>(trace_options);
    tracer->attach(simulator, &network);
  }
  util::Rng topo_rng(util::derive_seed(seed, 1));
  util::Rng place_rng(util::derive_seed(seed, 2));
  util::Rng chain_rng(util::derive_seed(seed, 3));

  topo::Tree tree = topo::build_tree(network, topo_rng, config.tree);
  network.compute_routes();

  // --- attacker / client placement ---
  const std::size_t leaves = tree.leaf_hosts.size();
  std::vector<std::size_t> attacker_slots;
  switch (config.placement) {
    case AttackerPlacement::kClose:
      attacker_slots.assign(
          tree.leaves_by_distance.begin(),
          tree.leaves_by_distance.begin() + config.n_attackers);
      break;
    case AttackerPlacement::kFar:
      attacker_slots.assign(
          tree.leaves_by_distance.end() - config.n_attackers,
          tree.leaves_by_distance.end());
      break;
    case AttackerPlacement::kEven: {
      attacker_slots = place_rng.choose(
          leaves, static_cast<std::size_t>(config.n_attackers));
      break;
    }
  }
  std::vector<bool> is_attacker(leaves, false);
  for (const std::size_t i : attacker_slots) is_attacker[i] = true;

  std::vector<std::size_t> client_pool;
  for (std::size_t i = 0; i < leaves; ++i) {
    if (!is_attacker[i]) client_pool.push_back(i);
  }
  place_rng.shuffle(client_pool);
  client_pool.resize(static_cast<std::size_t>(config.n_clients));

  // --- bystander TCP downloads across the bottleneck ---
  std::vector<std::unique_ptr<transport::TcpSender>> tcp_senders;
  std::vector<std::unique_ptr<transport::TcpReceiver>> tcp_receivers;
  std::int64_t tcp_delivered_at_start = 0;
  std::int64_t tcp_delivered_at_end = 0;
  std::int64_t tcp_delivered_at_one = 0;
  if (config.tcp_downloads > 0) {
    std::vector<bool> used(leaves, false);
    for (const std::size_t i : attacker_slots) used[i] = true;
    for (const std::size_t i : client_pool) used[i] = true;
    net::LinkParams dl_link;
    dl_link.capacity_bps = config.tree.server_bps;
    dl_link.delay = config.tree.server_delay;
    dl_link.queue_bytes = config.tree.default_queue_bytes;
    int placed = 0;
    for (std::size_t leaf = 0; leaf < leaves && placed < config.tcp_downloads;
         ++leaf) {
      if (used[leaf]) continue;
      used[leaf] = true;
      // Download server behind the bottleneck, next to the pool.
      auto& dl = network.add_node<net::Host>("dl" + std::to_string(placed));
      network.connect(tree.gateway, dl.id(), dl_link);
      dl.set_address(network.assign_address(dl.id()));
      auto& receiver_host =
          static_cast<net::Host&>(network.node(tree.leaf_hosts[leaf]));
      tcp_receivers.push_back(
          std::make_unique<transport::TcpReceiver>(simulator, receiver_host));
      tcp_receivers.back()->attach();
      tcp_senders.push_back(
          std::make_unique<transport::TcpSender>(simulator, dl));
      const sim::Address receiver_addr = receiver_host.address();
      transport::TcpSender* sender = tcp_senders.back().get();
      simulator.at(sim::SimTime::zero(),
                   [sender, receiver_addr] { sender->connect(receiver_addr); });
      ++placed;
    }
    network.compute_routes();  // new hosts need routes

    auto total_delivered = [&tcp_receivers] {
      std::int64_t total = 0;
      for (const auto& r : tcp_receivers) total += r->total_bytes_delivered();
      return total;
    };
    simulator.at(sim::SimTime::seconds(1.0),
                 [&, total_delivered] { tcp_delivered_at_one = total_delivered(); });
    simulator.at(sim::SimTime::seconds(config.attack_start),
                 [&, total_delivered] { tcp_delivered_at_start = total_delivered(); });
    simulator.at(sim::SimTime::seconds(config.attack_end),
                 [&, total_delivered] { tcp_delivered_at_end = total_delivered(); });
  }


  // --- roaming pool ---
  util::Digest tail{};
  for (auto& b : tail) b = static_cast<std::uint8_t>(chain_rng.below(256));
  auto chain = std::make_shared<honeypot::HashChain>(tail, 4096);

  const int n_servers = config.tree.server_count;
  const int k = config.scheme == Scheme::kHbp ? config.k_active : n_servers;
  honeypot::RoamingSchedule schedule(chain, n_servers, k,
                                     sim::SimTime::seconds(config.epoch_seconds));
  honeypot::CheckpointStore store;
  honeypot::ServerPoolParams pool_params;
  pool_params.delta = config.delta;
  pool_params.gamma = config.gamma;
  honeypot::ServerPool pool(simulator, network, schedule, tree.servers,
                            tree.server_addrs, store, pool_params);

  honeypot::SubscriptionService subscription(chain, 64);

  // --- metrics ---
  ThroughputMeter meter(simulator, config.tree.bottleneck_bps);
  // Named (not temporaries): pool/defense keep non-owning refs for the run.
  auto on_delivery = [&meter](int server, const sim::Packet& p) {
    meter.on_delivery(server, p);
  };
  pool.add_delivery_listener(on_delivery);
  CaptureRecorder recorder;
  recorder.attach(simulator.telemetry(), config.attack_start);
  {
    std::set<sim::NodeId> attacker_nodes;
    for (const std::size_t i : attacker_slots) {
      attacker_nodes.insert(tree.leaf_hosts[i]);
    }
    recorder.set_attackers(std::move(attacker_nodes));
  }

  // --- defense ---
  net::ControlPlane::Params cp_params = config.control;
  cp_params.seed = util::derive_seed(seed, 4);
  net::ControlPlane control(simulator, cp_params);

  std::unique_ptr<pushback::PushbackSystem> pushback_system;
  std::unique_ptr<core::HbpDefense> defense;

  if (config.scheme == Scheme::kPushback) {
    pushback_system = std::make_unique<pushback::PushbackSystem>(
        simulator, network, control, config.pb);
    std::vector<sim::NodeId> routers = tree.interior_routers;
    routers.push_back(tree.gateway);
    routers.insert(routers.end(), tree.access_routers.begin(),
                   tree.access_routers.end());
    if (config.pb_weighted_by_hosts) {
      // Level-k flavour: weight each router port by the number of leaf
      // hosts reachable upstream through it.
      for (const sim::NodeId r : routers) {
        const net::Node& node = network.node(r);
        std::vector<double> weights(node.port_count(), 1.0);
        for (std::size_t port = 0; port < node.port_count(); ++port) {
          double hosts = 0;
          for (std::size_t leaf = 0; leaf < leaves; ++leaf) {
            if (network.route_port(r, tree.leaf_addrs[leaf]) ==
                static_cast<int>(port)) {
              ++hosts;
            }
          }
          weights[port] = std::max(1.0, hosts);
        }
        pushback_system->set_port_weights(r, std::move(weights));
      }
    }
    pushback_system->install(routers);
  } else if (config.scheme == Scheme::kHbp) {
    core::HbpParams hbp = config.hbp;
    if (config.hbp_deploy_fraction < 1.0) {
      util::Rng deploy_rng(util::derive_seed(seed, 5));
      std::set<net::AsId> always;
      always.insert(tree.server_as);
      for (int s = 0; s < n_servers; ++s) {
        always.insert(network.node(tree.servers[static_cast<std::size_t>(s)]).as_id());
      }
      hbp.deployment = core::DeploymentPolicy::random_fraction(
          config.hbp_deploy_fraction, tree.as_map.count(), deploy_rng, always);
    }
    defense = std::make_unique<core::HbpDefense>(simulator, network, control,
                                                 pool, tree.as_map, hbp);
    defense->start();
    defense->add_capture_listener(
        core::HbpDefense::CaptureFn::bind<&CaptureRecorder::on_capture>(
            recorder));
  }

  pool.start();

  // --- legitimate clients ---
  std::vector<std::unique_ptr<util::Rng>> client_rngs;
  std::vector<std::unique_ptr<honeypot::RoamingClient>> clients;
  const double per_client_bps =
      config.legit_load * config.tree.bottleneck_bps / config.n_clients;
  for (std::size_t c = 0; c < client_pool.size(); ++c) {
    const std::size_t leaf = client_pool[c];
    auto& host = static_cast<net::Host&>(network.node(tree.leaf_hosts[leaf]));
    client_rngs.push_back(
        std::make_unique<util::Rng>(util::derive_seed(seed, 100 + c)));
    honeypot::RoamingClientParams params;
    params.cbr.rate_bps = per_client_bps;
    params.cbr.packet_size = config.packet_size;
    params.cbr.start = sim::SimTime::zero();
    params.cbr.stop = sim::SimTime::seconds(config.sim_seconds);
    params.max_clock_skew = config.delta;
    clients.push_back(std::make_unique<honeypot::RoamingClient>(
        simulator, host, *client_rngs.back(), schedule, subscription, pool,
        params));
    clients.back()->start();
  }

  // --- attackers ---
  std::vector<std::unique_ptr<util::Rng>> attacker_rngs;
  std::vector<std::unique_ptr<traffic::CbrSource>> attackers;
  std::vector<std::unique_ptr<traffic::OnOffShaper>> shapers;
  std::vector<std::unique_ptr<traffic::FollowerShaper>> followers;
  // Stored targets for the pool's non-owning window-listener refs (follower
  // attacks only); reserved so push_back never relocates them.
  struct FollowStart {
    traffic::FollowerShaper* shaper;
    int target;
    void operator()(int server, std::size_t) const {
      if (server == target) shaper->on_target_honeypot_start();
    }
  };
  struct FollowEnd {
    traffic::FollowerShaper* shaper;
    int target;
    void operator()(int server, std::size_t) const {
      if (server == target) shaper->on_target_honeypot_end();
    }
  };
  std::vector<FollowStart> follow_starts;
  std::vector<FollowEnd> follow_ends;
  follow_starts.reserve(attacker_slots.size());
  follow_ends.reserve(attacker_slots.size());
  for (std::size_t a = 0; a < attacker_slots.size(); ++a) {
    const std::size_t leaf = attacker_slots[a];
    auto& host = static_cast<net::Host&>(network.node(tree.leaf_hosts[leaf]));
    attacker_rngs.push_back(
        std::make_unique<util::Rng>(util::derive_seed(seed, 5000 + a)));
    util::Rng& rng = *attacker_rngs.back();

    // "Each attack host picks a server among the five servers uniformly at
    // random and keeps on attacking it."
    const sim::Address target =
        tree.server_addrs[rng.below(tree.server_addrs.size())];
    const int target_index = pool.index_of(target);

    traffic::CbrParams params;
    params.rate_bps = config.attacker_rate_bps;
    params.packet_size = config.packet_size;
    params.start = sim::SimTime::seconds(config.attack_start);
    params.stop = sim::SimTime::seconds(config.attack_end);
    params.is_attack = true;
    attackers.push_back(std::make_unique<traffic::CbrSource>(
        simulator, host, rng, params, [target] { return target; },
        traffic::random_spoof()));

    if (config.onoff_t_on) {
      shapers.push_back(std::make_unique<traffic::OnOffShaper>(
          simulator, *attackers.back(),
          sim::SimTime::seconds(*config.onoff_t_on),
          sim::SimTime::seconds(config.onoff_t_off), params.start));
      shapers.back()->start();
      attackers.back()->start();
    } else if (config.follower_delay) {
      followers.push_back(std::make_unique<traffic::FollowerShaper>(
          simulator, *attackers.back(),
          sim::SimTime::seconds(*config.follower_delay)));
      traffic::FollowerShaper* shaper = followers.back().get();
      follow_starts.push_back(FollowStart{shaper, target_index});
      follow_ends.push_back(FollowEnd{shaper, target_index});
      pool.add_honeypot_window_listener(follow_starts.back(),
                                        follow_ends.back());
      attackers.back()->start();
    } else {
      attackers.back()->start();
    }
  }

  // --- benign background probes ---
  std::vector<std::unique_ptr<util::Rng>> probe_rngs;
  std::vector<std::unique_ptr<traffic::ProbeSource>> probes;
  if (config.benign_probe_rate > 0.0) {
    std::vector<bool> used(leaves, false);
    for (const std::size_t i : attacker_slots) used[i] = true;
    for (const std::size_t i : client_pool) used[i] = true;
    int placed = 0;
    for (std::size_t leaf = 0; leaf < leaves && placed < config.benign_probers;
         ++leaf) {
      if (used[leaf]) continue;
      auto& host = static_cast<net::Host&>(network.node(tree.leaf_hosts[leaf]));
      probe_rngs.push_back(std::make_unique<util::Rng>(
          util::derive_seed(seed, 9000 + static_cast<std::uint64_t>(placed))));
      probes.push_back(std::make_unique<traffic::ProbeSource>(
          simulator, host, *probe_rngs.back(), tree.server_addrs,
          config.benign_probe_rate, sim::SimTime::zero(),
          sim::SimTime::seconds(config.sim_seconds)));
      probes.back()->start();
      ++placed;
    }
  }

  simulator.run_until(sim::SimTime::seconds(config.sim_seconds));

  // --- results ---
  TreeResult result;
  result.mean_client_throughput =
      meter.mean_fraction(config.attack_start, config.attack_end);
  result.baseline_throughput =
      config.attack_start > 1.0 ? meter.mean_fraction(1.0, config.attack_start)
                                : 0.0;
  result.timeline = meter.timeline(config.sim_seconds);
  result.attackers = attacker_slots.size();
  result.captured = recorder.attackers_captured();
  result.false_captures = recorder.false_captures();
  result.mean_capture_delay = recorder.mean_capture_delay(config.attack_start);
  result.max_capture_delay = recorder.max_capture_delay(config.attack_start);
  if (config.tcp_downloads > 0 && config.attack_start > 1.0) {
    result.tcp_goodput_before =
        static_cast<double>(tcp_delivered_at_start - tcp_delivered_at_one) *
        8.0 / (config.attack_start - 1.0);
    result.tcp_goodput_during =
        static_cast<double>(tcp_delivered_at_end - tcp_delivered_at_start) *
        8.0 / (config.attack_end - config.attack_start);
  }
  result.control_messages = control.total_messages();
  if (defense) {
    result.hbp_activations = defense->activations();
    result.hbp_false_activations = defense->false_activations();
  }
  if (pushback_system) {
    result.pushback_requests = pushback_system->requests_sent();
    result.pushback_limited_drops = pushback_system->total_limited_drops();
  }
  result.events_executed = simulator.events_executed();
  result.trace_digest = simulator.trace().value();

  // End-of-run telemetry snapshots from every subsystem, plus profiler
  // dispatch counts (deterministic — the wall times stay in result.perf).
  network.export_telemetry(simulator.telemetry());
  control.export_telemetry(simulator.telemetry());
  if (defense) defense->export_telemetry(simulator.telemetry());
  if (pushback_system) pushback_system->export_telemetry(simulator.telemetry());
  if (tracer) tracer->export_counters(simulator.telemetry());
  if (const telemetry::LoopProfiler* prof = simulator.profiler()) {
    for (const auto& ts : prof->by_type()) {
      simulator.telemetry()
          .counter(std::string("sim.dispatch.") + ts.label)
          .add(ts.count);
    }
    result.perf.peak_queue_depth = prof->peak_queue_depth();
    result.perf.event_types = prof->by_type();
  }
  result.telemetry = simulator.telemetry_ptr();
  result.perf.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.perf.events_executed = simulator.events_executed();
  result.perf.peak_rss_bytes = telemetry::peak_rss_bytes();
  result.perf.sim_seconds = config.sim_seconds;

  net::InvariantChecker audit(network);
  audit.expect_ok();
  if (tracer) {
    HBP_ASSERT_MSG(trace::write_trace_file(*tracer, config.trace_path),
                   "could not write the trace file");
  }
  return result;
}

TreeSummary run_replicated(const TreeExperimentConfig& config, int seeds,
                           std::uint64_t base_seed, util::ThreadPool* pool) {
  // Per-seed slots merged serially in seed order: the summary must be
  // bit-identical whether replications run pooled or inline (floating-point
  // accumulation order would otherwise depend on thread scheduling).
  std::vector<TreeResult> results(static_cast<std::size_t>(seeds));
  auto one = [&](std::size_t i) {
    results[i] =
        run_tree_experiment(config, base_seed + static_cast<std::uint64_t>(i));
  };
  if (pool != nullptr) {
    pool->parallel_for(static_cast<std::size_t>(seeds), one);
  } else {
    for (int i = 0; i < seeds; ++i) one(static_cast<std::size_t>(i));
  }

  TreeSummary summary;
  summary.metrics = std::make_shared<telemetry::Registry>();
  for (const TreeResult& r : results) {
    summary.events_executed += r.events_executed;
    summary.sim_seconds += r.perf.sim_seconds;
    if (r.telemetry) summary.metrics->merge(*r.telemetry);
    summary.throughput.add(r.mean_client_throughput);
    if (r.mean_capture_delay >= 0) summary.capture_delay.add(r.mean_capture_delay);
    summary.capture_fraction.add(
        r.attackers > 0
            ? static_cast<double>(r.captured) / static_cast<double>(r.attackers)
            : 0.0);
    summary.false_captures.add(static_cast<double>(r.false_captures));
  }
  return summary;
}

}  // namespace hbp::scenario
