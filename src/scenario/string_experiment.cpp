#include "scenario/string_experiment.hpp"

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/defense.hpp"
#include "honeypot/schedule.hpp"
#include "net/control_plane.hpp"
#include "net/invariant_checker.hpp"
#include "net/network.hpp"
#include "topo/string_topo.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "traffic/cbr.hpp"
#include "traffic/follower.hpp"
#include "traffic/onoff.hpp"
#include "traffic/spoof.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hbp::scenario {

StringResult run_string_experiment(const StringExperimentConfig& config,
                                   std::uint64_t seed) {
  const auto wall_start = std::chrono::steady_clock::now();
  sim::Simulator simulator(config.scheduler);
  if (config.profile) simulator.enable_profiling();
  net::Network network(simulator);
  std::unique_ptr<trace::Tracer> tracer;
  if (!config.trace_path.empty()) {
    trace::TracerOptions trace_options;
    trace_options.flight_capacity = config.trace_flight;
    tracer = std::make_unique<trace::Tracer>(trace_options);
    tracer->attach(simulator, &network);
  }

  topo::StringParams sp;
  sp.hops = config.h;
  topo::StringTopo topo = topo::build_string(network, sp);
  network.compute_routes();

  util::Rng chain_rng(util::derive_seed(seed, 1));
  util::Digest tail{};
  for (auto& b : tail) b = static_cast<std::uint8_t>(chain_rng.below(256));
  auto chain = std::make_shared<honeypot::HashChain>(tail, 8192);
  honeypot::BernoulliSchedule schedule(chain, config.p,
                                       sim::SimTime::seconds(config.m));

  honeypot::CheckpointStore store;
  honeypot::ServerPoolParams pool_params;
  pool_params.delta = sim::SimTime::millis(50);
  pool_params.gamma = sim::SimTime::millis(25);
  pool_params.last_epoch =
      static_cast<std::size_t>(config.horizon_seconds / config.m) + 2;
  honeypot::ServerPool pool(simulator, network, schedule, {topo.server},
                            {topo.server_addr}, store, pool_params);

  net::ControlPlane::Params cp;
  // One back-propagation hop = a divert report to the HSM plus a request to
  // the upstream AS, i.e. two control-plane messages; tau is the full
  // one-hop session-propagation time of the Section 7 analysis.
  cp.per_hop_latency = sim::SimTime::seconds(config.tau / 2.0);
  cp.jitter_fraction = 0.05;
  cp.loss_probability = config.control_loss_probability;
  cp.seed = util::derive_seed(seed, 2);
  net::ControlPlane control(simulator, cp);

  core::HbpParams hbp;
  hbp.progressive = config.progressive;
  hbp.rho = config.rho;
  hbp.tau_estimate = sim::SimTime::seconds(config.tau);
  core::HbpDefense defense(simulator, network, control, pool, topo.as_map, hbp);
  defense.start();

  StringResult result;
  // Named (not a temporary): the defense keeps a non-owning ref for the run.
  auto on_capture = [&](const core::CaptureEvent& e) {
    if (e.host == topo.attacker_host && !result.captured) {
      result.captured = true;
      result.capture_seconds = e.when.to_seconds();
    }
  };
  defense.add_capture_listener(on_capture);

  pool.start();

  util::Rng attacker_rng(util::derive_seed(seed, 3));
  auto& attacker_host =
      static_cast<net::Host&>(network.node(topo.attacker_host));
  traffic::CbrParams cbr;
  cbr.rate_bps = config.attacker_rate_bps;
  cbr.packet_size = config.packet_size;
  cbr.start = sim::SimTime::zero();
  cbr.is_attack = true;
  traffic::CbrSource attacker(simulator, attacker_host, attacker_rng, cbr,
                              [addr = topo.server_addr] { return addr; },
                              traffic::random_spoof());

  std::unique_ptr<traffic::OnOffShaper> shaper;
  std::unique_ptr<traffic::FollowerShaper> follower;
  // Named (not temporaries): the pool keeps non-owning refs for the run.
  auto on_follow_start = [&follower](int, std::size_t) {
    follower->on_target_honeypot_start();
  };
  auto on_follow_end = [&follower](int, std::size_t) {
    follower->on_target_honeypot_end();
  };
  if (config.onoff_t_on) {
    shaper = std::make_unique<traffic::OnOffShaper>(
        simulator, attacker, sim::SimTime::seconds(*config.onoff_t_on),
        sim::SimTime::seconds(config.onoff_t_off));
    shaper->start();
  } else if (config.follower_delay) {
    follower = std::make_unique<traffic::FollowerShaper>(
        simulator, attacker, sim::SimTime::seconds(*config.follower_delay));
    pool.add_honeypot_window_listener(on_follow_start, on_follow_end);
  }
  attacker.start();

  // Run until captured or the horizon; step epoch by epoch so we can stop
  // early without simulating the full horizon.
  const sim::SimTime horizon = sim::SimTime::seconds(config.horizon_seconds);
  sim::SimTime t = sim::SimTime::zero();
  const sim::SimTime step = sim::SimTime::seconds(config.m);
  while (!result.captured && t < horizon) {
    t = t + step;
    simulator.run_until(t < horizon ? t : horizon);
  }

  net::InvariantChecker audit(network);
  audit.expect_ok();

  result.control_messages = control.total_messages();
  result.reports = control.messages_sent("intermediate_report");
  result.trace_digest = simulator.trace().value();
  result.events_executed = simulator.events_executed();

  network.export_telemetry(simulator.telemetry());
  control.export_telemetry(simulator.telemetry());
  defense.export_telemetry(simulator.telemetry());
  if (tracer) tracer->export_counters(simulator.telemetry());
  if (const telemetry::LoopProfiler* prof = simulator.profiler()) {
    for (const auto& ts : prof->by_type()) {
      simulator.telemetry()
          .counter(std::string("sim.dispatch.") + ts.label)
          .add(ts.count);
    }
    result.perf.peak_queue_depth = prof->peak_queue_depth();
    result.perf.event_types = prof->by_type();
  }
  result.telemetry = simulator.telemetry_ptr();
  result.perf.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.perf.events_executed = simulator.events_executed();
  result.perf.peak_rss_bytes = telemetry::peak_rss_bytes();
  result.perf.sim_seconds = simulator.now().to_seconds();
  if (tracer) {
    HBP_ASSERT_MSG(trace::write_trace_file(*tracer, config.trace_path),
                   "could not write the trace file");
  }
  return result;
}

StringSummary run_string_replicated(const StringExperimentConfig& config,
                                    int runs, std::uint64_t base_seed,
                                    util::ThreadPool* pool) {
  // Replications land in a per-seed slot and are merged serially in seed
  // order afterwards, so the summary is bit-identical whether the runs
  // execute on a thread pool or inline (floating-point accumulation is not
  // commutative; merge order must not depend on thread scheduling).
  std::vector<StringResult> results(static_cast<std::size_t>(runs));
  auto one = [&](std::size_t i) {
    results[i] =
        run_string_experiment(config, base_seed + static_cast<std::uint64_t>(i));
  };
  if (pool != nullptr) {
    pool->parallel_for(static_cast<std::size_t>(runs), one);
  } else {
    for (int i = 0; i < runs; ++i) one(static_cast<std::size_t>(i));
  }

  StringSummary summary;
  summary.runs = runs;
  summary.metrics = std::make_shared<telemetry::Registry>();
  for (const StringResult& r : results) {
    summary.events_executed += r.events_executed;
    summary.sim_seconds += r.perf.sim_seconds;
    if (r.telemetry) summary.metrics->merge(*r.telemetry);
    if (r.captured) {
      ++summary.captured;
      summary.capture_time.add(r.capture_seconds);
    }
  }
  return summary;
}

}  // namespace hbp::scenario
