// The full Section-8 simulation scenario: tree topology, roaming server
// pool, legitimate clients, spoofing attackers, and one of three defenses
// (none / Pushback / honeypot back-propagation).
//
// For Pushback and no-defense runs "legitimate traffic is uniformly
// distributed over all five servers" (Section 8.3): we express that by
// running the roaming schedule with k = N (all servers always active), so
// clients spread uniformly and no honeypot window ever opens.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/defense.hpp"
#include "net/control_plane.hpp"
#include "pushback/agent.hpp"
#include "scenario/metrics.hpp"
#include "telemetry/report.hpp"
#include "topo/tree.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace hbp::scenario {

enum class Scheme { kNoDefense, kPushback, kHbp };
enum class AttackerPlacement { kClose, kFar, kEven };

std::string to_string(Scheme s);
std::string to_string(AttackerPlacement p);

struct TreeExperimentConfig {
  Scheme scheme = Scheme::kHbp;
  topo::TreeParams tree;

  // Roaming pool (Fig. 9 parameters).
  int k_active = 3;  // of tree.server_count
  double epoch_seconds = 10.0;
  sim::SimTime delta = sim::SimTime::millis(100);
  // γ must bound the real client->server delay including queueing (up to
  // ~15 hops x 10 ms plus a full bottleneck queue of ~50 ms).
  sim::SimTime gamma = sim::SimTime::millis(400);

  // Legitimate load: n_clients sharing ~legit_load of the bottleneck.
  int n_clients = 75;
  double legit_load = 0.9;

  // Attack.
  int n_attackers = 25;
  double attacker_rate_bps = 1.0e6;
  AttackerPlacement placement = AttackerPlacement::kEven;
  double attack_start = 5.0;
  double attack_end = 95.0;
  std::optional<double> onoff_t_on;   // on-off attack when set
  double onoff_t_off = 0.0;
  std::optional<double> follower_delay;  // follower attack when set

  double sim_seconds = 100.0;
  int packet_size = 1000;

  // Benign background probes (Section 5.3 false-positive study): when > 0,
  // `benign_probers` unused leaf hosts send Poisson probes at this rate
  // (probes/s each) to random servers for the whole run.
  double benign_probe_rate = 0.0;
  int benign_probers = 5;

  // TCP downloads (Section 3 damage model): bulk TCP transfers from
  // bystander download servers behind the bottleneck to unused leaf hosts.
  // Their ACKs cross the attacked direction of the bottleneck — "if TCP
  // ACK packets from clients to servers get dropped due to the attack, the
  // throughput of TCP flows is degraded."
  int tcp_downloads = 0;

  // Event-loop profiling (per-label dispatch counts and wall time, peak
  // queue depth).  Purely observational: enabling it never changes the
  // trace digest.
  bool profile = false;

  // Causal tracing (src/trace): when non-empty, every packet-lifecycle and
  // HBP/pushback control-plane span event is recorded and exported to this
  // path after the run (".csv" => long-format CSV, anything else => Chrome
  // trace-event / Perfetto JSON).  Observational like profiling: the trace
  // digest is bit-identical with tracing on or off.
  std::string trace_path;
  // Flight-recorder depth: the last N trace events kept for the invariant
  // checker's failure diagnostic.
  std::size_t trace_flight = 256;

  // Pending-event-set backend; both realise the same (time, seq) total
  // order, so the trace digest is identical under either.
  sim::SchedulerKind scheduler = sim::SchedulerKind::kBinaryHeap;

  // Defense knobs.
  core::HbpParams hbp;
  double hbp_deploy_fraction = 1.0;  // <1 => random partial deployment
  pushback::PushbackParams pb;
  bool pb_weighted_by_hosts = false;  // Level-k max-min ablation
  net::ControlPlane::Params control;
};

struct TreeResult {
  double mean_client_throughput = 0.0;  // fraction of bottleneck, attack window
  double baseline_throughput = 0.0;     // before the attack
  std::vector<ThroughputMeter::Point> timeline;

  std::size_t attackers = 0;
  std::size_t captured = 0;
  std::size_t false_captures = 0;
  double mean_capture_delay = -1.0;  // from attack start; -1 if none
  double max_capture_delay = -1.0;

  // TCP download goodput (bits/s) before and during the attack window
  // (zero when tcp_downloads == 0).
  double tcp_goodput_before = 0.0;
  double tcp_goodput_during = 0.0;

  std::uint64_t control_messages = 0;
  std::uint64_t hbp_activations = 0;
  std::uint64_t hbp_false_activations = 0;
  std::uint64_t pushback_requests = 0;
  std::uint64_t pushback_limited_drops = 0;
  std::uint64_t events_executed = 0;
  // Trace-digest fingerprint of the run (see sim/trace_digest.hpp); pinned
  // by the golden regression tests.
  std::uint64_t trace_digest = 0;

  // Full instrument tree of the run (scenario.* metrics plus net/pushback/
  // core snapshots); outlives the simulator.  Feed to render_run_report().
  std::shared_ptr<const telemetry::Registry> telemetry;
  // Host-dependent measurements (wall time, RSS, profiler stats when
  // config.profile was set).  Everything here is excluded from the
  // deterministic part of exported reports.
  telemetry::PerfStats perf;
};

TreeResult run_tree_experiment(const TreeExperimentConfig& config,
                               std::uint64_t seed);

// Multi-seed replication (optionally parallel across a pool).
struct TreeSummary {
  util::RunningStats throughput;
  util::RunningStats capture_delay;
  util::RunningStats capture_fraction;
  util::RunningStats false_captures;

  // Totals over all replications (bench perf records).
  std::uint64_t events_executed = 0;
  double sim_seconds = 0.0;
  // Instrument trees of all replications merged in seed order.
  std::shared_ptr<telemetry::Registry> metrics;
};
TreeSummary run_replicated(const TreeExperimentConfig& config, int seeds,
                           std::uint64_t base_seed,
                           util::ThreadPool* pool = nullptr);

}  // namespace hbp::scenario
