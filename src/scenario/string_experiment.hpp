// Model-validation scenario (Section 8.2): a string topology with one
// server and one attacker h AS-hops away; measures the time from attack
// start to switch-port shutoff, to be compared with Eqs. (3)-(11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/event_queue.hpp"
#include "telemetry/report.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace hbp::scenario {

struct StringExperimentConfig {
  double m = 10.0;           // epoch length (s)
  double p = 0.3;            // honeypot probability per epoch
  int h = 10;                // chain routers / back-propagation AS hops
  double attacker_rate_bps = 0.1e6;
  int packet_size = 1000;
  double tau = 0.5;          // control-plane per-hop latency (s)
  bool progressive = false;  // basic scheme by default (as in Fig. 6)
  int rho = 5;
  std::optional<double> onoff_t_on;  // optional on-off attack
  double onoff_t_off = 0.0;
  std::optional<double> follower_delay;  // optional follower attack
  double control_loss_probability = 0.0;  // lossy control plane
  double horizon_seconds = 2000.0;   // give up after this long
  bool profile = false;              // event-loop profiling (observational)
  // Pending-event-set backend; both realise the same (time, seq) total
  // order, so the trace digest is identical under either.
  sim::SchedulerKind scheduler = sim::SchedulerKind::kBinaryHeap;
  // Causal tracing (src/trace): export every span event here after the run
  // (".csv" => CSV, else Chrome/Perfetto JSON).  Observational — digests
  // are bit-identical with tracing on or off.
  std::string trace_path;
  std::size_t trace_flight = 256;  // flight-recorder depth (last N events)
};

struct StringResult {
  bool captured = false;
  double capture_seconds = -1.0;  // from attack start (t = 0)
  std::uint64_t control_messages = 0;
  std::uint64_t reports = 0;      // progressive intermediate reports

  // Audit trail: the run's trace-digest fingerprint and event count (see
  // sim/trace_digest.hpp).  Same config + same seed must reproduce both
  // bit-identically; the golden regression tests pin them.
  std::uint64_t trace_digest = 0;
  std::uint64_t events_executed = 0;

  // Instrument tree + host-dependent measurements (see TreeResult).
  std::shared_ptr<const telemetry::Registry> telemetry;
  telemetry::PerfStats perf;
};

StringResult run_string_experiment(const StringExperimentConfig& config,
                                   std::uint64_t seed);

// Mean capture time over `runs` seeds (only counting captured runs; the
// returned stats include the capture fraction).
struct StringSummary {
  util::RunningStats capture_time;
  int runs = 0;
  int captured = 0;

  // Totals over all runs (bench perf records).
  std::uint64_t events_executed = 0;
  double sim_seconds = 0.0;
  std::shared_ptr<telemetry::Registry> metrics;
};
StringSummary run_string_replicated(const StringExperimentConfig& config,
                                    int runs, std::uint64_t base_seed,
                                    util::ThreadPool* pool = nullptr);

}  // namespace hbp::scenario
