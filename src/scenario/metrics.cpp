#include "scenario/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hbp::scenario {

ThroughputMeter::ThroughputMeter(sim::Simulator& simulator,
                                 double reference_bps, sim::SimTime bin)
    : simulator_(simulator), reference_bps_(reference_bps), bin_(bin) {
  HBP_ASSERT(reference_bps > 0);
  HBP_ASSERT(bin > sim::SimTime::zero());
}

void ThroughputMeter::on_delivery(int server, const sim::Packet& p) {
  (void)server;
  if (p.is_attack) return;
  if (p.type != sim::PacketType::kData && p.type != sim::PacketType::kRequest) {
    return;
  }
  const auto bin =
      static_cast<std::size_t>(simulator_.now().nanos() / bin_.nanos());
  if (bytes_per_bin_.size() <= bin) bytes_per_bin_.resize(bin + 1, 0);
  bytes_per_bin_[bin] += static_cast<std::uint64_t>(p.size_bytes);
  total_bytes_ += static_cast<std::uint64_t>(p.size_bytes);
}

std::vector<ThroughputMeter::Point> ThroughputMeter::timeline(
    double until_seconds) const {
  std::vector<Point> out;
  const double bin_s = bin_.to_seconds();
  const auto bins = static_cast<std::size_t>(until_seconds / bin_s);
  out.reserve(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double bytes =
        b < bytes_per_bin_.size() ? static_cast<double>(bytes_per_bin_[b]) : 0.0;
    out.push_back(Point{static_cast<double>(b) * bin_s,
                        bytes * 8.0 / bin_s / reference_bps_});
  }
  return out;
}

double ThroughputMeter::mean_fraction(double t0, double t1) const {
  HBP_ASSERT(t1 > t0);
  const double bin_s = bin_.to_seconds();
  const auto b0 = static_cast<std::size_t>(t0 / bin_s);
  const auto b1 = static_cast<std::size_t>(t1 / bin_s);
  double bytes = 0.0;
  for (std::size_t b = b0; b < b1; ++b) {
    if (b < bytes_per_bin_.size()) bytes += static_cast<double>(bytes_per_bin_[b]);
  }
  return bytes * 8.0 / (t1 - t0) / reference_bps_;
}

void CaptureRecorder::on_capture(const core::CaptureEvent& e) {
  events_.push_back(e);
  if (attackers_.contains(e.host)) {
    ++captured_attackers_;
  } else {
    ++false_captures_;
  }
}

double CaptureRecorder::capture_fraction() const {
  if (attackers_.empty()) return 0.0;
  return static_cast<double>(captured_attackers_) /
         static_cast<double>(attackers_.size());
}

std::vector<double> CaptureRecorder::capture_delays(
    double attack_start_seconds) const {
  std::vector<double> out;
  for (const auto& e : events_) {
    if (!attackers_.contains(e.host)) continue;
    out.push_back(e.when.to_seconds() - attack_start_seconds);
  }
  return out;
}

double CaptureRecorder::mean_capture_delay(double attack_start_seconds) const {
  const auto delays = capture_delays(attack_start_seconds);
  if (delays.empty()) return -1.0;
  double s = 0.0;
  for (double d : delays) s += d;
  return s / static_cast<double>(delays.size());
}

double CaptureRecorder::max_capture_delay(double attack_start_seconds) const {
  const auto delays = capture_delays(attack_start_seconds);
  if (delays.empty()) return -1.0;
  return *std::max_element(delays.begin(), delays.end());
}

}  // namespace hbp::scenario
