#include "scenario/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace hbp::scenario {

ThroughputMeter::ThroughputMeter(sim::Simulator& simulator,
                                 double reference_bps, sim::SimTime bin)
    : simulator_(simulator),
      reference_bps_(reference_bps),
      bin_(bin),
      series_(simulator.telemetry().time_series(
          "scenario.goodput.bytes", bin, telemetry::TimeSeries::Mode::kSum)),
      total_bytes_(simulator.telemetry().counter("scenario.goodput.total_bytes")) {
  HBP_ASSERT(reference_bps > 0);
  HBP_ASSERT(bin > sim::SimTime::zero());
}

void ThroughputMeter::on_delivery(int server, const sim::Packet& p) {
  (void)server;
  if (p.is_attack) return;
  if (p.type != sim::PacketType::kData && p.type != sim::PacketType::kRequest) {
    return;
  }
  series_.record(simulator_.now(), static_cast<double>(p.size_bytes));
  total_bytes_.add(static_cast<std::uint64_t>(p.size_bytes));
}

std::vector<ThroughputMeter::Point> ThroughputMeter::timeline(
    double until_seconds) const {
  std::vector<Point> out;
  const double bin_s = bin_.to_seconds();
  const auto bins = static_cast<std::size_t>(until_seconds / bin_s);
  out.reserve(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out.push_back(Point{static_cast<double>(b) * bin_s,
                        series_.bin_value(b) * 8.0 / bin_s / reference_bps_});
  }
  return out;
}

double ThroughputMeter::mean_fraction(double t0, double t1) const {
  HBP_ASSERT(t1 > t0);
  const double bin_s = bin_.to_seconds();
  const auto b0 = static_cast<std::size_t>(t0 / bin_s);
  const auto b1 = static_cast<std::size_t>(t1 / bin_s);
  double bytes = 0.0;
  for (std::size_t b = b0; b < b1; ++b) bytes += series_.bin_value(b);
  return bytes * 8.0 / (t1 - t0) / reference_bps_;
}

void CaptureRecorder::attach(telemetry::Registry& registry,
                             double attack_start_seconds) {
  attack_start_seconds_ = attack_start_seconds;
  captured_counter_ = &registry.counter("scenario.capture.captured");
  false_counter_ = &registry.counter("scenario.capture.false");
  delay_ms_ = &registry.histogram("scenario.capture.delay_ms");
}

void CaptureRecorder::on_capture(const core::CaptureEvent& e) {
  events_.push_back(e);
  if (attackers_.contains(e.host)) {
    ++captured_attackers_;
    if (captured_counter_ != nullptr) captured_counter_->add();
    if (delay_ms_ != nullptr) {
      const double ms =
          (e.when.to_seconds() - attack_start_seconds_) * 1000.0;
      delay_ms_->record(
          ms > 0.0 ? static_cast<std::uint64_t>(std::llround(ms)) : 0);
    }
  } else {
    ++false_captures_;
    if (false_counter_ != nullptr) false_counter_->add();
  }
}

double CaptureRecorder::capture_fraction() const {
  if (attackers_.empty()) return 0.0;
  return static_cast<double>(captured_attackers_) /
         static_cast<double>(attackers_.size());
}

std::vector<double> CaptureRecorder::capture_delays(
    double attack_start_seconds) const {
  std::vector<double> out;
  for (const auto& e : events_) {
    if (!attackers_.contains(e.host)) continue;
    out.push_back(e.when.to_seconds() - attack_start_seconds);
  }
  return out;
}

double CaptureRecorder::mean_capture_delay(double attack_start_seconds) const {
  const auto delays = capture_delays(attack_start_seconds);
  if (delays.empty()) return -1.0;
  double s = 0.0;
  for (double d : delays) s += d;
  return s / static_cast<double>(delays.size());
}

double CaptureRecorder::max_capture_delay(double attack_start_seconds) const {
  const auto delays = capture_delays(attack_start_seconds);
  if (delays.empty()) return -1.0;
  return *std::max_element(delays.begin(), delays.end());
}

}  // namespace hbp::scenario
