#include "traffic/onoff.hpp"

#include "util/assert.hpp"

namespace hbp::traffic {

OnOffShaper::OnOffShaper(sim::Simulator& simulator, CbrSource& source,
                         sim::SimTime t_on, sim::SimTime t_off,
                         sim::SimTime first_on)
    : simulator_(simulator),
      source_(source),
      t_on_(t_on),
      t_off_(t_off),
      first_on_(first_on) {
  HBP_ASSERT(t_on > sim::SimTime::zero());
  HBP_ASSERT(t_off >= sim::SimTime::zero());
}

void OnOffShaper::start() {
  source_.pause();
  const sim::SimTime first =
      first_on_ > simulator_.now() ? first_on_ : simulator_.now();
  simulator_.at(first, [this] { begin_burst(); }, "traffic.onoff");
}

void OnOffShaper::begin_burst() {
  ++bursts_;
  source_.resume();
  simulator_.after(t_on_, [this] { end_burst(); }, "traffic.onoff");
}

void OnOffShaper::end_burst() {
  source_.pause();
  simulator_.after(t_off_, [this] { begin_burst(); }, "traffic.onoff");
}

}  // namespace hbp::traffic
