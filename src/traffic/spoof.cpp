#include "traffic/spoof.hpp"

#include "util/assert.hpp"

namespace hbp::traffic {

SpoofFn no_spoof() {
  return [](util::Rng&, sim::Address real) { return real; };
}

SpoofFn random_spoof() {
  return [](util::Rng& rng, sim::Address) {
    // Avoid 0 (unassigned marker).
    return static_cast<sim::Address>(rng.below(0xffffffffULL) + 1);
  };
}

SpoofFn fixed_spoof(sim::Address forged) {
  return [forged](util::Rng&, sim::Address) { return forged; };
}

SpoofFn subnet_spoof(sim::Address base, sim::Address span) {
  HBP_ASSERT(span >= 1);
  return [base, span](util::Rng& rng, sim::Address) {
    return base + static_cast<sim::Address>(rng.below(span));
  };
}

}  // namespace hbp::traffic
