// Benign background probes (Section 5.3, "False positives"): longitudinal
// honeypot studies show honeypots receive non-malicious traffic; a defense
// that reacts to every stray packet pays high session churn.  This source
// emits Poisson probe packets to random servers so the activation-threshold
// ablation can measure false activations.
#pragma once

#include <vector>

#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace hbp::traffic {

class ProbeSource {
 public:
  ProbeSource(sim::Simulator& simulator, net::Host& host, util::Rng& rng,
              std::vector<sim::Address> targets, double probes_per_second,
              sim::SimTime start, sim::SimTime stop);

  void start();

  std::uint64_t probes_sent() const { return sent_; }

 private:
  void tick();

  sim::Simulator& simulator_;
  net::Host& host_;
  util::Rng& rng_;
  std::vector<sim::Address> targets_;
  double rate_;
  sim::SimTime start_;
  sim::SimTime stop_;
  std::uint64_t sent_ = 0;
};

}  // namespace hbp::traffic
