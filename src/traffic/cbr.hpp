// Constant-bit-rate source — the workload of the paper's simulations
// ("Both legitimate clients and attackers send CBR traffic destined for the
// servers", Section 8.3).
//
// The destination is re-evaluated per packet through a callback, which is
// how roaming clients retarget the current active server and how attackers
// stay pinned to their chosen victim.
#pragma once

#include <cstdint>
#include <functional>

#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "traffic/spoof.hpp"
#include "util/rng.hpp"

namespace hbp::traffic {

struct CbrParams {
  double rate_bps = 0.2e6;
  std::int32_t packet_size = 1000;
  sim::SimTime start = sim::SimTime::zero();
  sim::SimTime stop = sim::SimTime::max();
  sim::PacketType type = sim::PacketType::kData;
  bool is_attack = false;
};

class CbrSource {
 public:
  // dst_fn returns the destination for the next packet, or 0 to skip it.
  using DstFn = std::function<sim::Address()>;

  CbrSource(sim::Simulator& simulator, net::Host& host, util::Rng& rng,
            const CbrParams& params, DstFn dst_fn,
            SpoofFn spoof = no_spoof());

  // Schedules the first packet; call once after construction.
  void start();

  // Gate used by on-off/follower wrappers; while paused the clock keeps
  // ticking but no packets are emitted.
  void pause() { paused_ = true; }
  void resume() { paused_ = false; }
  bool paused() const { return paused_; }

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  sim::SimTime interval() const { return interval_; }

 private:
  void tick();

  sim::Simulator& simulator_;
  net::Host& host_;
  util::Rng& rng_;
  CbrParams params_;
  DstFn dst_fn_;
  SpoofFn spoof_;
  sim::SimTime interval_;
  bool paused_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint32_t flow_id_;
};

}  // namespace hbp::traffic
