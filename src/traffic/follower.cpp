#include "traffic/follower.hpp"

namespace hbp::traffic {

void FollowerShaper::on_target_honeypot_start() {
  const std::uint64_t generation = ++epoch_generation_;
  simulator_.after(d_follow_, [this, generation] {
    // Only pause if the honeypot epoch that scheduled this is still the
    // current one (the target has not gone active in between).
    if (generation == epoch_generation_) {
      source_.pause();
      ++evasions_;
    }
  }, "traffic.follower");
}

void FollowerShaper::on_target_honeypot_end() {
  ++epoch_generation_;
  source_.resume();
}

}  // namespace hbp::traffic
