// Source-address spoofing policies for attack traffic (Section 3: zombies
// send spoofed packets destined for the servers).
//
// A policy maps the attacker's real address to the address written into the
// packet header.  Routing never consults the source address, so spoofed
// values need not be assigned to any host.
#pragma once

#include <functional>

#include "sim/packet.hpp"
#include "util/rng.hpp"

namespace hbp::traffic {

using SpoofFn = std::function<sim::Address(util::Rng&, sim::Address real)>;

// The host's own address (legitimate traffic).
SpoofFn no_spoof();

// Uniformly random 32-bit source per packet — the hardest case for
// source-address-based filtering and blacklisting.
SpoofFn random_spoof();

// A fixed forged address (e.g. framing a specific prefix).
SpoofFn fixed_spoof(sim::Address forged);

// Random address within [base, base + span) — subnet spoofing.
SpoofFn subnet_spoof(sim::Address base, sim::Address span);

}  // namespace hbp::traffic
