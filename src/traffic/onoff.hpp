// On-off attack shaping (Section 6): the attacker alternates between
// sending at full rate for t_on seconds and staying silent for t_off
// seconds.  Short bursts starve signature collection in conventional
// traceback — the motivation for progressive back-propagation.
#pragma once

#include "sim/simulator.hpp"
#include "traffic/cbr.hpp"

namespace hbp::traffic {

class OnOffShaper {
 public:
  OnOffShaper(sim::Simulator& simulator, CbrSource& source, sim::SimTime t_on,
              sim::SimTime t_off, sim::SimTime first_on = sim::SimTime::zero());

  // Arms the on/off cycle; the source starts paused until the first burst.
  void start();

  sim::SimTime t_on() const { return t_on_; }
  sim::SimTime t_off() const { return t_off_; }
  std::uint64_t bursts_started() const { return bursts_; }

 private:
  void begin_burst();
  void end_burst();

  sim::Simulator& simulator_;
  CbrSource& source_;
  sim::SimTime t_on_;
  sim::SimTime t_off_;
  sim::SimTime first_on_;
  std::uint64_t bursts_ = 0;
};

}  // namespace hbp::traffic
