#include "traffic/cbr.hpp"

#include "util/assert.hpp"

namespace hbp::traffic {

CbrSource::CbrSource(sim::Simulator& simulator, net::Host& host, util::Rng& rng,
                     const CbrParams& params, DstFn dst_fn, SpoofFn spoof)
    : simulator_(simulator),
      host_(host),
      rng_(rng),
      params_(params),
      dst_fn_(std::move(dst_fn)),
      spoof_(std::move(spoof)),
      flow_id_(static_cast<std::uint32_t>(host.id())) {
  HBP_ASSERT(params.rate_bps > 0);
  HBP_ASSERT(params.packet_size > 0);
  interval_ = sim::transmission_time(params.packet_size, params.rate_bps);
}

void CbrSource::start() {
  // Phase-desynchronise sources: a random fraction of one interval avoids
  // the lock-step bursts a shared start time would create.
  const sim::SimTime phase =
      sim::SimTime::seconds(rng_.uniform() * interval_.to_seconds());
  const sim::SimTime first =
      params_.start > simulator_.now() ? params_.start : simulator_.now();
  simulator_.at(first + phase, [this] { tick(); }, "traffic.cbr.tick");
}

void CbrSource::tick() {
  if (simulator_.now() >= params_.stop) return;

  if (!paused_) {
    const sim::Address dst = dst_fn_();
    if (dst != 0) {
      sim::Packet p;
      p.type = params_.type;
      p.src = spoof_(rng_, host_.address());
      p.dst = dst;
      p.size_bytes = params_.packet_size;
      p.is_attack = params_.is_attack;
      p.flow = flow_id_;
      ++sent_;
      bytes_sent_ += p.size_bytes;
      host_.send(std::move(p));
    }
  }

  simulator_.after(interval_, [this] { tick(); }, "traffic.cbr.tick");
}

}  // namespace hbp::traffic
