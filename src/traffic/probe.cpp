#include "traffic/probe.hpp"

#include "util/assert.hpp"

namespace hbp::traffic {

ProbeSource::ProbeSource(sim::Simulator& simulator, net::Host& host,
                         util::Rng& rng, std::vector<sim::Address> targets,
                         double probes_per_second, sim::SimTime start,
                         sim::SimTime stop)
    : simulator_(simulator),
      host_(host),
      rng_(rng),
      targets_(std::move(targets)),
      rate_(probes_per_second),
      start_(start),
      stop_(stop) {
  HBP_ASSERT(!targets_.empty());
  HBP_ASSERT(probes_per_second > 0);
}

void ProbeSource::start() {
  const sim::SimTime first =
      start_ > simulator_.now() ? start_ : simulator_.now();
  simulator_.at(first, [this] { tick(); }, "traffic.probe.tick");
}

void ProbeSource::tick() {
  if (simulator_.now() >= stop_) return;

  sim::Packet p;
  p.type = sim::PacketType::kProbe;
  p.src = host_.address();
  p.dst = targets_[rng_.below(targets_.size())];
  p.size_bytes = 64;
  p.is_attack = false;
  ++sent_;
  host_.send(std::move(p));

  simulator_.after(sim::SimTime::seconds(rng_.exponential(1.0 / rate_)),
                   [this] { tick(); }, "traffic.probe.tick");
}

}  // namespace hbp::traffic
