// Follower attack (Section 7.3): an attacker with inside knowledge of the
// roaming schedule stops sending d_follow seconds after its target enters a
// honeypot epoch and resumes when the target becomes active again — trying
// to starve the back-propagation of honeypot traffic.
//
// The shaper is wired to the schedule by the scenario layer via the two
// notification methods, keeping this module independent of the honeypot
// substrate.
#pragma once

#include "sim/simulator.hpp"
#include "traffic/cbr.hpp"

namespace hbp::traffic {

class FollowerShaper {
 public:
  FollowerShaper(sim::Simulator& simulator, CbrSource& source,
                 sim::SimTime d_follow)
      : simulator_(simulator), source_(source), d_follow_(d_follow) {}

  // The target server just became a honeypot: keep sending for d_follow,
  // then go quiet.
  void on_target_honeypot_start();

  // The target server is active again: resume at once.
  void on_target_honeypot_end();

  sim::SimTime d_follow() const { return d_follow_; }
  std::uint64_t evasions() const { return evasions_; }

 private:
  sim::Simulator& simulator_;
  CbrSource& source_;
  sim::SimTime d_follow_;
  std::uint64_t epoch_generation_ = 0;
  std::uint64_t evasions_ = 0;
};

}  // namespace hbp::traffic
