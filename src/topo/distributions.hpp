// Discrete empirical distributions used by the tree-topology generator.
//
// The paper (Section 8.3, Fig. 7) samples its simulation tree from hop-count
// and node-degree histograms "roughly matching those of measured trees";
// the exact numbers were not published, so we ship distributions with the
// same qualitative shape (bell-shaped hop counts around 11-13; degree mass
// concentrated at 2-4 with a heavy tail) and expose them for inspection by
// bench/fig7_topology.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace hbp::topo {

class DiscreteDistribution {
 public:
  DiscreteDistribution(std::vector<std::int64_t> values,
                       std::vector<double> weights);

  std::int64_t sample(util::Rng& rng) const;

  const std::vector<std::int64_t>& values() const { return values_; }
  // Normalised probability of values()[i].
  double probability(std::size_t i) const;
  double mean() const;
  std::int64_t min_value() const;
  std::int64_t max_value() const;

 private:
  std::vector<std::int64_t> values_;
  std::vector<double> weights_;
  double total_weight_;
};

// End-to-end hop count (host to server, in links) of leaf hosts — Fig. 7 left.
DiscreteDistribution fig7_hop_count_distribution();

// Interior-router degree (parent + children) — Fig. 7 right.
DiscreteDistribution fig7_node_degree_distribution();

}  // namespace hbp::topo
