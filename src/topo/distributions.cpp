#include "topo/distributions.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hbp::topo {

DiscreteDistribution::DiscreteDistribution(std::vector<std::int64_t> values,
                                           std::vector<double> weights)
    : values_(std::move(values)), weights_(std::move(weights)) {
  HBP_ASSERT(!values_.empty());
  HBP_ASSERT(values_.size() == weights_.size());
  total_weight_ = 0.0;
  for (double w : weights_) {
    HBP_ASSERT(w >= 0.0);
    total_weight_ += w;
  }
  HBP_ASSERT(total_weight_ > 0.0);
}

std::int64_t DiscreteDistribution::sample(util::Rng& rng) const {
  return values_[rng.weighted(weights_)];
}

double DiscreteDistribution::probability(std::size_t i) const {
  HBP_ASSERT(i < weights_.size());
  return weights_[i] / total_weight_;
}

double DiscreteDistribution::mean() const {
  double s = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    s += static_cast<double>(values_[i]) * weights_[i];
  }
  return s / total_weight_;
}

std::int64_t DiscreteDistribution::min_value() const {
  return *std::min_element(values_.begin(), values_.end());
}

std::int64_t DiscreteDistribution::max_value() const {
  return *std::max_element(values_.begin(), values_.end());
}

DiscreteDistribution fig7_hop_count_distribution() {
  // Host-to-server link count; bell-shaped, peak near 11-12 hops, with a
  // small head of very close leaves (access routers directly below the
  // root) so the Fig. 10 "close attackers" scenario is populated.
  return DiscreteDistribution(
      {5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20},
      {0.05, 0.06, 0.06, 0.08, 0.10, 0.12, 0.13, 0.11, 0.09, 0.07, 0.05,
       0.03, 0.02, 0.01, 0.01, 0.01});
}

DiscreteDistribution fig7_node_degree_distribution() {
  // Interior router total degree; most routers have degree 2-4, with a
  // heavy tail of high-fanout aggregation routers.
  return DiscreteDistribution({2, 3, 4, 5, 6, 8, 12, 16},
                              {0.42, 0.25, 0.15, 0.08, 0.05, 0.03, 0.015,
                               0.005});
}

}  // namespace hbp::topo
