#include "topo/string_topo.hpp"

#include <string>

#include "util/assert.hpp"

namespace hbp::topo {

StringTopo build_string(net::Network& network, const StringParams& params) {
  HBP_ASSERT(params.hops >= 1);

  StringTopo topo;

  net::LinkParams link;
  link.capacity_bps = params.link_bps;
  link.delay = params.link_delay;
  link.queue_bytes = params.queue_bytes;

  auto& gateway = network.add_node<net::Router>("gateway");
  topo.gateway = gateway.id();

  auto& server = network.add_node<net::Host>("server");
  network.connect(gateway.id(), server.id(), link);
  server.set_address(network.assign_address(server.id()));
  topo.server = server.id();
  topo.server_addr = server.address();

  sim::NodeId prev = gateway.id();
  for (int i = 0; i < params.hops; ++i) {
    auto& r = network.add_node<net::Router>("r" + std::to_string(i));
    network.connect(prev, r.id(), link);
    topo.chain_routers.push_back(r.id());
    prev = r.id();
  }
  topo.access_router = topo.chain_routers.back();

  auto& sw = network.add_node<net::Switch>("sw");
  network.connect(topo.access_router, sw.id(), link);
  topo.attacker_switch = sw.id();

  auto& attacker = network.add_node<net::Host>("attacker");
  network.connect(sw.id(), attacker.id(), link);
  attacker.set_address(network.assign_address(attacker.id()));
  topo.attacker_host = attacker.id();
  topo.attacker_addr = attacker.address();

  if (params.with_client) {
    auto& client = network.add_node<net::Host>("client");
    network.connect(sw.id(), client.id(), link);
    client.set_address(network.assign_address(client.id()));
    topo.client_host = client.id();
    topo.client_addr = client.address();
  }

  // AS structure: server AS = {gateway}; each chain router its own AS; the
  // last one (the access router) is the attacker's stub AS and also owns
  // the switch and hosts.
  topo.server_as = topo.as_map.create(gateway.id(), net::kNoAs);
  topo.as_map.add_router(network, topo.server_as, gateway.id());
  topo.as_map.add_host(network, topo.server_as, server.id());

  net::AsId downstream = topo.server_as;
  for (const sim::NodeId r : topo.chain_routers) {
    const net::AsId as = topo.as_map.create(r, downstream);
    topo.as_map.add_router(network, as, r);
    downstream = as;
  }
  topo.attacker_as = downstream;
  topo.as_map.add_switch(network, topo.attacker_as, sw.id());
  topo.as_map.add_host(network, topo.attacker_as, attacker.id());
  if (params.with_client) {
    topo.as_map.add_host(network, topo.attacker_as, topo.client_host);
  }

  topo.as_map.finalize(network);
  return topo;
}

}  // namespace hbp::topo
