// String (chain) topology used by the model-validation experiments
// (Section 8.2, Fig. 6): one server at one end, one attacker at the other,
// `h` routers in between.  Every chain router is its own AS, so the number
// of back-propagation steps to reach the attacker's access router equals
// the configured hop distance — the `h` of Eqs. (1)-(4).
#pragma once

#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "net/switch_node.hpp"
#include "topo/as_map.hpp"

namespace hbp::topo {

struct StringParams {
  int hops = 10;  // number of chain routers between gateway and the switch
  double link_bps = 10e6;
  sim::SimTime link_delay = sim::SimTime::millis(1);
  std::int64_t queue_bytes = 64'000;
  bool with_client = false;  // attach one legitimate client next to attacker
};

struct StringTopo {
  sim::NodeId server = sim::kInvalidNode;
  sim::Address server_addr = 0;
  sim::NodeId gateway = sim::kInvalidNode;
  std::vector<sim::NodeId> chain_routers;
  sim::NodeId access_router = sim::kInvalidNode;  // last chain router
  sim::NodeId attacker_switch = sim::kInvalidNode;
  sim::NodeId attacker_host = sim::kInvalidNode;
  sim::Address attacker_addr = 0;
  sim::NodeId client_host = sim::kInvalidNode;
  sim::Address client_addr = 0;
  AsMap as_map;
  net::AsId server_as = net::kNoAs;
  net::AsId attacker_as = net::kNoAs;  // the stub AS at the far end
};

StringTopo build_string(net::Network& network, const StringParams& params);

}  // namespace hbp::topo
