// Autonomous-system structure over a built topology.
//
// The AS graph of our scenarios is a tree rooted at the victim's home AS
// (AS 0): "downstream" points toward the servers, "upstream" away from
// them — the direction honeypot sessions back-propagate.  Each AS records
// its member routers/switches/hosts and its boundary ("cross") links; the
// edge routers carrying those links get dense per-AS ids used for packet
// marking (lg n bits for n edge routers, Section 5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.hpp"
#include "sim/packet.hpp"

namespace hbp::net {
class Network;
}

namespace hbp::topo {

struct CrossLink {
  sim::NodeId router = sim::kInvalidNode;  // edge router inside this AS
  int port = -1;                           // its port crossing the boundary
  net::AsId neighbor_as = net::kNoAs;
  bool upstream = false;  // neighbor AS is farther from the servers
  int edge_id = -1;       // dense per-AS id for packet marking
};

struct AsInfo {
  net::AsId id = net::kNoAs;
  bool transit = false;                // has upstream neighbor ASs
  sim::NodeId head = sim::kInvalidNode;  // member router closest to servers
  net::AsId downstream = net::kNoAs;   // next AS toward the servers
  std::vector<net::AsId> upstream;
  std::vector<sim::NodeId> routers;
  std::vector<sim::NodeId> switches;
  std::vector<sim::NodeId> hosts;
  std::vector<CrossLink> cross_links;

  // The cross link entering this AS from the given upstream neighbor, or
  // nullptr if none.
  const CrossLink* cross_link_to(net::AsId neighbor) const;
};

class AsMap {
 public:
  net::AsId create(sim::NodeId head, net::AsId downstream);

  std::size_t count() const { return as_.size(); }
  AsInfo& info(net::AsId id) { return as_[static_cast<std::size_t>(id)]; }
  const AsInfo& info(net::AsId id) const {
    return as_[static_cast<std::size_t>(id)];
  }

  // Adds a member node and stamps its Node::as_id.
  void add_router(net::Network& network, net::AsId as, sim::NodeId router);
  void add_switch(net::Network& network, net::AsId as, sim::NodeId sw);
  void add_host(net::Network& network, net::AsId as, sim::NodeId host);

  // Computes cross links, upstream lists, edge ids, and transit flags from
  // the final topology.  Call once after all membership is assigned.
  void finalize(const net::Network& network);

  // Number of inter-AS hops from `from` up/down the AS tree to `to`
  // (the AS graph is a tree); -1 if disconnected.
  int as_hop_distance(net::AsId from, net::AsId to) const;

 private:
  std::vector<AsInfo> as_;
};

}  // namespace hbp::topo
