// The paper's simulation topology (Section 8.3): a tree of routers with
// hop-count and degree distributions matching Fig. 7, five servers behind a
// bottleneck link at the root, end hosts attached through access switches,
// and an AS partition for the hierarchical defense.
//
//   server*5 -- gateway ==bottleneck== root -- interior tree -- access
//   routers -- switches -- leaf hosts (clients / attackers)
#pragma once

#include <cstdint>
#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "net/switch_node.hpp"
#include "topo/as_map.hpp"
#include "topo/distributions.hpp"
#include "util/rng.hpp"

namespace hbp::topo {

struct TreeParams {
  std::size_t leaf_count = 500;
  // Leaf hosts per access switch.  The paper's leaves are individual end
  // hosts, so the default is 1; larger values model shared LANs (the
  // intra-AS MAC endgame then has to pick the attacker out of a shared
  // switch).
  int hosts_per_access = 1;
  int server_count = 5;
  // Interior children of the root.  Aggregation near the victim is coarse
  // (few fat ports carry all distant traffic) — this is what exposes the
  // hop-by-hop max-min unfairness of Pushback for close attackers
  // (Section 8.4.1).  Close (depth-1) access routers attach beyond this
  // budget.
  int root_interior_fanout = 7;

  // Link parameters (DESIGN.md "OCR parameter reconstruction").
  double bottleneck_bps = 10e6;
  double core_bps = 100e6;
  // Access capacity equals the bottleneck so a handful of co-located
  // attackers cannot self-throttle before reaching the core — the
  // bottleneck at the root must stay the only choke point (Section 8.3).
  double access_bps = 10e6;   // "links incident on leaf nodes"
  double server_bps = 100e6;  // "links incident on servers"
  sim::SimTime bottleneck_delay = sim::SimTime::millis(10);
  sim::SimTime core_delay = sim::SimTime::millis(10);
  sim::SimTime access_delay = sim::SimTime::millis(1);
  sim::SimTime server_delay = sim::SimTime::millis(1);
  std::int64_t bottleneck_queue_bytes = 64'000;
  std::int64_t default_queue_bytes = 64'000;
  // RED instead of drop-tail at the bottleneck (the queue ACC was designed
  // around); thresholds scale from bottleneck_queue_bytes.
  bool red_bottleneck = false;

  // AS partition: transit-AS bands of `as_band_span` router levels; the
  // subtree under each router at depth `stub_depth` forms one stub AS.
  int as_band_span = 2;
  int stub_depth = 6;
};

struct Tree {
  sim::NodeId gateway = sim::kInvalidNode;  // server-side bottleneck end
  sim::NodeId root = sim::kInvalidNode;     // client-side bottleneck end

  std::vector<sim::NodeId> servers;
  std::vector<sim::Address> server_addrs;

  std::vector<sim::NodeId> leaf_hosts;
  std::vector<sim::Address> leaf_addrs;
  std::vector<int> leaf_hopcount;           // sampled end-to-end link count
  std::vector<sim::NodeId> leaf_switch;     // per-leaf attachment switch
  std::vector<sim::NodeId> leaf_access;     // per-leaf access router

  std::vector<sim::NodeId> interior_routers;  // includes root, not gateway
  std::vector<sim::NodeId> access_routers;
  std::vector<sim::NodeId> switches;
  std::vector<int> router_depth;  // parallel to interior+access concat order

  AsMap as_map;
  net::AsId server_as = net::kNoAs;

  // Leaves sorted ascending by hop count (close attackers = front,
  // far attackers = back).
  std::vector<std::size_t> leaves_by_distance;
};

Tree build_tree(net::Network& network, util::Rng& rng, const TreeParams& params,
                const DiscreteDistribution& hop_dist =
                    fig7_hop_count_distribution(),
                const DiscreteDistribution& degree_dist =
                    fig7_node_degree_distribution());

}  // namespace hbp::topo
