#include "topo/tree.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <string>

#include "util/assert.hpp"

namespace hbp::topo {

namespace {

// Incremental interior-tree builder: maintains, per depth, the routers that
// can still accept children (capacity sampled from the degree distribution,
// minus one for the uplink).  The root has unbounded fanout — it models the
// provider aggregation point above the bottleneck.
class InteriorBuilder {
 public:
  InteriorBuilder(net::Network& network, util::Rng& rng,
                  const DiscreteDistribution& degree_dist,
                  const net::LinkParams& core_link, sim::NodeId root,
                  int root_interior_fanout)
      : network_(network),
        rng_(rng),
        degree_dist_(degree_dist),
        core_link_(core_link),
        root_interior_budget_(root_interior_fanout) {
    levels_.push_back({root});
  }

  // Returns a router at `depth - 1` with a free child slot (creating the
  // chain of interior routers if necessary) and consumes the slot.
  sim::NodeId claim_parent(int depth) {
    HBP_ASSERT(depth >= 1);
    const int parent_depth = depth - 1;
    if (parent_depth == 0) return levels_[0][0];

    if (static_cast<std::size_t>(parent_depth) >= levels_.size()) {
      levels_.resize(static_cast<std::size_t>(parent_depth) + 1);
    }

    // Candidates with spare capacity at the parent depth.
    std::vector<sim::NodeId>& level = levels_[static_cast<std::size_t>(parent_depth)];
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (capacity_[level[i]] > 0) open.push_back(i);
    }

    sim::NodeId parent;
    if (!open.empty()) {
      parent = level[open[rng_.below(open.size())]];
    } else {
      parent = create_router(parent_depth);
    }
    --capacity_[parent];
    return parent;
  }

  const std::vector<sim::NodeId>& new_routers() const { return created_; }
  int depth_of(sim::NodeId r) const { return depth_.at(r); }

 private:
  sim::NodeId create_router(int depth) {
    if (depth == 1) {
      // The root aggregates distant traffic through a bounded number of
      // interior children; once the budget is used, grow an existing
      // depth-1 aggregation router instead (their degree distribution gets
      // a heavy tail, as near-core routers do).
      if (root_interior_budget_ <= 0 && !levels_[1].empty()) {
        const sim::NodeId grown = levels_[1][rng_.below(levels_[1].size())];
        ++capacity_[grown];
        return grown;
      }
      --root_interior_budget_;
    }
    const sim::NodeId up = claim_parent(depth);
    auto& r = network_.add_node<net::Router>("r" + std::to_string(counter_++));
    network_.connect(up, r.id(), core_link_);
    // Degree = uplink + children; at least one child slot.
    const auto degree = degree_dist_.sample(rng_);
    capacity_[r.id()] = std::max<std::int64_t>(1, degree - 1);
    levels_[static_cast<std::size_t>(depth)].push_back(r.id());
    created_.push_back(r.id());
    depth_[r.id()] = depth;
    return r.id();
  }

  net::Network& network_;
  util::Rng& rng_;
  const DiscreteDistribution& degree_dist_;
  net::LinkParams core_link_;
  int root_interior_budget_;
  std::vector<std::vector<sim::NodeId>> levels_;
  std::map<sim::NodeId, std::int64_t> capacity_;
  std::map<sim::NodeId, int> depth_;
  std::vector<sim::NodeId> created_;
  int counter_ = 0;
};

}  // namespace

Tree build_tree(net::Network& network, util::Rng& rng, const TreeParams& params,
                const DiscreteDistribution& hop_dist,
                const DiscreteDistribution& degree_dist) {
  HBP_ASSERT(params.leaf_count > 0);
  HBP_ASSERT(params.hosts_per_access >= 1);
  HBP_ASSERT(params.server_count >= 1);
  HBP_ASSERT(params.as_band_span >= 1);
  HBP_ASSERT(params.stub_depth >= 1);

  Tree tree;

  net::LinkParams bottleneck;
  bottleneck.capacity_bps = params.bottleneck_bps;
  bottleneck.delay = params.bottleneck_delay;
  bottleneck.queue_bytes = params.bottleneck_queue_bytes;
  if (params.red_bottleneck) {
    net::RedQueue::Params red;
    red.capacity_bytes = params.bottleneck_queue_bytes;
    red.min_th_bytes = 0.25 * static_cast<double>(params.bottleneck_queue_bytes);
    red.max_th_bytes = 0.75 * static_cast<double>(params.bottleneck_queue_bytes);
    bottleneck.queue_factory = [red] {
      return std::make_unique<net::RedQueue>(red);
    };
  }

  net::LinkParams core;
  core.capacity_bps = params.core_bps;
  core.delay = params.core_delay;
  core.queue_bytes = params.default_queue_bytes;

  net::LinkParams access;
  access.capacity_bps = params.access_bps;
  access.delay = params.access_delay;
  access.queue_bytes = params.default_queue_bytes;

  net::LinkParams server_link;
  server_link.capacity_bps = params.server_bps;
  server_link.delay = params.server_delay;
  server_link.queue_bytes = params.default_queue_bytes;

  // Bottleneck: gateway (server side) <-> root (client-tree side).
  auto& gateway = network.add_node<net::Router>("gateway");
  auto& root = network.add_node<net::Router>("root");
  network.connect(gateway.id(), root.id(), bottleneck);
  tree.gateway = gateway.id();
  tree.root = root.id();

  for (int s = 0; s < params.server_count; ++s) {
    auto& server = network.add_node<net::Host>("server" + std::to_string(s));
    network.connect(gateway.id(), server.id(), server_link);
    server.set_address(network.assign_address(server.id()));
    tree.servers.push_back(server.id());
    tree.server_addrs.push_back(server.address());
  }

  // Interior tree + access clusters.
  InteriorBuilder builder(network, rng, degree_dist, core, root.id(),
                          params.root_interior_fanout);
  // host - switch - access router - ... - root - gateway - server: the
  // access router sits at depth hops-4 below the root, minimum depth 1.
  const int min_hop = 5;
  std::size_t remaining = params.leaf_count;
  int cluster = 0;
  std::map<sim::NodeId, int> access_depth;
  while (remaining > 0) {
    const int hops =
        std::max<int>(min_hop, static_cast<int>(hop_dist.sample(rng)));
    const int depth = hops - 4;  // access-router depth below the root

    const sim::NodeId parent = builder.claim_parent(depth);
    auto& ar = network.add_node<net::Router>("ar" + std::to_string(cluster));
    network.connect(parent, ar.id(), core);
    tree.access_routers.push_back(ar.id());
    access_depth[ar.id()] = depth;

    auto& sw = network.add_node<net::Switch>("sw" + std::to_string(cluster));
    network.connect(ar.id(), sw.id(), access);
    tree.switches.push_back(sw.id());

    const std::size_t host_count =
        std::min<std::size_t>(remaining,
                              static_cast<std::size_t>(params.hosts_per_access));
    for (std::size_t h = 0; h < host_count; ++h) {
      auto& host = network.add_node<net::Host>(
          "h" + std::to_string(tree.leaf_hosts.size()));
      network.connect(sw.id(), host.id(), access);
      host.set_address(network.assign_address(host.id()));
      tree.leaf_hosts.push_back(host.id());
      tree.leaf_addrs.push_back(host.address());
      tree.leaf_hopcount.push_back(depth + 4);
      tree.leaf_switch.push_back(sw.id());
      tree.leaf_access.push_back(ar.id());
    }
    remaining -= host_count;
    ++cluster;
  }
  tree.interior_routers.push_back(root.id());
  for (sim::NodeId r : builder.new_routers()) tree.interior_routers.push_back(r);

  // --- AS partition ---
  // AS 0: the victim's home AS (gateway + servers).
  tree.server_as = tree.as_map.create(gateway.id(), net::kNoAs);
  tree.as_map.add_router(network, tree.server_as, gateway.id());
  for (sim::NodeId s : tree.servers) {
    tree.as_map.add_host(network, tree.server_as, s);
  }

  // Interior routers, in depth order (parents before children): a new
  // transit AS starts at every `as_band_span` levels until `stub_depth`,
  // where the whole subtree becomes one stub AS.
  std::vector<std::pair<int, sim::NodeId>> interior_by_depth;
  interior_by_depth.emplace_back(0, root.id());
  for (sim::NodeId r : builder.new_routers()) {
    interior_by_depth.emplace_back(builder.depth_of(r), r);
  }
  std::stable_sort(interior_by_depth.begin(), interior_by_depth.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  auto parent_router = [&](sim::NodeId r) {
    // Port 0 is always the uplink (connect() is called parent-first).
    return network.node(r).neighbor(0);
  };

  for (const auto& [depth, r] : interior_by_depth) {
    if (depth == 0) {
      const net::AsId as = tree.as_map.create(r, tree.server_as);
      tree.as_map.add_router(network, as, r);
      continue;
    }
    const net::AsId parent_as = network.node(parent_router(r)).as_id();
    HBP_ASSERT(parent_as != net::kNoAs);
    if (depth >= params.stub_depth) {
      if (depth == params.stub_depth) {
        const net::AsId as = tree.as_map.create(r, parent_as);
        tree.as_map.add_router(network, as, r);
      } else {
        tree.as_map.add_router(network, parent_as, r);
      }
    } else if (depth % params.as_band_span == 0) {
      const net::AsId as = tree.as_map.create(r, parent_as);
      tree.as_map.add_router(network, as, r);
    } else {
      tree.as_map.add_router(network, parent_as, r);
    }
  }

  // Access routers: inside a stub subtree they join it; otherwise each
  // access cluster is its own stub AS.
  for (std::size_t c = 0; c < tree.access_routers.size(); ++c) {
    const sim::NodeId ar = tree.access_routers[c];
    const int depth = access_depth[ar];
    const net::AsId parent_as = network.node(parent_router(ar)).as_id();
    net::AsId as;
    if (depth > params.stub_depth) {
      as = parent_as;  // parent is inside a stub subtree
      tree.as_map.add_router(network, as, ar);
    } else {
      as = tree.as_map.create(ar, parent_as);
      tree.as_map.add_router(network, as, ar);
    }
    tree.as_map.add_switch(network, as, tree.switches[c]);
  }
  for (std::size_t i = 0; i < tree.leaf_hosts.size(); ++i) {
    tree.as_map.add_host(network,
                         network.node(tree.leaf_access[i]).as_id(),
                         tree.leaf_hosts[i]);
  }

  tree.as_map.finalize(network);

  // Depth bookkeeping for attacker placement (Fig. 10 close/far/even).
  tree.leaves_by_distance.resize(tree.leaf_hosts.size());
  std::iota(tree.leaves_by_distance.begin(), tree.leaves_by_distance.end(), 0u);
  std::stable_sort(tree.leaves_by_distance.begin(), tree.leaves_by_distance.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tree.leaf_hopcount[a] < tree.leaf_hopcount[b];
                   });

  tree.router_depth.clear();
  for (const auto& [depth, r] : interior_by_depth) {
    (void)r;
    tree.router_depth.push_back(depth);
  }
  for (const sim::NodeId ar : tree.access_routers) {
    tree.router_depth.push_back(access_depth[ar]);
  }

  return tree;
}

}  // namespace hbp::topo
