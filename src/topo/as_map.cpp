#include "topo/as_map.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "util/assert.hpp"

namespace hbp::topo {

const CrossLink* AsInfo::cross_link_to(net::AsId neighbor) const {
  for (const CrossLink& cl : cross_links) {
    if (cl.neighbor_as == neighbor) return &cl;
  }
  return nullptr;
}

net::AsId AsMap::create(sim::NodeId head, net::AsId downstream) {
  AsInfo info;
  info.id = static_cast<net::AsId>(as_.size());
  info.head = head;
  info.downstream = downstream;
  as_.push_back(std::move(info));
  return as_.back().id;
}

void AsMap::add_router(net::Network& network, net::AsId as, sim::NodeId router) {
  network.node(router).set_as_id(as);
  info(as).routers.push_back(router);
}

void AsMap::add_switch(net::Network& network, net::AsId as, sim::NodeId sw) {
  network.node(sw).set_as_id(as);
  info(as).switches.push_back(sw);
}

void AsMap::add_host(net::Network& network, net::AsId as, sim::NodeId host) {
  network.node(host).set_as_id(as);
  info(as).hosts.push_back(host);
}

void AsMap::finalize(const net::Network& network) {
  for (AsInfo& as : as_) {
    as.cross_links.clear();
    as.upstream.clear();
    int next_edge_id = 0;
    for (const sim::NodeId r : as.routers) {
      const net::Node& node = network.node(r);
      for (std::size_t port = 0; port < node.port_count(); ++port) {
        const sim::NodeId n = node.neighbor(port);
        const net::Node& neighbor = network.node(n);
        if (neighbor.kind() != net::NodeKind::kRouter) continue;
        if (neighbor.as_id() == as.id) continue;
        CrossLink cl;
        cl.router = r;
        cl.port = static_cast<int>(port);
        cl.neighbor_as = neighbor.as_id();
        cl.upstream = neighbor.as_id() != as.downstream;
        cl.edge_id = next_edge_id++;
        if (cl.upstream &&
            std::find(as.upstream.begin(), as.upstream.end(), cl.neighbor_as) ==
                as.upstream.end()) {
          as.upstream.push_back(cl.neighbor_as);
        }
        as.cross_links.push_back(cl);
      }
    }
    as.transit = !as.upstream.empty();
  }
}

int AsMap::as_hop_distance(net::AsId from, net::AsId to) const {
  // Distance in the AS tree: walk both nodes up to the root collecting
  // ancestor chains, then find the meeting point.
  auto chain = [this](net::AsId a) {
    std::vector<net::AsId> c;
    while (a != net::kNoAs) {
      c.push_back(a);
      a = info(a).downstream;
    }
    return c;
  };
  const auto ca = chain(from);
  const auto cb = chain(to);
  for (std::size_t i = 0; i < ca.size(); ++i) {
    for (std::size_t j = 0; j < cb.size(); ++j) {
      if (ca[i] == cb[j]) return static_cast<int>(i + j);
    }
  }
  return -1;
}

}  // namespace hbp::topo
