// Trace exporters: Chrome trace-event / Perfetto JSON and long-format CSV.
//
// Both formats are byte-deterministic functions of the recorded events (all
// timestamps are integer sim-nanos formatted with integer math; node names
// come from the Network, itself built deterministically), so two runs of
// the same seed produce byte-identical files — a ctest pins this.
//
// JSON shape: {"traceEvents":[...]} with one instant event ("ph":"i") per
// TraceEvent on pid 1, tid = node+2 (tid 1 is the AS-level control plane),
// plus "thread_name" metadata per node.  Load it in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <iosfwd>
#include <string>

namespace hbp::trace {

class Tracer;

void write_chrome_json(const Tracer& tracer, std::ostream& out);

// Header: t_ns,verb,node,node_name,id,cause,a,b — one row per event.
void write_csv(const Tracer& tracer, std::ostream& out);

// Dispatches on extension: ".csv" => CSV, anything else => Chrome JSON.
// Returns false if the file could not be opened.
bool write_trace_file(const Tracer& tracer, const std::string& path);

}  // namespace hbp::trace
