#include "trace/tracer.hpp"

#include <cstdio>
#include <string>

#include "net/network.hpp"
#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace hbp::trace {

Tracer::Tracer(const TracerOptions& options) : options_(options) {
  flight_.resize(options_.flight_capacity);
}

Tracer::~Tracer() { detach(); }

void Tracer::attach(sim::Simulator& simulator, const net::Network* network) {
  HBP_ASSERT_MSG(attached_ == nullptr, "Tracer is already attached");
  attached_ = &simulator;
  network_ = network;
  simulator.set_trace_sink(sim::TraceSink::bind<&Tracer::record>(*this));
  simulator.set_flight_dump(sim::TraceDumpFn::bind<&Tracer::dump_flight>(*this));
}

void Tracer::detach() {
  if (attached_ == nullptr) return;
  attached_->set_trace_sink(nullptr);
  attached_->set_flight_dump(nullptr);
  attached_ = nullptr;
}

void Tracer::record(const sim::TraceEvent& e) {
  ++recorded_;
  ++by_verb_[static_cast<std::size_t>(e.verb)];
  if (!flight_.empty()) {
    flight_[flight_head_] = e;
    flight_head_ = (flight_head_ + 1) % flight_.size();
    if (flight_count_ < flight_.size()) ++flight_count_;
  }
  if (!options_.keep_full) return;
  if (size_ == chunks_.size() * kChunkEvents) {
    chunks_.push_back(std::make_unique<Chunk>());
  }
  (*chunks_.back())[size_ % kChunkEvents] = e;
  ++size_;
}

void Tracer::dump_flight(std::string& out) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "flight recorder (last %zu of %llu events):\n", flight_count_,
                static_cast<unsigned long long>(recorded_));
  out += buf;
  for_each_flight([&](const sim::TraceEvent& e) {
    const char* name = "";
    if (network_ != nullptr && e.node >= 0 &&
        static_cast<std::size_t>(e.node) < network_->node_count()) {
      name = network_->node(e.node).name().c_str();
    }
    std::snprintf(buf, sizeof(buf),
                  "  t=%.9fs %-19s node=%d(%s) id=%llu cause=%llu a=%d b=%d\n",
                  e.t.to_seconds(), sim::verb_name(e.verb), e.node, name,
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.cause), e.a, e.b);
    out += buf;
  });
}

void Tracer::export_counters(telemetry::Registry& registry) const {
  registry.counter("trace.recorded").add(recorded_);
  for (std::size_t v = 0; v < sim::kTraceVerbCount; ++v) {
    if (by_verb_[v] == 0) continue;
    std::string key = "trace.verb.";
    key += sim::verb_name(static_cast<sim::TraceVerb>(v));
    registry.counter(key).add(by_verb_[v]);
  }
}

}  // namespace hbp::trace
