// The causal-trace recorder: receives sim::TraceEvent records from the
// Simulator's sink and stores them in two places at once:
//
//  * a chunked slab store (full trace, exporters iterate it in emission
//    order) — appended amortized, never one heap allocation per event, so
//    the enabled path stays cheap and the disabled path (no Tracer
//    attached) costs exactly one branch per hook;
//  * a fixed-capacity flight-recorder ring (last N events) that
//    net::InvariantChecker dumps into its diagnostic when an audit fails,
//    whether or not the full trace is kept.
//
// A Tracer must outlive its attachment: attach() hands the Simulator
// function_refs bound to *this (see util/function_ref.hpp's lifetime
// contract); detach() — or the destructor — removes them.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/trace_event.hpp"

namespace hbp::net {
class Network;
}
namespace hbp::telemetry {
class Registry;
}

namespace hbp::trace {

struct TracerOptions {
  // Keep the full event stream for export.  When false only the flight
  // ring and per-verb counters are maintained (bounded memory, still
  // enough for invariant-failure forensics).
  bool keep_full = true;
  // Flight-recorder depth ("last N events"); 0 disables the ring.
  std::size_t flight_capacity = 256;
};

class Tracer {
 public:
  explicit Tracer(const TracerOptions& options = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  // Installs this tracer as the simulator's trace sink and flight-dump
  // hook.  `network`, when given, is only used to resolve node names in
  // dumps and exports; it must outlive the tracer's use.
  void attach(sim::Simulator& simulator, const net::Network* network = nullptr);
  void detach();
  bool attached() const { return attached_ != nullptr; }
  const net::Network* network() const { return network_; }

  // The sink itself; also callable directly (tests).
  void record(const sim::TraceEvent& e);

  // Total events seen (recorded + flight-only).
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t verb_count(sim::TraceVerb v) const {
    return by_verb_[static_cast<std::size_t>(v)];
  }

  // Full-trace access, in emission order (empty when keep_full is off).
  std::size_t size() const { return size_; }
  const sim::TraceEvent& event(std::size_t i) const { return event_at(i); }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn(event_at(i));
  }

  // Flight ring, oldest to newest.
  std::size_t flight_capacity() const { return flight_.size(); }
  std::size_t flight_size() const { return flight_count_; }
  template <typename Fn>
  void for_each_flight(Fn&& fn) const {
    const std::size_t n = flight_.size();
    for (std::size_t i = 0; i < flight_count_; ++i) {
      fn(flight_[(flight_head_ + n - flight_count_ + i) % n]);
    }
  }
  // Appends a human-readable "last N events" tail to `out` (the shape the
  // InvariantChecker embeds in its failure diagnostic).
  void dump_flight(std::string& out) const;

  // Registers trace.recorded plus one trace.verb.<name> counter per verb
  // that fired.  Counts are functions of the simulated history only, so
  // they land in the deterministic section of exported telemetry.
  void export_counters(telemetry::Registry& registry) const;

 private:
  static constexpr std::size_t kChunkEvents = 4096;
  using Chunk = std::array<sim::TraceEvent, kChunkEvents>;

  const sim::TraceEvent& event_at(std::size_t i) const {
    return (*chunks_[i / kChunkEvents])[i % kChunkEvents];
  }

  TracerOptions options_;
  sim::Simulator* attached_ = nullptr;
  const net::Network* network_ = nullptr;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;

  std::vector<sim::TraceEvent> flight_;
  std::size_t flight_head_ = 0;   // next slot to overwrite
  std::size_t flight_count_ = 0;  // valid entries, <= flight_.size()

  std::uint64_t recorded_ = 0;
  std::array<std::uint64_t, sim::kTraceVerbCount> by_verb_{};
};

}  // namespace hbp::trace
