#include "trace/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "net/network.hpp"
#include "trace/tracer.hpp"

namespace hbp::trace {

namespace {

// tid layout: the control plane (node = -1) renders as tid 1, node k as
// tid k+2; pid is always 1.  Keeps every tid positive, which both Perfetto
// and chrome://tracing require.
int tid_of(sim::NodeId node) { return static_cast<int>(node) + 2; }

const char* node_name(const net::Network* network, sim::NodeId node) {
  if (network == nullptr || node < 0 ||
      static_cast<std::size_t>(node) >= network->node_count()) {
    return "";
  }
  return network->node(node).name().c_str();
}

}  // namespace

void write_chrome_json(const Tracer& tracer, std::ostream& out) {
  const net::Network* network = tracer.network();
  out << "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  comma();
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"control plane\"}}";
  if (network != nullptr) {
    for (std::size_t id = 0; id < network->node_count(); ++id) {
      const sim::NodeId node = static_cast<sim::NodeId>(id);
      comma();
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":"
                    "\"thread_name\",\"args\":{\"name\":\"%s (#%d)\"}}",
                    tid_of(node), node_name(network, node), node);
      out << buf;
    }
  }
  tracer.for_each([&](const sim::TraceEvent& e) {
    // ts is microseconds; emit exact micros from integer nanos so the file
    // is byte-stable (no floating-point formatting).
    const long long us = e.t.nanos() / 1000;
    const long long frac = e.t.nanos() % 1000;
    comma();
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"hbp\",\"ph\":\"i\",\"s\":\"t\","
        "\"pid\":1,\"tid\":%d,\"ts\":%lld.%03lld,"
        "\"args\":{\"id\":%llu,\"cause\":%llu,\"a\":%d,\"b\":%d}}",
        sim::verb_name(e.verb), tid_of(e.node), us, frac,
        static_cast<unsigned long long>(e.id),
        static_cast<unsigned long long>(e.cause), e.a, e.b);
    out << buf;
  });
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_csv(const Tracer& tracer, std::ostream& out) {
  const net::Network* network = tracer.network();
  out << "t_ns,verb,node,node_name,id,cause,a,b\n";
  char buf[256];
  tracer.for_each([&](const sim::TraceEvent& e) {
    std::snprintf(buf, sizeof(buf), "%lld,%s,%d,%s,%llu,%llu,%d,%d\n",
                  static_cast<long long>(e.t.nanos()), sim::verb_name(e.verb),
                  e.node, node_name(network, e.node),
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.cause), e.a, e.b);
    out << buf;
  });
}

bool write_trace_file(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::binary);  // binary: byte-stable on any OS
  if (!out) return false;
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    write_csv(tracer, out);
  } else {
    write_chrome_json(tracer, out);
  }
  return static_cast<bool>(out);
}

}  // namespace hbp::trace
