#include "honeypot/blacklist.hpp"

namespace hbp::honeypot {

bool Blacklist::observed_at_honeypot(sim::Address src) {
  if (listed_.contains(src)) return true;
  if (handshaken_.contains(src)) {
    listed_.insert(src);
    return true;
  }
  ++rejected_unverified_;
  return false;
}

}  // namespace hbp::honeypot
