// Source blacklist of the roaming-honeypots scheme (Section 4): "The source
// address of any request that hits a honeypot is blacklisted ... The source
// address is not blacklisted unless a full handshake is recorded to ensure
// that it is not spoofed."
//
// Against the paper's spoofing attack the blacklist is deliberately
// ineffective (every packet carries a fresh forged source) — that gap is
// exactly what honeypot back-propagation closes.
#pragma once

#include <cstdint>
#include <set>

#include "sim/packet.hpp"

namespace hbp::honeypot {

class Blacklist {
 public:
  // Records a completed (3-way) handshake for the source — proof the
  // address was reachable, i.e. not spoofed.
  void note_handshake(sim::Address src) { handshaken_.insert(src); }

  // A packet from `src` hit a honeypot; blacklists only handshake-verified
  // sources.  Returns true if the address was (already or newly) listed.
  bool observed_at_honeypot(sim::Address src);

  bool contains(sim::Address src) const { return listed_.contains(src); }
  std::size_t size() const { return listed_.size(); }
  std::uint64_t rejected_unverified() const { return rejected_unverified_; }

 private:
  std::set<sim::Address> handshaken_;
  std::set<sim::Address> listed_;
  std::uint64_t rejected_unverified_ = 0;
};

}  // namespace hbp::honeypot
