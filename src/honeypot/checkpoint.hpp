// Connection checkpoint/migration bookkeeping (Section 4): "each active
// server periodically checkpoints per-connection state ... clients send the
// checkpoints to the new servers to resume their connections."
//
// The store stands in for the client-carried checkpoint: the old server
// deposits state keyed by client address, the new server claims it on the
// client's first packet.  Tests assert byte counters survive migration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "sim/packet.hpp"
#include "sim/time.hpp"

namespace hbp::honeypot {

struct ConnectionState {
  sim::Address client = 0;
  int server_index = -1;       // server currently owning the connection
  std::uint64_t bytes = 0;     // cumulative payload bytes from this client
  std::uint64_t migrations = 0;
  sim::SimTime last_update = sim::SimTime::zero();
};

class CheckpointStore {
 public:
  // Old server deposits the connection state at epoch switch.
  void deposit(const ConnectionState& state);

  // New server claims the state when the client shows up; returns nullopt
  // for a brand-new connection.
  std::optional<ConnectionState> claim(sim::Address client);

  std::uint64_t deposits() const { return deposits_; }
  std::uint64_t resumes() const { return resumes_; }
  std::size_t pending() const { return store_.size(); }

 private:
  std::map<sim::Address, ConnectionState> store_;
  std::uint64_t deposits_ = 0;
  std::uint64_t resumes_ = 0;
};

}  // namespace hbp::honeypot
