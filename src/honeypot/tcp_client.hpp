// Roaming TCP client: a bulk TCP transfer that follows the roaming
// schedule, migrating (checkpoint + re-handshake + slow-start restart) to a
// new active server at every epoch in which its server goes inactive —
// the mechanism behind the roaming overhead discussed in Section 5.3:
// "all its current legitimate connections move to another server,
// re-establish TCP connections and re-enter TCP slow-start, losing their
// current TCP throughput."
#pragma once

#include "honeypot/schedule.hpp"
#include "honeypot/server_pool.hpp"
#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"
#include "util/rng.hpp"

namespace hbp::honeypot {

class RoamingTcpClient {
 public:
  RoamingTcpClient(sim::Simulator& simulator, net::Host& host, util::Rng& rng,
                   const Schedule& schedule, const ServerPool& pool,
                   sim::SimTime max_clock_skew = sim::SimTime::millis(100),
                   const transport::TcpParams& tcp = {});

  // Connects to an active server and arms the per-epoch migration check.
  void start();

  const transport::TcpSender& sender() const { return sender_; }
  std::uint64_t migrations() const { return migrations_; }
  int current_server() const { return current_server_; }

 private:
  void on_epoch_boundary();
  void retarget(std::size_t epoch);
  sim::SimTime local_time() const;

  sim::Simulator& simulator_;
  util::Rng& rng_;
  const Schedule& schedule_;
  const ServerPool& pool_;
  transport::TcpSender sender_;
  sim::SimTime skew_ = sim::SimTime::zero();
  int current_server_ = -1;
  std::uint64_t migrations_ = 0;
};

}  // namespace hbp::honeypot
