#include "honeypot/hash_chain.hpp"

#include "util/assert.hpp"

namespace hbp::honeypot {

namespace {
util::Digest hash_once(const util::Digest& d) {
  return util::Sha256::hash(std::span<const std::uint8_t>(d.data(), d.size()));
}
}  // namespace

HashChain::HashChain(const util::Digest& tail_key, std::size_t length) {
  HBP_ASSERT(length >= 1);
  keys_.resize(length);
  keys_[length - 1] = tail_key;  // K_n
  for (std::size_t i = length - 1; i > 0; --i) {
    keys_[i - 1] = hash_once(keys_[i]);  // K_i = H(K_{i+1})
  }
}

const util::Digest& HashChain::key(std::size_t i) const {
  HBP_ASSERT(i >= 1 && i <= keys_.size());
  return keys_[i - 1];
}

util::Digest HashChain::derive(const util::Digest& k_j, std::size_t j,
                               std::size_t i) {
  HBP_ASSERT(i >= 1 && i <= j);
  util::Digest d = k_j;
  for (std::size_t step = 0; step < j - i; ++step) d = hash_once(d);
  return d;
}

bool HashChain::verify(const util::Digest& claimed, std::size_t j,
                       const util::Digest& anchor, std::size_t i) {
  if (i > j) return false;
  return util::digest_equal(derive(claimed, j, i), anchor);
}

}  // namespace hbp::honeypot
