// One-way hash chain driving the roaming schedule (Section 4).
//
// "A long hash chain is generated using a one-way hash function, and used
// in a backward fashion.  The last key in the chain, K_n, is randomly
// generated and each key K_i = H(K_{i+1}) is used to determine the active
// servers during epoch i."  Holding K_t lets a client derive every key up
// to epoch t but none after — the time-based subscription token.
#pragma once

#include <cstddef>
#include <vector>

#include "util/sha256.hpp"

namespace hbp::honeypot {

class HashChain {
 public:
  // Generates a chain of `length` keys from the random tail key K_n.
  HashChain(const util::Digest& tail_key, std::size_t length);

  std::size_t length() const { return keys_.size(); }

  // K_i for epoch i in [1, length()].
  const util::Digest& key(std::size_t i) const;

  // Derives K_i from a later key K_j (i <= j) by hashing forward j-i times.
  static util::Digest derive(const util::Digest& k_j, std::size_t j,
                             std::size_t i);

  // Verifies that `claimed` is K_j of the chain anchored at K_i == anchor.
  static bool verify(const util::Digest& claimed, std::size_t j,
                     const util::Digest& anchor, std::size_t i);

 private:
  std::vector<util::Digest> keys_;  // keys_[i-1] == K_i
};

}  // namespace hbp::honeypot
