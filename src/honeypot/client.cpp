#include "honeypot/client.hpp"

#include "util/assert.hpp"

namespace hbp::honeypot {

RoamingClient::RoamingClient(sim::Simulator& simulator, net::Host& host,
                             util::Rng& rng, const Schedule& schedule,
                             SubscriptionService& subscription,
                             const ServerPool& pool,
                             const RoamingClientParams& params)
    : simulator_(simulator),
      host_(host),
      rng_(rng),
      schedule_(schedule),
      subscription_(subscription),
      pool_(pool),
      params_(params),
      cbr_(simulator, host, rng, params.cbr, [this] { return next_destination(); }) {
  const double bound = params_.max_clock_skew.to_seconds();
  skew_ = sim::SimTime::seconds(rng_.uniform(-bound, bound));
}

sim::SimTime RoamingClient::local_time() const {
  const sim::SimTime t = simulator_.now() + skew_;
  return t >= sim::SimTime::zero() ? t : sim::SimTime::zero();
}

void RoamingClient::start() {
  key_ = subscription_.subscribe(schedule_.epoch_of(local_time()),
                                 params_.trust_level);
  cbr_.start();
}

sim::Address RoamingClient::next_destination() {
  const std::size_t epoch = schedule_.epoch_of(local_time());

  if (epoch > key_.epoch_limit) {
    // Subscription expired: contact the subscription service; packets are
    // skipped until the new key arrives.
    if (!renewing_) {
      renewing_ = true;
      simulator_.after(
          params_.renewal_latency,
          [this] {
            key_ = subscription_.renew(schedule_.epoch_of(local_time()),
                                       params_.trust_level);
            ++renewals_;
            renewing_ = false;
          },
          "honeypot.client.renew");
    }
    ++skipped_;
    return 0;
  }

  if (epoch != cached_epoch_) {
    cached_epoch_ = epoch;
    const auto actives = schedule_.active_servers(epoch);
    HBP_ASSERT_MSG(!actives.empty(), "schedule produced an empty active set");
    const int chosen = actives[rng_.below(actives.size())];
    if (chosen != current_server_) {
      current_server_ = chosen;
      ++migrations_;
      if (params_.handshake_on_new_server) {
        sim::Packet syn;
        syn.type = sim::PacketType::kHandshakeSyn;
        syn.src = host_.address();
        syn.dst = pool_.address(current_server_);
        syn.size_bytes = 64;
        host_.send(std::move(syn));
      }
    }
  }

  return pool_.address(current_server_);
}

}  // namespace hbp::honeypot
