#include "honeypot/schedule.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hbp::honeypot {

std::size_t Schedule::epoch_of(sim::SimTime t) const {
  HBP_ASSERT(t >= sim::SimTime::zero());
  return static_cast<std::size_t>(t.nanos() / epoch_length().nanos()) + 1;
}

sim::SimTime Schedule::epoch_start(std::size_t epoch) const {
  HBP_ASSERT(epoch >= 1);
  return sim::SimTime(static_cast<std::int64_t>(epoch - 1) *
                      epoch_length().nanos());
}

sim::SimTime Schedule::epoch_end(std::size_t epoch) const {
  return epoch_start(epoch) + epoch_length();
}

namespace {
std::uint64_t seed_from_key(const util::Digest& key) {
  std::uint64_t s = 0;
  for (int i = 0; i < 8; ++i) s = (s << 8) | key[static_cast<std::size_t>(i)];
  return s;
}
}  // namespace

RoamingSchedule::RoamingSchedule(std::shared_ptr<const HashChain> chain,
                                 int n_servers, int k_active,
                                 sim::SimTime epoch_length)
    : chain_(std::move(chain)), n_(n_servers), k_(k_active), m_(epoch_length) {
  HBP_ASSERT(chain_ != nullptr);
  HBP_ASSERT(n_ >= 1);
  HBP_ASSERT(k_ >= 1 && k_ <= n_);
  HBP_ASSERT(m_ > sim::SimTime::zero());
}

std::uint64_t RoamingSchedule::epoch_seed(std::size_t epoch) const {
  // Epochs beyond the chain wrap around; a production deployment would
  // provision a long-enough chain and re-key.
  const std::size_t idx = ((epoch - 1) % chain_->length()) + 1;
  return seed_from_key(chain_->key(idx));
}

std::vector<int> RoamingSchedule::active_servers(std::size_t epoch) const {
  HBP_ASSERT(epoch >= 1);
  util::Rng rng(epoch_seed(epoch));
  const auto chosen = rng.choose(static_cast<std::size_t>(n_),
                                 static_cast<std::size_t>(k_));
  std::vector<int> out;
  out.reserve(chosen.size());
  for (std::size_t c : chosen) out.push_back(static_cast<int>(c));
  std::sort(out.begin(), out.end());
  return out;
}

bool RoamingSchedule::is_active(int server, std::size_t epoch) const {
  HBP_ASSERT(server >= 0 && server < n_);
  const auto active = active_servers(epoch);
  return std::binary_search(active.begin(), active.end(), server);
}

BernoulliSchedule::BernoulliSchedule(std::shared_ptr<const HashChain> chain,
                                     double p, sim::SimTime epoch_length)
    : chain_(std::move(chain)), p_(p), m_(epoch_length) {
  HBP_ASSERT(chain_ != nullptr);
  HBP_ASSERT(p >= 0.0 && p <= 1.0);
  HBP_ASSERT(m_ > sim::SimTime::zero());
}

bool BernoulliSchedule::is_active(int server, std::size_t epoch) const {
  HBP_ASSERT(server == 0);
  HBP_ASSERT(epoch >= 1);
  const std::size_t idx = ((epoch - 1) % chain_->length()) + 1;
  util::Rng rng(seed_from_key(chain_->key(idx)));
  return !rng.bernoulli(p_);
}

std::vector<int> BernoulliSchedule::active_servers(std::size_t epoch) const {
  if (is_active(0, epoch)) return {0};
  return {};
}

}  // namespace hbp::honeypot
