// Subscription service issuing roaming keys (Section 4): "Upon subscription
// ... each legitimate client is assigned a roaming key K_t from the hash
// chain, with a varying value of t according to each client's trust level.
// K_t acts as a time-based token ... When subscription expires ... the
// client may contact the subscription service to acquire a new key."
#pragma once

#include <cstdint>
#include <memory>

#include "honeypot/hash_chain.hpp"
#include "util/sha256.hpp"

namespace hbp::honeypot {

struct ClientKey {
  util::Digest key{};       // K_t
  std::size_t epoch_limit = 0;  // t: last epoch the key is valid for
};

class SubscriptionService {
 public:
  SubscriptionService(std::shared_ptr<const HashChain> chain,
                      std::size_t epochs_per_trust_level)
      : chain_(std::move(chain)),
        epochs_per_level_(epochs_per_trust_level) {}

  // Issues K_t where t = current_epoch + trust_level * epochs_per_level,
  // clamped to the chain length.
  ClientKey subscribe(std::size_t current_epoch, int trust_level);

  // Renews an expired key starting from the current epoch.
  ClientKey renew(std::size_t current_epoch, int trust_level);

  // Validity check a server can run: the claimed key must hash forward to
  // the chain anchor K_1.
  bool valid(const ClientKey& key) const;

  std::uint64_t keys_issued() const { return issued_; }
  std::uint64_t renewals() const { return renewals_; }

 private:
  ClientKey issue(std::size_t current_epoch, int trust_level);

  std::shared_ptr<const HashChain> chain_;
  std::size_t epochs_per_level_;
  std::uint64_t issued_ = 0;
  std::uint64_t renewals_ = 0;
};

}  // namespace hbp::honeypot
