#include "honeypot/tcp_client.hpp"

#include "util/assert.hpp"

namespace hbp::honeypot {

RoamingTcpClient::RoamingTcpClient(sim::Simulator& simulator, net::Host& host,
                                   util::Rng& rng, const Schedule& schedule,
                                   const ServerPool& pool,
                                   sim::SimTime max_clock_skew,
                                   const transport::TcpParams& tcp)
    : simulator_(simulator),
      rng_(rng),
      schedule_(schedule),
      pool_(pool),
      sender_(simulator, host, tcp) {
  const double bound = max_clock_skew.to_seconds();
  skew_ = sim::SimTime::seconds(rng_.uniform(-bound, bound));
}

sim::SimTime RoamingTcpClient::local_time() const {
  const sim::SimTime t = simulator_.now() + skew_;
  return t >= sim::SimTime::zero() ? t : sim::SimTime::zero();
}

void RoamingTcpClient::start() {
  retarget(schedule_.epoch_of(local_time()));
  on_epoch_boundary();
}

void RoamingTcpClient::retarget(std::size_t epoch) {
  const auto actives = schedule_.active_servers(epoch);
  HBP_ASSERT_MSG(!actives.empty(), "no active server to connect to");
  if (current_server_ >= 0) ++migrations_;
  current_server_ = actives[rng_.below(actives.size())];
  sender_.connect(pool_.address(current_server_));
}

void RoamingTcpClient::on_epoch_boundary() {
  const std::size_t epoch = schedule_.epoch_of(local_time());
  if (current_server_ < 0 || !schedule_.is_active(current_server_, epoch)) {
    retarget(epoch);
  }
  // Wake at the next epoch boundary by this client's (skewed) clock.
  const sim::SimTime next_local = schedule_.epoch_end(epoch);
  sim::SimTime wake = next_local - skew_;
  if (wake <= simulator_.now()) {
    wake = simulator_.now() + sim::SimTime::millis(1);
  }
  simulator_.at(wake, [this] { on_epoch_boundary(); },
                "honeypot.client.epoch");
}

}  // namespace hbp::honeypot
