#include "honeypot/checkpoint.hpp"

namespace hbp::honeypot {

void CheckpointStore::deposit(const ConnectionState& state) {
  ++deposits_;
  store_[state.client] = state;
}

std::optional<ConnectionState> CheckpointStore::claim(sim::Address client) {
  const auto it = store_.find(client);
  if (it == store_.end()) return std::nullopt;
  ConnectionState s = it->second;
  store_.erase(it);
  ++resumes_;
  return s;
}

}  // namespace hbp::honeypot
