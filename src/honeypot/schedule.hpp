// Pseudo-random roaming schedule shared by servers and legitimate clients.
//
// Each epoch i, the key K_i of the hash chain seeds a deterministic draw of
// the k active servers out of N; the other N-k act as honeypots
// (Section 4).  Anyone holding K_i (servers; subscribed clients) computes
// the same active set; an outside attacker cannot predict it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "honeypot/hash_chain.hpp"
#include "sim/time.hpp"

namespace hbp::honeypot {

class Schedule {
 public:
  virtual ~Schedule() = default;

  virtual int server_count() const = 0;
  virtual sim::SimTime epoch_length() const = 0;

  // Active-set query; epoch indices start at 1 (epoch i covers
  // [(i-1)*m, i*m)).
  virtual bool is_active(int server, std::size_t epoch) const = 0;
  virtual std::vector<int> active_servers(std::size_t epoch) const = 0;

  // Probability that a given server is a honeypot in a given epoch.
  virtual double honeypot_probability() const = 0;

  std::size_t epoch_of(sim::SimTime t) const;
  sim::SimTime epoch_start(std::size_t epoch) const;
  sim::SimTime epoch_end(std::size_t epoch) const;
};

// The paper's k-of-N roaming schedule.
class RoamingSchedule final : public Schedule {
 public:
  RoamingSchedule(std::shared_ptr<const HashChain> chain, int n_servers,
                  int k_active, sim::SimTime epoch_length);

  int server_count() const override { return n_; }
  sim::SimTime epoch_length() const override { return m_; }
  bool is_active(int server, std::size_t epoch) const override;
  std::vector<int> active_servers(std::size_t epoch) const override;
  double honeypot_probability() const override {
    return static_cast<double>(n_ - k_) / static_cast<double>(n_);
  }
  int active_count() const { return k_; }

 private:
  std::uint64_t epoch_seed(std::size_t epoch) const;

  std::shared_ptr<const HashChain> chain_;
  int n_;
  int k_;
  sim::SimTime m_;
};

// Single-server schedule where each epoch is independently a honeypot epoch
// with probability p — the Bernoulli-trial model of the Section 7 analysis,
// used by the Fig. 6 validation sweeps (p is swept freely there, which k/N
// cannot express for one server).
class BernoulliSchedule final : public Schedule {
 public:
  BernoulliSchedule(std::shared_ptr<const HashChain> chain, double p,
                    sim::SimTime epoch_length);

  int server_count() const override { return 1; }
  sim::SimTime epoch_length() const override { return m_; }
  bool is_active(int server, std::size_t epoch) const override;
  std::vector<int> active_servers(std::size_t epoch) const override;
  double honeypot_probability() const override { return p_; }

 private:
  std::shared_ptr<const HashChain> chain_;
  double p_;
  sim::SimTime m_;
};

}  // namespace hbp::honeypot
