// Legitimate roaming client (Section 4, first deployment approach): tracks
// epoch lengths and active servers itself, holds a subscription key K_t,
// resubscribes when it expires, and re-targets a uniformly chosen active
// server each epoch.  A bounded clock skew (|skew| <= δ) models the loose
// synchronisation assumption; the server-side guard bands absorb packets
// the client sends around epoch boundaries.
#pragma once

#include <cstdint>

#include "honeypot/schedule.hpp"
#include "honeypot/server_pool.hpp"
#include "honeypot/subscription.hpp"
#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "traffic/cbr.hpp"
#include "util/rng.hpp"

namespace hbp::honeypot {

struct RoamingClientParams {
  traffic::CbrParams cbr;
  int trust_level = 4;
  sim::SimTime renewal_latency = sim::SimTime::millis(100);
  // Actual skew is drawn uniformly from [-max_clock_skew, +max_clock_skew];
  // must not exceed the pool's δ.
  sim::SimTime max_clock_skew = sim::SimTime::millis(100);
  bool handshake_on_new_server = true;
};

class RoamingClient {
 public:
  RoamingClient(sim::Simulator& simulator, net::Host& host, util::Rng& rng,
                const Schedule& schedule, SubscriptionService& subscription,
                const ServerPool& pool, const RoamingClientParams& params);

  // Subscribes and starts the CBR stream.
  void start();

  std::uint64_t packets_sent() const { return cbr_.packets_sent(); }
  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t renewals() const { return renewals_; }
  std::uint64_t packets_skipped() const { return skipped_; }
  sim::SimTime clock_skew() const { return skew_; }
  int current_server() const { return current_server_; }

 private:
  sim::Address next_destination();
  sim::SimTime local_time() const;

  sim::Simulator& simulator_;
  net::Host& host_;
  util::Rng& rng_;
  const Schedule& schedule_;
  SubscriptionService& subscription_;
  const ServerPool& pool_;
  RoamingClientParams params_;
  traffic::CbrSource cbr_;

  ClientKey key_{};
  sim::SimTime skew_ = sim::SimTime::zero();
  std::size_t cached_epoch_ = 0;
  int current_server_ = -1;
  bool renewing_ = false;
  std::uint64_t migrations_ = 0;
  std::uint64_t renewals_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace hbp::honeypot
