// The replicated server pool with roaming honeypots (Section 4).
//
// Each server alternates between serving (active) and acting as a honeypot
// according to the shared schedule.  Loose clock synchronisation is
// honoured with guard bands: an active role starts δ early and ends δ+γ
// late; the honeypot observation window of an inactive epoch is shrunk by
// the same guards so in-transit legitimate packets are never mistaken for
// attack traffic ("each service epoch starts earlier by δ at the new
// servers and ends later by δ+γ at the active servers").
//
// During a honeypot window every arriving packet is honeypot traffic; the
// pool notifies the defense (window start/end + per-packet hits), feeds the
// blacklist, and checkpoints/migrates connections at role changes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include <memory>

#include "honeypot/blacklist.hpp"
#include "honeypot/checkpoint.hpp"
#include "honeypot/schedule.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp.hpp"
#include "util/function_ref.hpp"

namespace hbp::honeypot {

struct ServerPoolParams {
  sim::SimTime delta = sim::SimTime::millis(200);  // clock-shift bound δ
  sim::SimTime gamma = sim::SimTime::millis(100);  // est. client-server delay γ
  std::size_t first_epoch = 1;
  std::size_t last_epoch = 1000;  // epochs to schedule
};

class ServerPool {
 public:
  // Non-owning listener refs: the callables must outlive the pool's run
  // (bind defense member functions, or name the lambdas at the call site).
  using WindowFn = util::function_ref<void(int server, std::size_t epoch)>;
  using HitFn = util::function_ref<void(int server, const sim::Packet&)>;
  using DeliveryFn = util::function_ref<void(int server, const sim::Packet&)>;

  ServerPool(sim::Simulator& simulator, net::Network& network,
             const Schedule& schedule, std::vector<sim::NodeId> server_nodes,
             std::vector<sim::Address> server_addrs, CheckpointStore& store,
             const ServerPoolParams& params);

  // Arms epoch transitions and packet handling; call once before running.
  void start();

  // Enables TCP service on the servers (for RoamingTcpClient workloads):
  // TCP packets arriving during active windows are handled by a per-server
  // TcpReceiver; during honeypot windows they are honeypot traffic like
  // everything else.  Call before start().
  void enable_tcp();
  transport::TcpReceiver* tcp_receiver(int server) {
    return tcp_.empty() ? nullptr : tcp_[static_cast<std::size_t>(server)].get();
  }

  // --- defense / metrics hooks (multiple listeners allowed) ---
  void add_honeypot_window_listener(WindowFn on_start, WindowFn on_end);
  void add_honeypot_hit_listener(HitFn fn) { hit_.push_back(fn); }
  void add_delivery_listener(DeliveryFn fn) { delivery_.push_back(fn); }

  // --- queries ---
  int server_count() const { return static_cast<int>(nodes_.size()); }
  sim::Address address(int server) const {
    return addrs_[static_cast<std::size_t>(server)];
  }
  sim::NodeId node(int server) const {
    return nodes_[static_cast<std::size_t>(server)];
  }
  int index_of(sim::Address addr) const;
  const Schedule& schedule() const { return schedule_; }
  Blacklist& blacklist() { return blacklist_; }

  bool in_active_window(int server, sim::SimTime t) const;
  bool in_honeypot_window(int server, sim::SimTime t) const;

  // Guard offsets of the honeypot observation window within an inactive
  // epoch: [start + guard, end - guard].  Both guards are δ+γ so that no
  // legitimate packet (bounded clock skew δ, path delay ~γ) can fall inside
  // the window — inside it, traffic is attack traffic by construction.
  sim::SimTime window_start_guard() const { return params_.delta + params_.gamma; }
  sim::SimTime window_end_guard() const { return params_.delta + params_.gamma; }

  // --- counters ---
  std::uint64_t honeypot_packets() const { return honeypot_packets_; }
  std::uint64_t honeypot_false_hits() const { return false_hits_; }
  std::uint64_t grace_drops() const { return grace_drops_; }
  std::uint64_t legit_bytes() const { return legit_bytes_; }
  std::uint64_t attack_bytes_served() const { return attack_bytes_served_; }
  std::uint64_t connections_migrated() const { return migrated_; }

 private:
  // Stored target for the per-server Host receiver ref: lives in
  // receivers_ (reserved once in start()) for the pool's lifetime.
  struct Receiver {
    ServerPool* pool;
    int server;
    void operator()(const sim::Packet& p) const {
      pool->handle_packet(server, p);
    }
  };

  void on_epoch(std::size_t epoch);
  void handle_packet(int server, const sim::Packet& p);
  void checkpoint_server(int server);

  sim::Simulator& simulator_;
  net::Network& network_;
  const Schedule& schedule_;
  std::vector<sim::NodeId> nodes_;
  std::vector<sim::Address> addrs_;
  CheckpointStore& store_;
  ServerPoolParams params_;

  Blacklist blacklist_;
  std::vector<Receiver> receivers_;
  std::vector<WindowFn> window_start_;
  std::vector<WindowFn> window_end_;
  std::vector<HitFn> hit_;
  std::vector<DeliveryFn> delivery_;

  // Per-server live connection state (client address -> state).
  std::vector<std::map<sim::Address, ConnectionState>> connections_;
  // Per-server TCP endpoints (empty unless enable_tcp() was called).
  std::vector<std::unique_ptr<transport::TcpReceiver>> tcp_;

  std::uint64_t honeypot_packets_ = 0;
  std::uint64_t false_hits_ = 0;   // benign packets in honeypot windows
  std::uint64_t grace_drops_ = 0;  // packets in guard gaps
  std::uint64_t legit_bytes_ = 0;
  std::uint64_t attack_bytes_served_ = 0;  // attack packets served while active
  std::uint64_t migrated_ = 0;
};

}  // namespace hbp::honeypot
