#include "honeypot/subscription.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hbp::honeypot {

ClientKey SubscriptionService::issue(std::size_t current_epoch,
                                     int trust_level) {
  HBP_ASSERT(current_epoch >= 1);
  HBP_ASSERT(trust_level >= 1);
  const std::size_t t =
      std::min(chain_->length(),
               current_epoch + static_cast<std::size_t>(trust_level) *
                                   epochs_per_level_);
  return ClientKey{chain_->key(t), t};
}

ClientKey SubscriptionService::subscribe(std::size_t current_epoch,
                                         int trust_level) {
  ++issued_;
  return issue(current_epoch, trust_level);
}

ClientKey SubscriptionService::renew(std::size_t current_epoch,
                                     int trust_level) {
  ++issued_;
  ++renewals_;
  return issue(current_epoch, trust_level);
}

bool SubscriptionService::valid(const ClientKey& key) const {
  if (key.epoch_limit < 1 || key.epoch_limit > chain_->length()) return false;
  return HashChain::verify(key.key, key.epoch_limit, chain_->key(1), 1);
}

}  // namespace hbp::honeypot
