#include "honeypot/server_pool.hpp"

#include "util/assert.hpp"

namespace hbp::honeypot {

ServerPool::ServerPool(sim::Simulator& simulator, net::Network& network,
                       const Schedule& schedule,
                       std::vector<sim::NodeId> server_nodes,
                       std::vector<sim::Address> server_addrs,
                       CheckpointStore& store, const ServerPoolParams& params)
    : simulator_(simulator),
      network_(network),
      schedule_(schedule),
      nodes_(std::move(server_nodes)),
      addrs_(std::move(server_addrs)),
      store_(store),
      params_(params) {
  HBP_ASSERT(nodes_.size() == addrs_.size());
  HBP_ASSERT(static_cast<int>(nodes_.size()) == schedule_.server_count());
  // The honeypot window must be non-empty.
  HBP_ASSERT(window_start_guard() + window_end_guard() <
             schedule_.epoch_length());
  connections_.resize(nodes_.size());
}

int ServerPool::index_of(sim::Address addr) const {
  for (std::size_t i = 0; i < addrs_.size(); ++i) {
    if (addrs_[i] == addr) return static_cast<int>(i);
  }
  return -1;
}

void ServerPool::enable_tcp() {
  if (!tcp_.empty()) return;
  tcp_.reserve(nodes_.size());
  for (const sim::NodeId node : nodes_) {
    tcp_.push_back(std::make_unique<transport::TcpReceiver>(
        simulator_, static_cast<net::Host&>(network_.node(node))));
  }
}

void ServerPool::start() {
  // The hosts keep non-owning refs to these thunks; reserve so push_back
  // never relocates them.
  receivers_.clear();
  receivers_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const int server = static_cast<int>(i);
    auto& host = static_cast<net::Host&>(network_.node(nodes_[i]));
    receivers_.push_back(Receiver{this, server});
    host.set_receiver(receivers_.back());
  }
  const sim::SimTime first = schedule_.epoch_start(params_.first_epoch);
  simulator_.at(first >= simulator_.now() ? first : simulator_.now(),
                [this] { on_epoch(params_.first_epoch); },
                "honeypot.pool.epoch");
}

bool ServerPool::in_active_window(int server, sim::SimTime t) const {
  // A server is "active" at t if some epoch e with is_active(server, e)
  // has t within [start(e) - δ, end(e) + δ + γ].  Only the epochs adjacent
  // to t can qualify.
  const std::size_t e = schedule_.epoch_of(t);
  for (std::size_t cand = (e > 1 ? e - 1 : e); cand <= e + 1; ++cand) {
    if (!schedule_.is_active(server, cand)) continue;
    const sim::SimTime lo = schedule_.epoch_start(cand) - params_.delta;
    const sim::SimTime hi =
        schedule_.epoch_end(cand) + params_.delta + params_.gamma;
    if (t >= lo && t <= hi) return true;
  }
  return false;
}

bool ServerPool::in_honeypot_window(int server, sim::SimTime t) const {
  const std::size_t e = schedule_.epoch_of(t);
  if (schedule_.is_active(server, e)) return false;
  if (in_active_window(server, t)) return false;  // grace of adjacent epochs
  const sim::SimTime lo = schedule_.epoch_start(e) + window_start_guard();
  const sim::SimTime hi = schedule_.epoch_end(e) - window_end_guard();
  return t >= lo && t <= hi;
}

void ServerPool::on_epoch(std::size_t epoch) {
  for (int s = 0; s < server_count(); ++s) {
    const bool active_now = schedule_.is_active(s, epoch);
    const bool active_before =
        epoch > 1 ? schedule_.is_active(s, epoch - 1) : active_now;

    if (!active_now) {
      // Schedule the honeypot observation window.
      const sim::SimTime w_start =
          schedule_.epoch_start(epoch) + window_start_guard();
      const sim::SimTime w_end =
          schedule_.epoch_end(epoch) - window_end_guard();
      simulator_.at(
          w_start,
          [this, s, epoch] {
            if (simulator_.tracing()) {
              simulator_.trace_event(
                  {simulator_.now(), sim::TraceVerb::kWindowStart,
                   nodes_[static_cast<std::size_t>(s)], 0, 0, s,
                   static_cast<std::int32_t>(epoch)});
            }
            for (const auto& fn : window_start_) fn(s, epoch);
          },
          "honeypot.pool.window");
      simulator_.at(
          w_end,
          [this, s, epoch] {
            if (simulator_.tracing()) {
              simulator_.trace_event(
                  {simulator_.now(), sim::TraceVerb::kWindowEnd,
                   nodes_[static_cast<std::size_t>(s)], 0, 0, s,
                   static_cast<std::int32_t>(epoch)});
            }
            for (const auto& fn : window_end_) fn(s, epoch);
          },
          "honeypot.pool.window");
    }

    if (active_before && !active_now) {
      // Role change active -> honeypot: checkpoint connections once the
      // grace period of the previous epoch expires.
      simulator_.at(schedule_.epoch_start(epoch) + window_start_guard(),
                    [this, s] { checkpoint_server(s); },
                    "honeypot.pool.checkpoint");
    }
  }

  if (epoch < params_.last_epoch) {
    simulator_.at(schedule_.epoch_start(epoch + 1),
                  [this, epoch] { on_epoch(epoch + 1); },
                  "honeypot.pool.epoch");
  }
}

void ServerPool::checkpoint_server(int server) {
  auto& conns = connections_[static_cast<std::size_t>(server)];
  for (auto& [client, state] : conns) {
    ++state.migrations;
    store_.deposit(state);
    ++migrated_;
  }
  conns.clear();
}

void ServerPool::handle_packet(int server, const sim::Packet& p) {
  const sim::SimTime now = simulator_.now();

  if (in_active_window(server, now)) {
    // Normal service.
    if (!tcp_.empty() && tcp_[static_cast<std::size_t>(server)]->handle(p)) {
      if (p.type == sim::PacketType::kTcpData && !p.is_attack) {
        legit_bytes_ += static_cast<std::uint64_t>(p.size_bytes);
      }
      for (const auto& fn : delivery_) fn(server, p);
      return;
    }
    if (p.type == sim::PacketType::kHandshakeSyn) {
      blacklist_.note_handshake(p.src);
      sim::Packet ack;
      ack.type = sim::PacketType::kHandshakeAck;
      ack.src = addrs_[static_cast<std::size_t>(server)];
      ack.dst = p.src;
      ack.size_bytes = 64;
      auto& host = static_cast<net::Host&>(
          network_.node(nodes_[static_cast<std::size_t>(server)]));
      host.send(std::move(ack));
    }

    if (p.is_attack) {
      attack_bytes_served_ += static_cast<std::uint64_t>(p.size_bytes);
    } else if (p.type == sim::PacketType::kData ||
               p.type == sim::PacketType::kRequest) {
      legit_bytes_ += static_cast<std::uint64_t>(p.size_bytes);
      auto& conns = connections_[static_cast<std::size_t>(server)];
      auto it = conns.find(p.src);
      if (it == conns.end()) {
        // New or migrated connection: resume from a checkpoint if one is
        // pending, else open fresh state.
        ConnectionState state;
        if (auto resumed = store_.claim(p.src)) {
          state = *resumed;
        } else {
          state.client = p.src;
        }
        state.server_index = server;
        it = conns.emplace(p.src, state).first;
      }
      it->second.bytes += static_cast<std::uint64_t>(p.size_bytes);
      it->second.last_update = now;
    }
    for (const auto& fn : delivery_) fn(server, p);
    return;
  }

  if (in_honeypot_window(server, now)) {
    ++honeypot_packets_;
    if (!p.is_attack) ++false_hits_;
    blacklist_.observed_at_honeypot(p.src);
    if (simulator_.tracing()) {
      simulator_.trace_event({now, sim::TraceVerb::kHoneypotHit,
                              nodes_[static_cast<std::size_t>(server)], p.uid,
                              0, server, p.is_attack ? 1 : 0});
    }
    for (const auto& fn : hit_) fn(server, p);
    return;
  }

  // Guard gap around role changes: tolerated, neither served nor reported.
  ++grace_drops_;
}

void ServerPool::add_honeypot_window_listener(WindowFn on_start, WindowFn on_end) {
  if (on_start) window_start_.push_back(on_start);
  if (on_end) window_end_.push_back(on_end);
}

}  // namespace hbp::honeypot
