#include "transport/tcp.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hbp::transport {

// ------------------------------------------------------------------ sender

TcpSender::TcpSender(sim::Simulator& simulator, net::Host& host,
                     const TcpParams& params)
    : simulator_(simulator), host_(host), params_(params), rto_(params.initial_rto) {
  host_.set_receiver(net::Host::ReceiveFn::bind<&TcpSender::on_receive>(*this));
}

void TcpSender::connect(sim::Address dst) {
  dst_ = dst;
  established_ = false;
  ++connection_generation_;
  // Migration keeps the byte-stream progress (the checkpointed state) but
  // restarts congestion control from slow start — the Section 5.3 cost.
  snd_nxt_ = snd_una_;
  cwnd_ = params_.initial_cwnd_segments * params_.mss_bytes;
  ssthresh_ = params_.initial_ssthresh_segments * params_.mss_bytes;
  dupacks_ = 0;
  in_recovery_ = false;
  rto_ = params_.initial_rto;
  rtt_sample_valid_ = false;
  if (rto_armed_) {
    simulator_.cancel(rto_event_);
    rto_armed_ = false;
  }
  send_syn();
}

void TcpSender::send_syn() {
  ++handshakes_;
  sim::Packet syn;
  syn.type = sim::PacketType::kTcpSyn;
  syn.src = host_.address();
  syn.dst = dst_;
  syn.size_bytes = 64;
  // Checkpoint resume (Section 4): a migrated connection tells the new
  // server where the stream left off.
  syn.seq = snd_una_;
  host_.send(std::move(syn));
  // Handshake loss recovery rides on the same RTO machinery.
  arm_rto();
}

void TcpSender::on_receive(const sim::Packet& p) {
  if (p.src != dst_) return;  // stale packet from a pre-migration server
  switch (p.type) {
    case sim::PacketType::kTcpSynAck:
      on_syn_ack();
      break;
    case sim::PacketType::kTcpAck:
      on_ack(p.ack);
      break;
    default:
      break;
  }
}

void TcpSender::on_syn_ack() {
  if (established_) return;
  established_ = true;
  if (rto_armed_) {
    simulator_.cancel(rto_event_);
    rto_armed_ = false;
  }
  send_available();
}

void TcpSender::send_available() {
  if (!established_) return;
  const auto window_end =
      snd_una_ + static_cast<std::int64_t>(cwnd_);
  while (snd_nxt_ + params_.mss_bytes <= window_end) {
    send_segment(snd_nxt_);
    // RTT sampling: first new (non-retransmitted) segment in flight.
    if (!rtt_sample_valid_) {
      rtt_seq_ = snd_nxt_;
      rtt_sent_at_ = simulator_.now();
      rtt_sample_valid_ = true;
    }
    snd_nxt_ += params_.mss_bytes;
  }
  if (snd_nxt_ > snd_una_) arm_rto();
}

void TcpSender::send_segment(std::int64_t seq) {
  sim::Packet p;
  p.type = sim::PacketType::kTcpData;
  p.src = host_.address();
  p.dst = dst_;
  p.size_bytes = params_.mss_bytes;
  p.seq = seq;
  host_.send(std::move(p));
}

void TcpSender::update_rtt(double sample_s) {
  if (!have_rtt_) {
    srtt_ = sample_s;
    rttvar_ = sample_s / 2.0;
    have_rtt_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample_s);
    srtt_ = 0.875 * srtt_ + 0.125 * sample_s;
  }
  const double rto_s =
      std::clamp(srtt_ + 4.0 * rttvar_, params_.min_rto.to_seconds(),
                 params_.max_rto.to_seconds());
  rto_ = sim::SimTime::seconds(rto_s);
}

void TcpSender::on_ack(std::int64_t ack) {
  if (!established_) return;

  if (ack > snd_una_) {
    // New data acknowledged.
    if (rtt_sample_valid_ && ack > rtt_seq_) {
      update_rtt((simulator_.now() - rtt_sent_at_).to_seconds());
      rtt_sample_valid_ = false;
    }
    snd_una_ = ack;
    dupacks_ = 0;
    if (in_recovery_ && ack >= recovery_point_) {
      in_recovery_ = false;
    }
    if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += params_.mss_bytes;  // slow start
      } else {
        cwnd_ += static_cast<double>(params_.mss_bytes) * params_.mss_bytes /
                 cwnd_;  // congestion avoidance
      }
    }
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    if (rto_armed_) {
      simulator_.cancel(rto_event_);
      rto_armed_ = false;
    }
    send_available();
    return;
  }

  if (ack == snd_una_ && snd_nxt_ > snd_una_) {
    ++dupacks_;
    if (dupacks_ == params_.dupack_threshold && !in_recovery_) {
      // Fast retransmit / recovery (Reno).
      in_recovery_ = true;
      recovery_point_ = snd_nxt_;
      ssthresh_ = std::max(cwnd_ / 2.0,
                           2.0 * params_.mss_bytes);
      cwnd_ = ssthresh_;
      ++retransmits_;
      rtt_sample_valid_ = false;  // Karn: retransmission poisons the sample
      if (simulator_.tracing()) {
        simulator_.trace_event(
            {simulator_.now(), sim::TraceVerb::kTcpFastRetransmit, host_.id(),
             0, 0, static_cast<std::int32_t>(snd_una_ & 0x7fffffff),
             dupacks_});
      }
      send_segment(snd_una_);
      arm_rto();
    }
  }
}

void TcpSender::arm_rto() {
  if (rto_armed_) {
    simulator_.cancel(rto_event_);
  }
  rto_armed_ = true;
  const auto generation = connection_generation_;
  rto_event_ = simulator_.after(
      rto_,
      [this, generation] {
        if (generation != connection_generation_) return;
        rto_armed_ = false;
        on_rto();
      },
      "transport.tcp.rto");
}

void TcpSender::on_rto() {
  ++timeouts_;
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kTcpTimeout,
                            host_.id(), 0, 0,
                            static_cast<std::int32_t>(snd_una_ & 0x7fffffff),
                            established_ ? 1 : 0});
  }
  rto_ = sim::SimTime(std::min((rto_ * 2).nanos(), params_.max_rto.nanos()));
  if (!established_) {
    send_syn();
    return;
  }
  // Timeout: back to slow start, retransmit the lost head.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * params_.mss_bytes);
  cwnd_ = params_.mss_bytes;
  dupacks_ = 0;
  in_recovery_ = false;
  snd_nxt_ = snd_una_;
  rtt_sample_valid_ = false;
  ++retransmits_;
  send_segment(snd_una_);
  snd_nxt_ = snd_una_ + params_.mss_bytes;
  arm_rto();
}

// ---------------------------------------------------------------- receiver

TcpReceiver::TcpReceiver(sim::Simulator& simulator, net::Host& host)
    : simulator_(simulator), host_(host) {}

void TcpReceiver::attach() {
  // handle() returns bool; the ref's void trampoline discards it.
  host_.set_receiver(net::Host::ReceiveFn::bind<&TcpReceiver::handle>(*this));
}

bool TcpReceiver::handle(const sim::Packet& p) {
  switch (p.type) {
    case sim::PacketType::kTcpSyn: {
      // Fresh connection or migration re-handshake.  The SYN carries the
      // checkpointed stream position so the new server resumes where the
      // old one stopped.
      auto [it, created] = peers_.try_emplace(p.src);
      if (created) it->second.rcv_nxt = p.seq;
      sim::Packet syn_ack;
      syn_ack.type = sim::PacketType::kTcpSynAck;
      syn_ack.src = host_.address();
      syn_ack.dst = p.src;
      syn_ack.size_bytes = 64;
      host_.send(std::move(syn_ack));
      return true;
    }
    case sim::PacketType::kTcpData: {
      auto& state = peers_[p.src];
      mss_bytes_ = p.size_bytes;
      if (p.seq == state.rcv_nxt) {
        state.rcv_nxt += p.size_bytes;
        state.delivered += p.size_bytes;
        total_delivered_ += p.size_bytes;
        // Drain any buffered continuation.
        auto it = state.out_of_order.begin();
        while (it != state.out_of_order.end() && *it == state.rcv_nxt) {
          state.rcv_nxt += mss_bytes_;
          state.delivered += mss_bytes_;
          total_delivered_ += mss_bytes_;
          it = state.out_of_order.erase(it);
        }
      } else if (p.seq > state.rcv_nxt) {
        state.out_of_order.insert(p.seq);
      }  // else: duplicate of already-delivered data; just re-ack
      send_ack(p.src, state);
      return true;
    }
    default:
      return false;
  }
}

void TcpReceiver::send_ack(sim::Address peer, const PeerState& state) {
  sim::Packet ack;
  ack.type = sim::PacketType::kTcpAck;
  ack.src = host_.address();
  ack.dst = peer;
  ack.size_bytes = 64;
  ack.ack = state.rcv_nxt;
  host_.send(std::move(ack));
}

std::int64_t TcpReceiver::bytes_delivered(sim::Address peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.delivered;
}

}  // namespace hbp::transport
