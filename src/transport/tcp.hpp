// TCP-lite: a minimal Reno-style reliable byte stream over the simulator.
//
// The paper's damage model (Section 3) is partly about TCP: the attack
// "degrad[es] the throughput of both TCP flows from servers to clients as
// well as data flows from clients into servers.  For example, if TCP ACK
// packets from clients to servers get dropped due to the attack, the
// throughput of TCP flows is degraded."  And the roaming overhead
// discussion (Section 5.3) notes that migrated connections "re-establish
// TCP connections and re-enter TCP slow-start, losing their current TCP
// throughput."
//
// This module implements just enough of TCP to reproduce those effects:
// a 2-way handshake, MSS-sized segments, cumulative ACKs, slow start /
// congestion avoidance, fast retransmit on three duplicate ACKs, and an
// RTO with exponential backoff and RTT estimation.  No SACK, no Nagle, no
// receive-window limit (the receiver consumes instantly).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "net/host.hpp"
#include "sim/simulator.hpp"

namespace hbp::transport {

struct TcpParams {
  std::int32_t mss_bytes = 1000;
  double initial_cwnd_segments = 2.0;
  double initial_ssthresh_segments = 64.0;
  sim::SimTime initial_rto = sim::SimTime::seconds(1);
  sim::SimTime min_rto = sim::SimTime::millis(200);
  sim::SimTime max_rto = sim::SimTime::seconds(60);
  int dupack_threshold = 3;
};

// Greedy sender: always has data to send (a bulk transfer).  Attach to a
// Host; it owns the host's receive callback while connected.
class TcpSender {
 public:
  TcpSender(sim::Simulator& simulator, net::Host& host,
            const TcpParams& params = {});

  // Starts (or restarts) a connection to `dst`.  Re-connecting to a new
  // destination models the roaming migration: sequence progress carries
  // over (the checkpoint), but the handshake and slow start repeat.
  void connect(sim::Address dst);

  bool established() const { return established_; }
  sim::Address destination() const { return dst_; }

  std::int64_t bytes_acked() const { return snd_una_; }
  double cwnd_segments() const { return cwnd_ / params_.mss_bytes; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t handshakes() const { return handshakes_; }
  double srtt_seconds() const { return srtt_; }

 private:
  void on_receive(const sim::Packet& p);
  void on_syn_ack();
  void on_ack(std::int64_t ack);
  void send_available();
  void send_segment(std::int64_t seq);
  void send_syn();
  void arm_rto();
  void on_rto();
  void update_rtt(double sample_s);

  sim::Simulator& simulator_;
  net::Host& host_;
  TcpParams params_;
  sim::Address dst_ = 0;
  bool established_ = false;

  std::int64_t snd_una_ = 0;   // lowest unacknowledged byte
  std::int64_t snd_nxt_ = 0;   // next byte to send
  double cwnd_ = 0;            // bytes
  double ssthresh_ = 0;        // bytes
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recovery_point_ = 0;

  sim::SimTime rto_;
  sim::EventId rto_event_ = 0;
  bool rto_armed_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  bool have_rtt_ = false;
  // Timestamp of the segment used for RTT sampling (Karn's rule: only
  // segments that were not retransmitted are sampled).
  std::int64_t rtt_seq_ = -1;
  sim::SimTime rtt_sent_at_ = sim::SimTime::zero();
  bool rtt_sample_valid_ = false;

  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t handshakes_ = 0;
  std::uint64_t connection_generation_ = 0;
};

// Receiver: acknowledges every arriving segment with the cumulative
// in-order byte count; buffers out-of-order segments.  One receiver can
// serve many senders (keyed by peer address).
class TcpReceiver {
 public:
  explicit TcpReceiver(sim::Simulator& simulator, net::Host& host);

  // Handles one packet if it is TCP; returns false for non-TCP packets so
  // the owner can layer other protocols on the same host.
  bool handle(const sim::Packet& p);

  // Installs this receiver as the host's receive callback.
  void attach();

  std::int64_t bytes_delivered(sim::Address peer) const;
  std::int64_t total_bytes_delivered() const { return total_delivered_; }

 private:
  struct PeerState {
    std::int64_t rcv_nxt = 0;          // next expected byte
    std::set<std::int64_t> out_of_order;  // buffered segment starts
    std::int64_t delivered = 0;
  };

  void send_ack(sim::Address peer, const PeerState& state);

  sim::Simulator& simulator_;
  net::Host& host_;
  std::map<sim::Address, PeerState> peers_;
  std::int32_t mss_bytes_ = 1000;
  std::int64_t total_delivered_ = 0;
};

}  // namespace hbp::transport
