// Max-min fair allocation (water-filling).
//
// Pushback shares an aggregate's rate limit among contributing input ports
// "in a max-min fairness fashion" (Section 2): ports demanding less than
// the fair share keep their demand; the remainder is split equally among
// the rest, iteratively.  The weighted form implements the Level-k
// max-min-fairness extension, where a port's share scales with the number
// of end hosts behind it.
#pragma once

#include <span>
#include <vector>

namespace hbp::pushback {

// Returns allocations a_i with a_i <= demands_i and sum(a_i) <= limit,
// max-min fair.  If sum(demands) <= limit every demand is fully granted.
std::vector<double> maxmin_allocate(std::span<const double> demands,
                                    double limit);

// Weighted max-min: fair shares are proportional to weights_i (> 0).
std::vector<double> maxmin_allocate_weighted(std::span<const double> demands,
                                             std::span<const double> weights,
                                             double limit);

}  // namespace hbp::pushback
