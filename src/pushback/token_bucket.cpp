#include "pushback/token_bucket.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hbp::pushback {

TokenBucket::TokenBucket(double rate_bps, double burst_bytes, sim::SimTime now)
    : rate_bps_(rate_bps),
      burst_bytes_(burst_bytes),
      tokens_bytes_(burst_bytes),
      last_(now) {
  HBP_ASSERT(rate_bps >= 0.0);
  HBP_ASSERT(burst_bytes > 0.0);
}

void TokenBucket::refill(sim::SimTime now) {
  if (now <= last_) return;
  const double elapsed = (now - last_).to_seconds();
  tokens_bytes_ = std::min(burst_bytes_, tokens_bytes_ + elapsed * rate_bps_ / 8.0);
  last_ = now;
}

bool TokenBucket::allow(sim::SimTime now, std::int64_t bytes) {
  refill(now);
  if (tokens_bytes_ >= static_cast<double>(bytes)) {
    tokens_bytes_ -= static_cast<double>(bytes);
    ++passed_;
    return true;
  }
  ++dropped_;
  return false;
}

}  // namespace hbp::pushback
