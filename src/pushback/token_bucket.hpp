// Token-bucket rate limiter enforcing an aggregate's pushback limit.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hbp::pushback {

class TokenBucket {
 public:
  TokenBucket(double rate_bps, double burst_bytes, sim::SimTime now);

  // Consumes tokens for `bytes` if available; returns false (drop) if not.
  bool allow(sim::SimTime now, std::int64_t bytes);

  void set_rate(double rate_bps) { rate_bps_ = rate_bps; }
  double rate_bps() const { return rate_bps_; }

  std::uint64_t passed() const { return passed_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  void refill(sim::SimTime now);

  double rate_bps_;
  double burst_bytes_;
  double tokens_bytes_;
  sim::SimTime last_;
  std::uint64_t passed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hbp::pushback
