#include "pushback/maxmin.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hbp::pushback {

std::vector<double> maxmin_allocate_weighted(std::span<const double> demands,
                                             std::span<const double> weights,
                                             double limit) {
  HBP_ASSERT(demands.size() == weights.size());
  HBP_ASSERT(limit >= 0.0);
  const std::size_t n = demands.size();
  std::vector<double> alloc(n, 0.0);
  if (n == 0) return alloc;

  std::vector<bool> frozen(n, false);
  double remaining = limit;
  double active_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    HBP_ASSERT(demands[i] >= 0.0);
    HBP_ASSERT(weights[i] > 0.0);
    active_weight += weights[i];
  }

  // Water-filling: repeatedly grant each unfrozen demand its weighted fair
  // share; demands below the share are satisfied and freeze, releasing
  // capacity for the rest.  Terminates in at most n rounds.
  for (;;) {
    if (remaining <= 0.0 || active_weight <= 0.0) break;
    bool any_frozen = false;
    const double per_weight = remaining / active_weight;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      if (demands[i] <= per_weight * weights[i]) {
        alloc[i] = demands[i];
        remaining -= demands[i];
        active_weight -= weights[i];
        frozen[i] = true;
        any_frozen = true;
      }
    }
    if (!any_frozen) {
      // Everyone left is capped at the fair share.
      for (std::size_t i = 0; i < n; ++i) {
        if (!frozen[i]) alloc[i] = per_weight * weights[i];
      }
      break;
    }
  }
  return alloc;
}

std::vector<double> maxmin_allocate(std::span<const double> demands,
                                    double limit) {
  const std::vector<double> weights(demands.size(), 1.0);
  return maxmin_allocate_weighted(demands, weights, limit);
}

}  // namespace hbp::pushback
