// Pushback / Aggregate-based Congestion Control (ACC) — the baseline
// defense the paper compares against (Mahajan et al. "Controlling high
// bandwidth aggregates in the network", Ioannidis & Bellovin "Implementing
// Pushback").
//
// Every router runs an agent.  A window timer rolls per-output-port
// statistics; when an output link's drop rate crosses the congestion
// threshold, the agent identifies the high-bandwidth aggregates (per
// destination address — the paper's note that "the server's destination
// address defines the malicious aggregate" applies to both schemes),
// rate-limits them with token buckets, and propagates each aggregate's
// limit upstream, split max-min across the contributing input ports.
// Upstream agents recurse until max_depth.  Sessions expire unless
// refreshed; cancels propagate when congestion clears.
//
// The hop-by-hop max-min split deliberately ignores how many end hosts sit
// behind each input port — reproducing the collateral-damage behaviour of
// Fig. 10/11.  The optional per-port weights implement the Level-k
// max-min-fairness variant (Section 2, "Mitigation") as an ablation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "net/control_plane.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "pushback/token_bucket.hpp"
#include "sim/simulator.hpp"

namespace hbp::telemetry {
class Registry;
}

namespace hbp::pushback {

struct PushbackParams {
  sim::SimTime interval = sim::SimTime::seconds(1);
  double congestion_drop_rate = 0.05;  // output drop fraction triggering ACC
  double target_utilization = 0.90;    // post-control load on the link
  int max_depth = 8;                   // pushback propagation depth
  int expiry_windows = 3;              // sessions expire without refresh
  double min_limit_bps = 8'000;        // floor for any aggregate limit
  double bucket_burst_bytes = 10'000;
  // Aggregates are destination *prefixes* (address >> prefix_shift): ACC
  // has no per-flow attack signature, so the identified aggregate lumps the
  // whole victim pool (and innocent neighbors) together — the coarse
  // signature whose collateral damage the paper contrasts with HBP's
  // per-honeypot-address signature.
  int aggregate_prefix_shift = 3;
};

// Aggregate signature: destination prefix.
using AggregateKey = sim::Address;

class PushbackSystem;

class PushbackAgent final : public net::PacketFilter, public net::ForwardTap {
 public:
  PushbackAgent(PushbackSystem& system, net::Router& router);
  ~PushbackAgent() override;

  PushbackAgent(const PushbackAgent&) = delete;
  PushbackAgent& operator=(const PushbackAgent&) = delete;

  // PacketFilter: enforce aggregate rate limits.
  net::FilterAction on_packet(const sim::Packet& p, int in_port) override;

  // ForwardTap: per-window arrival accounting.
  void on_forward(const sim::Packet& p, int in_port, int out_port) override;

  // Window roll: congestion detection, limit recomputation, propagation.
  void on_timer();

  // Control-plane deliveries.
  void receive_request(AggregateKey agg, double limit_bps, int depth,
                       sim::NodeId from);
  void receive_cancel(AggregateKey agg, sim::NodeId from);
  // Upstream demand feedback (ACC status messages): without it the
  // congested router would mistake upstream limiting for the attack having
  // ended and oscillate.
  void receive_status(AggregateKey agg, double demand_bps);

  std::size_t active_sessions() const { return sessions_.size(); }
  std::uint64_t limited_drops() const { return limited_drops_; }

 private:
  struct PortWindow {
    std::uint64_t arrived_bytes = 0;   // offered to the output queue
    std::uint64_t dropped_bytes = 0;   // dropped by the output queue
  };
  // Stored target for the per-port queue drop-observer ref: lives in
  // drop_thunks_ (reserved once in the constructor) for the agent's lifetime.
  struct DropThunk {
    PushbackAgent* agent;
    std::size_t port;
    void operator()(const sim::Packet& dropped) const {
      agent->ports_[port].dropped_bytes +=
          static_cast<std::uint64_t>(dropped.size_bytes);
    }
  };
  struct Session {
    double limit_bps = 0.0;
    int depth = 0;
    bool self_originated = false;
    std::set<sim::NodeId> requesters;   // downstream routers holding us to it
    int windows_since_refresh = 0;
    int calm_windows = 0;               // congestion-free windows (self only)
    double reported_demand_bps = 0.0;   // upstream status feedback, per window
    std::unique_ptr<TokenBucket> bucket;
    std::set<int> upstream_ports;       // ports we sent requests through
  };

  AggregateKey key_of(const sim::Packet& p) const;
  void detect_congestion();
  void propagate(AggregateKey agg, Session& session);
  void remove_session(AggregateKey agg, Session& session);

  PushbackSystem& system_;
  net::Router& router_;
  std::vector<PortWindow> ports_;
  std::vector<DropThunk> drop_thunks_;
  // Window accounting keyed by aggregate signature (destination prefix).
  std::map<std::pair<AggregateKey, int>, std::uint64_t> bytes_by_agg_outport_;
  std::map<std::pair<AggregateKey, int>, std::uint64_t> bytes_by_agg_inport_;
  // Bytes the local rate limiter dropped this window: evidence the
  // aggregate's demand still exceeds its limit even though the output
  // queue looks calm.
  std::map<AggregateKey, std::uint64_t> limited_bytes_;
  std::map<AggregateKey, Session> sessions_;
  std::uint64_t limited_drops_ = 0;
};

class PushbackSystem {
 public:
  PushbackSystem(sim::Simulator& simulator, net::Network& network,
                 net::ControlPlane& control, const PushbackParams& params);

  // Installs agents on the given routers and starts the window timer.
  void install(std::span<const sim::NodeId> routers);

  // Level-k extension: weight for (router, in_port) — e.g. number of leaf
  // hosts behind the port.  Unset => plain pushback (weight 1).
  void set_port_weights(sim::NodeId router, std::vector<double> weights);
  double port_weight(sim::NodeId router, int port) const;

  // Message transport between agents (1 control hop each).
  void send_request(sim::NodeId from, sim::NodeId to, AggregateKey agg,
                    double limit_bps, int depth);
  void send_cancel(sim::NodeId from, sim::NodeId to, AggregateKey agg);
  void send_status(sim::NodeId to, AggregateKey agg, double demand_bps);

  PushbackAgent* agent(sim::NodeId router);

  const PushbackParams& params() const { return params_; }
  sim::Simulator& simulator() { return simulator_; }
  net::Network& network() { return network_; }

  // --- aggregate statistics ---
  std::uint64_t requests_sent() const { return requests_; }
  std::uint64_t cancels_sent() const { return cancels_; }
  std::uint64_t total_limited_drops() const;
  std::size_t total_sessions() const;

  // End-of-run snapshot: system-wide counters ("pushback.*") plus a
  // histogram of per-agent rate-limiter drops.
  void export_telemetry(telemetry::Registry& registry) const;

 private:
  void on_timer();

  sim::Simulator& simulator_;
  net::Network& network_;
  net::ControlPlane& control_;
  PushbackParams params_;
  std::map<sim::NodeId, std::unique_ptr<PushbackAgent>> agents_;
  std::map<sim::NodeId, std::vector<double>> port_weights_;
  std::uint64_t requests_ = 0;
  std::uint64_t cancels_ = 0;
  bool timer_started_ = false;
};

}  // namespace hbp::pushback
