#include "pushback/agent.hpp"

#include <algorithm>

#include "pushback/maxmin.hpp"
#include "telemetry/registry.hpp"
#include "util/assert.hpp"

namespace hbp::pushback {

PushbackAgent::PushbackAgent(PushbackSystem& system, net::Router& router)
    : system_(system), router_(router) {
  ports_.resize(router.port_count());
  router_.add_filter(this);
  router_.add_tap(this);
  // The queues keep non-owning refs to these thunks; reserve so push_back
  // never relocates them.
  drop_thunks_.reserve(router.port_count());
  for (std::size_t p = 0; p < router.port_count(); ++p) {
    drop_thunks_.push_back(DropThunk{this, p});
    system_.network()
        .link(router.id(), static_cast<int>(p))
        .queue()
        .set_drop_observer(drop_thunks_.back());
  }
}

PushbackAgent::~PushbackAgent() {
  router_.remove_filter(this);
  router_.remove_tap(this);
  for (std::size_t p = 0; p < router_.port_count(); ++p) {
    system_.network()
        .link(router_.id(), static_cast<int>(p))
        .queue()
        .set_drop_observer({});
  }
}

AggregateKey PushbackAgent::key_of(const sim::Packet& p) const {
  return p.dst >> system_.params().aggregate_prefix_shift;
}

net::FilterAction PushbackAgent::on_packet(const sim::Packet& p, int in_port) {
  const AggregateKey agg = key_of(p);
  const auto it = sessions_.find(agg);
  if (it == sessions_.end()) return net::FilterAction::kPass;
  if (it->second.bucket->allow(system_.simulator().now(), p.size_bytes)) {
    return net::FilterAction::kPass;
  }
  ++limited_drops_;
  sim::Simulator& simulator = system_.simulator();
  if (simulator.tracing()) {
    simulator.trace_event({simulator.now(), sim::TraceVerb::kPushbackLimit,
                           router_.id(), p.uid,
                           static_cast<std::uint64_t>(agg), in_port, -1});
  }
  // Limited bytes still count as demand for the upstream max-min split and
  // as congestion pressure for the calm detector.
  limited_bytes_[agg] += static_cast<std::uint64_t>(p.size_bytes);
  bytes_by_agg_inport_[{agg, in_port}] +=
      static_cast<std::uint64_t>(p.size_bytes);
  return net::FilterAction::kDrop;
}

void PushbackAgent::on_forward(const sim::Packet& p, int in_port, int out_port) {
  auto& port = ports_[static_cast<std::size_t>(out_port)];
  port.arrived_bytes += static_cast<std::uint64_t>(p.size_bytes);
  const AggregateKey agg = key_of(p);
  bytes_by_agg_outport_[{agg, out_port}] +=
      static_cast<std::uint64_t>(p.size_bytes);
  bytes_by_agg_inport_[{agg, in_port}] +=
      static_cast<std::uint64_t>(p.size_bytes);
}

void PushbackAgent::detect_congestion() {
  const double interval_s = system_.params().interval.to_seconds();
  std::vector<bool> congested_port(ports_.size(), false);
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    const PortWindow& win = ports_[p];
    if (win.arrived_bytes == 0) continue;
    const double offered = static_cast<double>(win.arrived_bytes);
    const auto& link = system_.network().link(router_.id(), static_cast<int>(p));
    const double capacity = link.capacity_bps();
    const double drop_fraction =
        static_cast<double>(win.dropped_bytes) / offered;
    const double offered_bps = offered * 8.0 / interval_s;

    const bool congested =
        drop_fraction > system_.params().congestion_drop_rate &&
        offered_bps > capacity;
    if (!congested) continue;
    congested_port[p] = true;

    // ACC: bring the post-control load down to target_utilization.
    const double target_bps = system_.params().target_utilization * capacity;
    const double excess_bps = offered_bps - target_bps;
    if (excess_bps <= 0) continue;

    // Identify the responsible aggregates: the largest destination prefixes
    // through this port, until removing them would clear the excess.
    std::vector<std::pair<double, AggregateKey>> heavy;
    for (const auto& [key, bytes] : bytes_by_agg_outport_) {
      if (key.second != static_cast<int>(p)) continue;
      heavy.emplace_back(static_cast<double>(bytes) * 8.0 / interval_s,
                         key.first);
    }
    std::sort(heavy.rbegin(), heavy.rend());

    double picked_bps = 0.0;
    std::vector<std::pair<double, AggregateKey>> picked;
    for (const auto& [rate, agg] : heavy) {
      if (picked_bps >= excess_bps) break;
      picked.emplace_back(rate, agg);
      picked_bps += rate;
    }
    if (picked.empty()) continue;

    // The picked aggregates share whatever fits beside the untouched
    // traffic, max-min by demand.
    const double allowed_total =
        std::max(0.0, target_bps - (offered_bps - picked_bps));
    std::vector<double> demands;
    demands.reserve(picked.size());
    for (const auto& [rate, agg] : picked) demands.push_back(rate);
    const auto limits = maxmin_allocate(demands, allowed_total);

    for (std::size_t i = 0; i < picked.size(); ++i) {
      const AggregateKey agg = picked[i].second;
      const double limit =
          std::max(limits[i], system_.params().min_limit_bps);
      auto [it, created] = sessions_.try_emplace(agg);
      Session& session = it->second;
      session.self_originated = true;
      session.calm_windows = 0;
      session.limit_bps = limit;
      session.depth = 0;
      if (created) {
        session.bucket = std::make_unique<TokenBucket>(
            limit, system_.params().bucket_burst_bytes,
            system_.simulator().now());
      } else {
        session.bucket->set_rate(limit);
      }
    }
  }

  // Calm accounting for self-originated sessions: the aggregate is calm
  // only when its output port stopped overflowing AND the local limiter is
  // no longer shedding meaningful demand (otherwise the limiter itself is
  // what keeps the queue quiet and the control must persist).
  for (auto& [agg, session] : sessions_) {
    if (!session.self_originated) continue;
    const auto it = limited_bytes_.find(agg);
    const double limited_bps =
        it == limited_bytes_.end()
            ? 0.0
            : static_cast<double>(it->second) * 8.0 / interval_s;
    bool congested =
        limited_bps > system_.params().min_limit_bps ||
        session.reported_demand_bps > session.limit_bps * 1.05;
    if (!congested) {
      for (std::size_t p = 0; p < ports_.size(); ++p) {
        if (congested_port[p] &&
            bytes_by_agg_outport_.contains({agg, static_cast<int>(p)})) {
          congested = true;
          break;
        }
      }
    }
    if (congested) {
      session.calm_windows = 0;
    } else {
      ++session.calm_windows;
    }
  }
}

void PushbackAgent::propagate(AggregateKey agg, Session& session) {
  if (session.depth >= system_.params().max_depth) return;

  // Demands per contributing input port (router neighbors only).
  std::vector<int> in_ports;
  std::vector<double> demands;
  std::vector<double> weights;
  const double interval_s = system_.params().interval.to_seconds();
  for (std::size_t port = 0; port < router_.port_count(); ++port) {
    const auto it = bytes_by_agg_inport_.find({agg, static_cast<int>(port)});
    if (it == bytes_by_agg_inport_.end() || it->second == 0) continue;
    const sim::NodeId neighbor = router_.neighbor(port);
    if (system_.network().node(neighbor).kind() != net::NodeKind::kRouter) {
      continue;
    }
    in_ports.push_back(static_cast<int>(port));
    demands.push_back(static_cast<double>(it->second) * 8.0 / interval_s);
    weights.push_back(system_.port_weight(router_.id(), static_cast<int>(port)));
  }
  if (in_ports.empty()) return;

  const auto alloc =
      maxmin_allocate_weighted(demands, weights, session.limit_bps);
  for (std::size_t i = 0; i < in_ports.size(); ++i) {
    // Constrain contributors that exceed their share, and keep refreshing
    // ports already under a limit (their measured demand is post-limiting,
    // so it no longer looks excessive — dropping the refresh would let the
    // constraint expire and the flood resurge).
    if (alloc[i] >= demands[i] * 0.95 &&
        !session.upstream_ports.contains(in_ports[i])) {
      continue;
    }
    const double limit = std::max(alloc[i], system_.params().min_limit_bps);
    session.upstream_ports.insert(in_ports[i]);
    system_.send_request(router_.id(),
                         router_.neighbor(static_cast<std::size_t>(in_ports[i])),
                         agg, limit, session.depth + 1);
  }
}

void PushbackAgent::remove_session(AggregateKey agg, Session& session) {
  for (const int port : session.upstream_ports) {
    system_.send_cancel(router_.id(),
                        router_.neighbor(static_cast<std::size_t>(port)), agg);
  }
  sessions_.erase(agg);
}

void PushbackAgent::on_timer() {
  detect_congestion();

  const double interval_s = system_.params().interval.to_seconds();
  std::vector<AggregateKey> to_remove;
  for (auto& [agg, session] : sessions_) {
    if (session.self_originated) {
      if (session.calm_windows >= system_.params().expiry_windows) {
        to_remove.push_back(agg);
        continue;
      }
    } else {
      ++session.windows_since_refresh;
      if (session.windows_since_refresh > system_.params().expiry_windows) {
        to_remove.push_back(agg);
        continue;
      }
    }
    session.reported_demand_bps = 0.0;  // refreshed by incoming status

    // ACC status feedback: report this router's observed demand for the
    // aggregate (forwarded + locally limited) to whoever imposed the limit.
    if (!session.requesters.empty()) {
      double demand_bytes = 0.0;
      for (std::size_t port = 0; port < router_.port_count(); ++port) {
        const auto it = bytes_by_agg_inport_.find({agg, static_cast<int>(port)});
        if (it != bytes_by_agg_inport_.end()) {
          demand_bytes += static_cast<double>(it->second);
        }
      }
      const double demand_bps = demand_bytes * 8.0 / interval_s;
      for (const sim::NodeId requester : session.requesters) {
        system_.send_status(requester, agg, demand_bps);
      }
    }

    propagate(agg, session);
  }
  for (const AggregateKey agg : to_remove) {
    remove_session(agg, sessions_.at(agg));
  }

  // Roll the window.
  for (auto& port : ports_) port = PortWindow{};
  bytes_by_agg_outport_.clear();
  bytes_by_agg_inport_.clear();
  limited_bytes_.clear();
}

void PushbackAgent::receive_request(AggregateKey agg, double limit_bps,
                                    int depth, sim::NodeId from) {
  auto [it, created] = sessions_.try_emplace(agg);
  Session& session = it->second;
  if (session.self_originated) {
    limit_bps = std::min(limit_bps, session.limit_bps);
  }
  session.limit_bps = limit_bps;
  session.depth = std::max(session.depth, depth);
  session.requesters.insert(from);
  session.windows_since_refresh = 0;
  if (created) {
    session.bucket = std::make_unique<TokenBucket>(
        limit_bps, system_.params().bucket_burst_bytes,
        system_.simulator().now());
  } else {
    session.bucket->set_rate(limit_bps);
  }
}

void PushbackAgent::receive_status(AggregateKey agg, double demand_bps) {
  const auto it = sessions_.find(agg);
  if (it == sessions_.end()) return;
  it->second.reported_demand_bps += demand_bps;
}

void PushbackAgent::receive_cancel(AggregateKey agg, sim::NodeId from) {
  const auto it = sessions_.find(agg);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  session.requesters.erase(from);
  if (session.requesters.empty() && !session.self_originated) {
    remove_session(agg, session);
  }
}

PushbackSystem::PushbackSystem(sim::Simulator& simulator, net::Network& network,
                               net::ControlPlane& control,
                               const PushbackParams& params)
    : simulator_(simulator),
      network_(network),
      control_(control),
      params_(params) {}

void PushbackSystem::install(std::span<const sim::NodeId> routers) {
  for (const sim::NodeId r : routers) {
    auto& router = static_cast<net::Router&>(network_.node(r));
    agents_.try_emplace(r, std::make_unique<PushbackAgent>(*this, router));
  }
  if (!timer_started_) {
    timer_started_ = true;
    simulator_.after(params_.interval, [this] { on_timer(); },
                     "pushback.timer");
  }
}

void PushbackSystem::on_timer() {
  for (auto& [id, agent] : agents_) agent->on_timer();
  simulator_.after(params_.interval, [this] { on_timer(); },
                   "pushback.timer");
}

void PushbackSystem::set_port_weights(sim::NodeId router,
                                      std::vector<double> weights) {
  port_weights_[router] = std::move(weights);
}

double PushbackSystem::port_weight(sim::NodeId router, int port) const {
  const auto it = port_weights_.find(router);
  if (it == port_weights_.end()) return 1.0;
  if (port < 0 || static_cast<std::size_t>(port) >= it->second.size()) {
    return 1.0;
  }
  return std::max(1e-9, it->second[static_cast<std::size_t>(port)]);
}

void PushbackSystem::send_request(sim::NodeId from, sim::NodeId to,
                                  AggregateKey agg, double limit_bps,
                                  int depth) {
  ++requests_;
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kPushbackRequest,
                            from, static_cast<std::uint64_t>(agg), 0, to,
                            depth});
  }
  control_.send("pushback_request", 1, [this, to, agg, limit_bps, depth, from] {
    if (PushbackAgent* agent = this->agent(to)) {
      agent->receive_request(agg, limit_bps, depth, from);
    }
  });
}

void PushbackSystem::send_cancel(sim::NodeId from, sim::NodeId to,
                                 AggregateKey agg) {
  ++cancels_;
  if (simulator_.tracing()) {
    simulator_.trace_event({simulator_.now(), sim::TraceVerb::kPushbackCancel,
                            from, static_cast<std::uint64_t>(agg), 0, to, -1});
  }
  control_.send("pushback_cancel", 1, [this, to, agg, from] {
    if (PushbackAgent* agent = this->agent(to)) {
      agent->receive_cancel(agg, from);
    }
  });
}

void PushbackSystem::send_status(sim::NodeId to, AggregateKey agg,
                                 double demand_bps) {
  control_.send("pushback_status", 1, [this, to, agg, demand_bps] {
    if (PushbackAgent* agent = this->agent(to)) {
      agent->receive_status(agg, demand_bps);
    }
  });
}

PushbackAgent* PushbackSystem::agent(sim::NodeId router) {
  const auto it = agents_.find(router);
  return it == agents_.end() ? nullptr : it->second.get();
}

std::uint64_t PushbackSystem::total_limited_drops() const {
  std::uint64_t total = 0;
  for (const auto& [id, agent] : agents_) total += agent->limited_drops();
  return total;
}

std::size_t PushbackSystem::total_sessions() const {
  std::size_t total = 0;
  for (const auto& [id, agent] : agents_) total += agent->active_sessions();
  return total;
}

void PushbackSystem::export_telemetry(telemetry::Registry& registry) const {
  registry.counter("pushback.requests_sent").add(requests_);
  registry.counter("pushback.cancels_sent").add(cancels_);
  registry.counter("pushback.limited_drops").add(total_limited_drops());
  registry.gauge("pushback.sessions")
      .set(static_cast<double>(total_sessions()));
  auto& per_agent = registry.histogram("pushback.agent.limited_drops");
  for (const auto& [id, agent] : agents_) {
    per_agent.record(agent->limited_drops());
  }
}

}  // namespace hbp::pushback
