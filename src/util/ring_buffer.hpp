// Growable circular FIFO that recycles its storage.
//
// std::deque allocates and frees fixed-size chunks as elements stream
// through, which puts one allocation every few packets on the data plane.
// RingBuffer keeps a power-of-two slot array and reuses it: once a queue
// has seen its peak occupancy, push/pop never touch the allocator again.
// Popped slots keep their (moved-from) element until overwritten.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace hbp::util {

template <typename T>
class RingBuffer {
 public:
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void push_back(T&& value) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

  // In FIFO order; Fn(const T&).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      fn(slots_[(head_ + i) & mask_]);
    }
  }

 private:
  void grow() {
    const std::size_t next = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> bigger(next);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
    mask_ = slots_.size() - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace hbp::util
