// SHA-256 and HMAC-SHA256, implemented from scratch (FIPS 180-4 / RFC 2104).
//
// Used by the roaming-honeypots hash chain (one-way key chain, Section 4 of
// the paper) and for authenticating inter-AS honeypot request/cancel
// messages (Section 5.3, "Message security").
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace hbp::util {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);

  // Finalises and returns the digest; the object must not be reused after.
  Digest finish();

  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

// HMAC-SHA256 (RFC 2104).
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);
Digest hmac_sha256(const Digest& key, std::string_view message);

// Constant-time digest comparison.
bool digest_equal(const Digest& a, const Digest& b);

std::string to_hex(const Digest& d);

}  // namespace hbp::util
