#include "util/rng.hpp"

#include <cmath>

namespace hbp::util {

double Rng::exponential(double mean) {
  HBP_ASSERT(mean > 0.0);
  // Avoid log(0): uniform() is in [0,1), so 1-u is in (0,1].
  return -mean * std::log(1.0 - uniform());
}

std::size_t Rng::weighted(std::span<const double> weights) {
  HBP_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    HBP_ASSERT(w >= 0.0);
    total += w;
  }
  HBP_ASSERT(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail
}

std::vector<std::size_t> Rng::choose(std::size_t n, std::size_t k) {
  HBP_ASSERT(k <= n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(idx[i], idx[i + below(n - i)]);
  }
  idx.resize(k);
  return idx;
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t tag) {
  SplitMix64 sm(master ^ (0x6a09e667f3bcc909ULL + tag * 0x9e3779b97f4a7c15ULL));
  sm.next();
  return sm.next();
}

}  // namespace hbp::util
