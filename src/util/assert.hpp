// Lightweight always-on assertion macro.
//
// Simulation correctness depends on internal invariants (event ordering,
// conservation of packets, protocol state machines).  These checks are cheap
// relative to packet processing, so they stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hbp::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "HBP_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace hbp::util

#define HBP_ASSERT(expr)                                            \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::hbp::util::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                               \
  } while (false)

#define HBP_ASSERT_MSG(expr, msg)                                \
  do {                                                           \
    if (!(expr)) {                                               \
      ::hbp::util::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                            \
  } while (false)
