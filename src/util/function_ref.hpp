// Non-owning callable reference: two words (object pointer + trampoline),
// trivially copyable, never allocates.
//
// LIFETIME CONTRACT: a function_ref borrows its target.  Whoever stores one
// (queue drop observers, server-pool listeners, capture listeners, host
// receivers) requires the callable to outlive the registration.  Never pass
// a temporary lambda to an API that keeps the ref beyond the call — name the
// lambda (or use bind<>() on a member function) so it lives as long as the
// component that will invoke it.  Passing temporaries to synchronous
// consumers (ThreadPool::parallel_for) is fine.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace hbp::util {

template <typename Sig>
class function_ref;

template <typename R, typename... Args>
class function_ref<R(Args...)> {
 public:
  constexpr function_ref() noexcept = default;
  constexpr function_ref(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  // Plain function pointers are stored by value in the object slot, so the
  // ref is valid forever (no lifetime to manage).
  function_ref(R (*fn)(Args...)) noexcept  // NOLINT(runtime/explicit)
      : obj_(reinterpret_cast<void*>(fn)),
        call_([](void* o, Args... args) -> R {
          return reinterpret_cast<R (*)(Args...)>(o)(
              std::forward<Args>(args)...);
        }) {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, function_ref> &&
                !std::is_function_v<std::remove_reference_t<F>> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  function_ref(F&& f) noexcept  // NOLINT(runtime/explicit)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          auto& fn = *static_cast<std::remove_reference_t<F>*>(obj);
          if constexpr (std::is_void_v<R>) {
            std::invoke(fn, std::forward<Args>(args)...);
          } else {
            return std::invoke(fn, std::forward<Args>(args)...);
          }
        }) {}

  // Binds a member function to an object: function_ref::bind<&T::method>(obj).
  // The ref stays valid as long as `obj` lives — no lambda to keep alive.
  template <auto Member, typename T>
  static function_ref bind(T& obj) noexcept {
    function_ref r;
    r.obj_ = const_cast<void*>(static_cast<const void*>(std::addressof(obj)));
    r.call_ = [](void* o, Args... args) -> R {
      if constexpr (std::is_void_v<R>) {
        std::invoke(Member, *static_cast<T*>(o), std::forward<Args>(args)...);
      } else {
        return std::invoke(Member, *static_cast<T*>(o),
                           std::forward<Args>(args)...);
      }
    };
    return r;
  }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace hbp::util
