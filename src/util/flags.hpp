// Minimal command-line flag parsing for bench/example binaries.
//
// Accepts "--key=value" and "--key value" forms plus bare "--key" booleans.
// Unknown flags are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace hbp::util {

class Flags {
 public:
  Flags(int argc, char** argv);

  // Each get_* registers the key as known; call finish() after all lookups.
  double get_double(const std::string& key, double def);
  std::int64_t get_int(const std::string& key, std::int64_t def);
  bool get_bool(const std::string& key, bool def);
  std::string get_string(const std::string& key, const std::string& def);

  // Parses a comma-separated list of doubles, e.g. --sweep=1,2,5,10.
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> def);

  bool has(const std::string& key) const { return values_.contains(key); }

  // Aborts with a message listing unknown flags, if any were passed.
  void finish() const;

 private:
  std::optional<std::string> lookup(const std::string& key);

  std::map<std::string, std::string> values_;
  std::set<std::string> known_;
  std::string program_;
};

}  // namespace hbp::util
