#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hbp::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  HBP_ASSERT(hi > lo);
  HBP_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  auto bin = static_cast<std::int64_t>((x - lo_) / width_);
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::frequency(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double IntCounter::frequency(std::int64_t v) const {
  if (total_ == 0) return 0.0;
  const auto it = counts_.find(v);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

double IntCounter::mean() const {
  if (total_ == 0) return 0.0;
  double s = 0.0;
  for (const auto& [v, c] : counts_) {
    s += static_cast<double>(v) * static_cast<double>(c);
  }
  return s / static_cast<double>(total_);
}

}  // namespace hbp::util
