// Fixed-size worker pool used to run independent simulation replications
// (different seeds) concurrently.  Follows the HPC guidance of explicit
// parallelism with no shared mutable state between work items: each task is
// a self-contained simulation and only its scalar results are merged.
//
// Degrades gracefully to inline execution when the machine exposes a single
// hardware thread (or when constructed with 0/1 workers).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function_ref.hpp"
#include "util/ring_buffer.hpp"
#include "util/small_fn.hpp"

namespace hbp::util {

class ThreadPool {
 public:
  // workers == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  // Runs fn(i) for i in [0, n) across the pool and blocks until all
  // complete.  With no worker threads this executes inline, serially.
  // Synchronous: the callable only has to outlive this call, so passing a
  // temporary lambda is fine.
  void parallel_for(std::size_t n, function_ref<void(std::size_t)> fn);

 private:
  // Queued tasks are small (a shared_ptr to the batch context); the ring
  // recycles its slots, so steady-state dispatch never touches the allocator.
  using Task = SmallFn<64>;

  void worker_loop();

  std::vector<std::thread> threads_;
  RingBuffer<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hbp::util
