// Fixed-size worker pool used to run independent simulation replications
// (different seeds) concurrently.  Follows the HPC guidance of explicit
// parallelism with no shared mutable state between work items: each task is
// a self-contained simulation and only its scalar results are merged.
//
// Degrades gracefully to inline execution when the machine exposes a single
// hardware thread (or when constructed with 0/1 workers).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbp::util {

class ThreadPool {
 public:
  // workers == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  // Runs fn(i) for i in [0, n) across the pool and blocks until all
  // complete.  With no worker threads this executes inline, serially.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hbp::util
