// Deterministic random number generation.
//
// All randomness in a simulation flows from a single 64-bit master seed.
// A SplitMix64 stream derives independent sub-seeds for per-component
// xoshiro256** generators, so adding a new consumer of randomness never
// perturbs the draws seen by existing components (stream independence).
//
// We implement the generators ourselves instead of using <random> engines
// because the C++ standard does not pin down distribution algorithms across
// implementations, and reproducibility of experiment tables matters here.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace hbp::util {

// SplitMix64: used only for seeding other generators.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, 2^256-1 period general-purpose PRNG.
class Rng {
 public:
  // Zero state would be a fixed point; SplitMix64 seeding avoids it.
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    HBP_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n) {
    HBP_ASSERT(n > 0);
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    HBP_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Sample an index according to (unnormalised, non-negative) weights.
  std::size_t weighted(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  // Choose k distinct indices out of n (reservoir-free partial shuffle).
  std::vector<std::size_t> choose(std::size_t n, std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Derives named sub-seeds from a master seed; the same (master, tag) pair
// always yields the same sub-seed, independent of call order.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t tag);

}  // namespace hbp::util
