// Streaming statistics and histograms for experiment metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace hbp::util {

// Welford's online algorithm: numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Half-width of the 95% confidence interval (normal approximation).
  double ci95_halfwidth() const;

  // Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width bin histogram over [lo, hi); out-of-range samples clamp to the
// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  // Fraction of samples in a bin (0 if empty histogram).
  double frequency(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Exact integer-valued frequency counter (for degree/hop-count histograms).
class IntCounter {
 public:
  void add(std::int64_t v) { ++counts_[v]; ++total_; }
  std::uint64_t total() const { return total_; }
  const std::map<std::int64_t, std::uint64_t>& counts() const { return counts_; }
  double frequency(std::int64_t v) const;
  double mean() const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hbp::util
