#include "util/table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hbp::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HBP_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  HBP_ASSERT_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputs("  ", out);
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s", static_cast<int>(widths[c] + 2), row[c].c_str());
    }
    std::fputc('\n', out);
  };

  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  std::fputs("  ", out);
  for (std::size_t i = 2; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

void print_banner(const std::string& title, std::FILE* out) {
  std::fprintf(out, "\n=== %s ===\n", title.c_str());
}

}  // namespace hbp::util
