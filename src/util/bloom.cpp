#include "util/bloom.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace hbp::util {

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

BloomFilter::BloomFilter(std::size_t bits, int hashes)
    : bits_(bits, false), hashes_(hashes) {
  HBP_ASSERT(bits > 0);
  HBP_ASSERT(hashes >= 1 && hashes <= 16);
}

std::uint64_t BloomFilter::probe(std::uint64_t digest, int i) const {
  // Double hashing: h1 + i*h2, both derived from the digest.
  const std::uint64_t h1 = mix64(digest);
  const std::uint64_t h2 = mix64(digest ^ 0x9e3779b97f4a7c15ULL) | 1;
  return (h1 + static_cast<std::uint64_t>(i) * h2) % bits_.size();
}

void BloomFilter::insert(std::uint64_t digest) {
  ++inserted_;
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t cell = probe(digest, i);
    if (!bits_[cell]) {
      bits_[cell] = true;
      ++set_cells_;
    }
  }
}

bool BloomFilter::maybe_contains(std::uint64_t digest) const {
  for (int i = 0; i < hashes_; ++i) {
    if (!bits_[probe(digest, i)]) return false;
  }
  return true;
}

double BloomFilter::fill_ratio() const {
  return static_cast<double>(set_cells_) / static_cast<double>(bits_.size());
}

double BloomFilter::false_positive_rate() const {
  return std::pow(fill_ratio(), hashes_);
}

void BloomFilter::clear() {
  bits_.assign(bits_.size(), false);
  set_cells_ = 0;
  inserted_ = 0;
}

}  // namespace hbp::util
