// Column-aligned plain-text table printer used by the benchmark harnesses
// to emit the rows/series corresponding to the paper's tables and figures.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hbp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string num(long long v);
  static std::string percent(double fraction, int precision = 1);

  // Renders to the stream (default stdout).
  void print(std::FILE* out = stdout) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a titled section banner.
void print_banner(const std::string& title, std::FILE* out = stdout);

}  // namespace hbp::util
