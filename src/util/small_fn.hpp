// Move-only owning `void()` callable with an in-place small-buffer store.
//
// The common simulator closure — a component pointer plus a moved-in Packet
// — fits the buffer, so constructing, moving, and destroying one performs
// zero heap allocations.  Targets larger than the buffer (rare control-plane
// closures carrying signed messages) fall back to the heap; packet-path
// scheduling sites pin their closures inline with
// `static_assert(sim::Event::fits_inline<decltype(fn)>())`.
//
// Dispatch is vtable-free: one pointer to a static per-type operations
// record (invoke / relocate / destroy), resolved at construction.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace hbp::util {

template <std::size_t Capacity>
class SmallFn {
 public:
  static constexpr std::size_t kInlineSize = Capacity;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOpsFor<D>;
    } else {
      void* p = new D(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(void*));
      ops_ = &kHeapOpsFor<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(target()); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when a target of type F is stored in the inline buffer (no heap).
  template <typename F>
  static constexpr bool fits_inline() {
    using D = std::remove_cvref_t<F>;
    return sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs dst from src and destroys src (inline targets only).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    bool heap;
  };

  template <typename T>
  static constexpr Ops kInlineOpsFor{
      [](void* p) { (*static_cast<T*>(p))(); },
      [](void* src, void* dst) {
        ::new (dst) T(std::move(*static_cast<T*>(src)));
        static_cast<T*>(src)->~T();
      },
      [](void* p) { static_cast<T*>(p)->~T(); },
      /*heap=*/false};

  template <typename T>
  static constexpr Ops kHeapOpsFor{
      [](void* p) { (*static_cast<T*>(p))(); },
      nullptr,
      [](void* p) { delete static_cast<T*>(p); },
      /*heap=*/true};

  void* target() noexcept {
    if (ops_->heap) {
      void* p;
      std::memcpy(&p, buf_, sizeof(void*));
      return p;
    }
    return buf_;
  }

  void steal(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->heap) {
      std::memcpy(buf_, other.buf_, sizeof(void*));
    } else {
      ops_->relocate(other.buf_, buf_);
    }
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace hbp::util
