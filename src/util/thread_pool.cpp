#include "util/thread_pool.hpp"

#include <atomic>
#include <memory>

namespace hbp::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
  }
  // A single-core machine gains nothing from one worker thread; run inline.
  if (workers <= 1) return;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, function_ref<void(std::size_t)> fn) {
  if (threads_.empty() || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared by value among queued tasks: a queued task can start (or finish)
  // after this call would otherwise have returned, so the context must not
  // live on this stack frame.
  struct Context {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t n;
    function_ref<void(std::size_t)> fn;
  };
  auto ctx = std::make_shared<Context>();
  ctx->n = n;
  ctx->fn = fn;  // valid: we block below until all n items are done

  auto work = [ctx] {
    for (;;) {
      const std::size_t i = ctx->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= ctx->n) break;
      ctx->fn(i);
      if (ctx->done.fetch_add(1, std::memory_order_acq_rel) + 1 == ctx->n) {
        std::lock_guard lock(ctx->mutex);
        ctx->cv.notify_all();
      }
    }
  };
  static_assert(Task::fits_inline<decltype(work)>());

  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      queue_.push_back(Task(work));
    }
  }
  cv_.notify_all();

  // The calling thread participates too.
  work();

  std::unique_lock lock(ctx->mutex);
  ctx->cv.wait(lock, [&] {
    return ctx->done.load(std::memory_order_acquire) >= ctx->n;
  });
}

}  // namespace hbp::util
