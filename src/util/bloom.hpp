// Bloom filter over 64-bit digests — the storage core of SPIE-style
// single-packet traceback (Snoeren et al., "Hash-based IP traceback",
// SIGCOMM 2001): routers remember every forwarded packet in per-window
// Bloom filters instead of storing the packets themselves.
#pragma once

#include <cstdint>
#include <vector>

namespace hbp::util {

class BloomFilter {
 public:
  // `bits` cells, `hashes` probes per item.
  BloomFilter(std::size_t bits, int hashes);

  void insert(std::uint64_t digest);
  bool maybe_contains(std::uint64_t digest) const;

  std::size_t bit_count() const { return bits_.size(); }
  std::size_t byte_size() const { return (bits_.size() + 7) / 8; }
  std::uint64_t inserted() const { return inserted_; }

  // Fraction of set cells; the theoretical false-positive rate is
  // fill^hashes.
  double fill_ratio() const;
  double false_positive_rate() const;

  void clear();

 private:
  std::uint64_t probe(std::uint64_t digest, int i) const;

  std::vector<bool> bits_;
  int hashes_;
  std::uint64_t inserted_ = 0;
  std::uint64_t set_cells_ = 0;
};

// Stable 64-bit mix (SplitMix64 finalizer) for deriving packet digests.
std::uint64_t mix64(std::uint64_t x);

}  // namespace hbp::util
