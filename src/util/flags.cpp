#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace hbp::util {

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   program_.c_str(), arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Flags::lookup(const std::string& key) {
  known_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

double Flags::get_double(const std::string& key, double def) {
  const auto v = lookup(key);
  return v ? std::strtod(v->c_str(), nullptr) : def;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) {
  const auto v = lookup(key);
  return v ? std::strtoll(v->c_str(), nullptr, 10) : def;
}

bool Flags::get_bool(const std::string& key, bool def) {
  const auto v = lookup(key);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

std::string Flags::get_string(const std::string& key, const std::string& def) {
  const auto v = lookup(key);
  return v ? *v : def;
}

std::vector<double> Flags::get_double_list(const std::string& key,
                                           std::vector<double> def) {
  const auto v = lookup(key);
  if (!v) return def;
  std::vector<double> out;
  const std::string& s = *v;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtod(s.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

void Flags::finish() const {
  bool bad = false;
  for (const auto& [key, value] : values_) {
    if (!known_.contains(key)) {
      std::fprintf(stderr, "%s: unknown flag --%s=%s\n", program_.c_str(),
                   key.c_str(), value.c_str());
      bad = true;
    }
  }
  if (bad) {
    std::fprintf(stderr, "known flags:");
    for (const auto& k : known_) std::fprintf(stderr, " --%s", k.c_str());
    std::fputc('\n', stderr);
    std::exit(2);
  }
}

}  // namespace hbp::util
