// Probabilistic packet marking (PPM) traceback — the packet-marking
// baseline the paper's Section 2 contrasts hop-by-hop traceback with
// (Savage, Wetherall, Karlin, Anderson, "Practical network support for IP
// traceback", SIGCOMM 2000; edge-sampling variant).
//
// Every PPM router marks each forwarded packet with probability q: it
// writes its id into `edge_start` and zeroes `edge_distance`.  A router
// that does not mark but sees distance == 0 completes the edge by writing
// `edge_end`; every non-marking router increments the distance.  The
// victim reconstructs the attack path from collected edges ordered by
// distance.
//
// The paper's two criticisms, both measurable here:
//  - packet cost: the victim needs many packets per path, E ~ ln(d)/(q(1-q)^{d-1}),
//    which grows badly for distant or low-rate attackers (Section 2);
//  - compromised routers: a subverted router can inject forged markings
//    and poison the reconstruction with false paths — unlike honeypot
//    back-propagation, where a lying edge router just stalls (Section 5.1).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "net/router.hpp"
#include "util/rng.hpp"

namespace hbp::marking {

struct PpmParams {
  double mark_probability = 0.04;  // Savage et al.'s recommended ~1/25
};

// The per-router marking engine; install one on every PPM router.
class PpmMarker final : public net::PacketMutator {
 public:
  PpmMarker(net::Router& router, util::Rng& rng, const PpmParams& params);
  ~PpmMarker() override;

  void mutate(sim::Packet& p, int in_port) override;

  // Compromise hook: the router stops marking honestly and forges edges
  // (random fake upstream router -> `frame_end`) with distance 0.  Honest
  // downstream routers still increment the distance, so the forgeries land
  // at this router's own distance — and by framing its real downstream
  // neighbor as the edge end they chain seamlessly onto the genuine path,
  // spawning false branches in the victim's reconstruction.
  void compromise(std::int32_t forged_id_space, std::int32_t frame_end) {
    forged_space_ = forged_id_space;
    frame_end_ = frame_end;
  }

  std::uint64_t marks_written() const { return marks_; }

 private:
  net::Router& router_;
  util::Rng& rng_;
  PpmParams params_;
  std::int32_t forged_space_ = 0;  // 0 = honest
  std::int32_t frame_end_ = sim::kNoMark;
  std::uint64_t marks_ = 0;
};

// Victim-side collector and path reconstructor.
class PpmCollector {
 public:
  // Feed every packet the victim receives.
  void collect(const sim::Packet& p);

  // Edges seen so far, keyed by distance.
  struct Edge {
    std::int32_t start;
    std::int32_t end;  // kNoMark for the edge nearest the victim
    std::int32_t distance;
    auto operator<=>(const Edge&) const = default;
  };

  std::uint64_t packets_seen() const { return packets_; }
  std::uint64_t marked_packets() const { return marked_; }
  const std::set<Edge>& edges() const { return edges_; }

  // Reconstructs all maximal paths from the victim outward by chaining
  // edges whose distances are consecutive and whose endpoints agree.
  // Returns router-id sequences ordered victim-side first.
  std::vector<std::vector<std::int32_t>> reconstruct_paths() const;

  // True if the exact router-id path (victim-side first) was reconstructed.
  bool path_found(const std::vector<std::int32_t>& path) const;

  // Paths containing ids outside the legitimate router-id set.
  std::size_t false_paths(const std::set<std::int32_t>& real_routers) const;

 private:
  std::set<Edge> edges_;
  std::uint64_t packets_ = 0;
  std::uint64_t marked_ = 0;
};

// Expected number of packets for full-path reconstruction at distance d
// (the classic coupon-collector style bound from Savage et al.).
double expected_packets_for_path(double mark_probability, int distance);

}  // namespace hbp::marking
