#include "marking/stackpi.hpp"

#include <cstdio>

#include "util/assert.hpp"
#include "util/sha256.hpp"

namespace hbp::marking {

PiMarker::PiMarker(net::Router& router, const StackPiParams& params)
    : router_(router), params_(params) {
  HBP_ASSERT(params.bits_per_hop >= 1 && params.bits_per_hop <= 8);
  // Deterministic per-router digest bits derived from the router id.
  char buf[32];
  std::snprintf(buf, sizeof buf, "pi-router-%d", router.id());
  const auto digest = util::Sha256::hash(buf);
  digest_ = static_cast<std::uint16_t>(digest[0] &
                                       ((1u << params.bits_per_hop) - 1u));
  router_.add_mutator(this);
}

PiMarker::~PiMarker() { router_.remove_mutator(this); }

void PiMarker::mutate(sim::Packet& p, int in_port) {
  (void)in_port;
  // Push our bits into the 16-bit stack carried in the mark field.  The
  // field is initialised by the first marking router; anything the sender
  // pre-loaded is shifted out after 16/b hops (StackPi's defense against
  // mark spoofing by attackers close to nobody).
  std::uint16_t stack =
      p.mark >= 0 ? static_cast<std::uint16_t>(p.mark) : 0;
  stack = static_cast<std::uint16_t>(
      (stack << params_.bits_per_hop) |
      digest_);
  p.mark = stack;
}

}  // namespace hbp::marking
