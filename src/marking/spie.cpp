#include "marking/spie.hpp"

#include <set>

#include "util/assert.hpp"

namespace hbp::marking {

SpieAgent::SpieAgent(net::Router& router, const SpieParams& params)
    : router_(router), params_(params) {
  HBP_ASSERT(params.window > sim::SimTime::zero());
  HBP_ASSERT(params.windows_retained >= 1);
  router_.add_tap(this);
}

SpieAgent::~SpieAgent() { router_.remove_tap(this); }

util::BloomFilter& SpieAgent::window_for(std::int64_t index) {
  if (!windows_.empty() && windows_.back().first == index) {
    return windows_.back().second;
  }
  windows_.emplace_back(index,
                        util::BloomFilter(params_.bits_per_window,
                                          params_.hashes));
  while (windows_.size() > static_cast<std::size_t>(params_.windows_retained)) {
    windows_.pop_front();
  }
  return windows_.back().second;
}

void SpieAgent::on_forward(const sim::Packet& p, int in_port, int out_port) {
  (void)in_port;
  (void)out_port;
  const std::int64_t index =
      router_.network().simulator().now().nanos() / params_.window.nanos();
  ++recorded_;
  window_for(index).insert(digest(p));
}

bool SpieAgent::saw(std::uint64_t digest, sim::SimTime when) const {
  const std::int64_t index = when.nanos() / params_.window.nanos();
  for (const auto& [idx, filter] : windows_) {
    if (idx >= index - 1 && idx <= index + 1 &&
        filter.maybe_contains(digest)) {
      return true;
    }
  }
  return false;
}

std::size_t SpieAgent::storage_bytes() const {
  std::size_t total = 0;
  for (const auto& [idx, filter] : windows_) total += filter.byte_size();
  return total;
}

std::vector<sim::NodeId> SpieTracer::trace(sim::NodeId start,
                                           std::uint64_t digest,
                                           sim::SimTime when) const {
  std::vector<sim::NodeId> implicated;
  std::set<sim::NodeId> visited;
  std::vector<sim::NodeId> frontier{start};
  visited.insert(start);
  while (!frontier.empty()) {
    const sim::NodeId node = frontier.back();
    frontier.pop_back();
    const auto it = agents_.find(node);
    if (it == agents_.end() || !it->second->saw(digest, when)) continue;
    implicated.push_back(node);
    const net::Node& n = network_.node(node);
    for (std::size_t port = 0; port < n.port_count(); ++port) {
      const sim::NodeId neighbor = n.neighbor(port);
      if (visited.contains(neighbor)) continue;
      if (network_.node(neighbor).kind() != net::NodeKind::kRouter) continue;
      visited.insert(neighbor);
      frontier.push_back(neighbor);
    }
  }
  return implicated;
}

}  // namespace hbp::marking
