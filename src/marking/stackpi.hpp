// StackPi-style deterministic path marking and victim-side filtering — the
// second marking baseline of Section 2 ("StackPi is a deterministic packet
// marking scheme that allows the victim to locally filter attack packets
// based on the mark field.  However, the scheme's accuracy ... deteriorates
// with a large number of dispersed attackers").
//
// Each router deterministically pushes b bits derived from its id into a
// 16-bit mark "stack"; packets from the same path carry the same final
// mark (a path fingerprint).  The victim learns the marks of known-attack
// packets (here: packets that hit honeypots — the accurate signature the
// roaming pool supplies) and drops matching marks.  False positives arise
// when a legitimate client shares a path suffix — and therefore a mark —
// with an attacker; with many dispersed attackers, marked space saturates.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "net/router.hpp"

namespace hbp::marking {

struct StackPiParams {
  int bits_per_hop = 2;  // StackPi's n-bit scheme (IP ID: 16-bit stack)
};

// Per-router deterministic marker.
class PiMarker final : public net::PacketMutator {
 public:
  PiMarker(net::Router& router, const StackPiParams& params);
  ~PiMarker() override;

  void mutate(sim::Packet& p, int in_port) override;

 private:
  net::Router& router_;
  StackPiParams params_;
  std::uint16_t digest_;  // the bits this router pushes
};

// Victim-side filter state: learns attack marks, evaluates traffic.
class PiVictim {
 public:
  // Observe a packet that is *known* attack traffic (hit a honeypot).
  void learn_attack(const sim::Packet& p) { attack_marks_.insert(mark_of(p)); }

  // Would the filter drop this packet?
  bool drop(const sim::Packet& p) const {
    return attack_marks_.contains(mark_of(p));
  }

  std::size_t marks_learned() const { return attack_marks_.size(); }

  static std::uint16_t mark_of(const sim::Packet& p) {
    return static_cast<std::uint16_t>(p.mark >= 0 ? p.mark : 0);
  }

 private:
  std::set<std::uint16_t> attack_marks_;
};

}  // namespace hbp::marking
