// Ingress filtering (RFC 2827 / BCP 38) — the spoofing-*prevention*
// baseline of Section 2: access routers drop outbound packets whose source
// address does not belong to their attached prefix.
//
// The paper's two criticisms, both measurable here:
//  - it only helps where deployed: a spoofing attacker behind a
//    non-filtering access router is untouched, and the benefit to any one
//    victim depends on everyone else's deployment;
//  - it "interferes with the operation of Internet protocols, such as
//    mobile IP, which use spoofing legitimately": a mobile node sending
//    with its home address from a foreign network is dropped.
#pragma once

#include <cstdint>
#include <set>

#include "net/router.hpp"

namespace hbp::marking {

class IngressFilter final : public net::PacketFilter {
 public:
  // `local_port` is the router's port facing the filtered stub network
  // (typically the access switch); `valid_sources` are the addresses
  // legitimately homed behind it.
  IngressFilter(net::Router& router, int local_port,
                std::set<sim::Address> valid_sources);
  ~IngressFilter() override;

  net::FilterAction on_packet(const sim::Packet& p, int in_port) override;

  std::uint64_t spoofed_dropped() const { return dropped_; }
  std::uint64_t passed() const { return passed_; }

 private:
  net::Router& router_;
  int local_port_;
  std::set<sim::Address> valid_sources_;
  std::uint64_t dropped_ = 0;
  std::uint64_t passed_ = 0;
};

}  // namespace hbp::marking
