#include "marking/ingress_filter.hpp"

namespace hbp::marking {

IngressFilter::IngressFilter(net::Router& router, int local_port,
                             std::set<sim::Address> valid_sources)
    : router_(router),
      local_port_(local_port),
      valid_sources_(std::move(valid_sources)) {
  router_.add_filter(this);
}

IngressFilter::~IngressFilter() { router_.remove_filter(this); }

net::FilterAction IngressFilter::on_packet(const sim::Packet& p, int in_port) {
  if (in_port != local_port_) return net::FilterAction::kPass;
  if (valid_sources_.contains(p.src)) {
    ++passed_;
    return net::FilterAction::kPass;
  }
  ++dropped_;
  return net::FilterAction::kDrop;
}

}  // namespace hbp::marking
