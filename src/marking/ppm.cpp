#include "marking/ppm.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hbp::marking {

PpmMarker::PpmMarker(net::Router& router, util::Rng& rng,
                     const PpmParams& params)
    : router_(router), rng_(rng), params_(params) {
  HBP_ASSERT(params.mark_probability > 0 && params.mark_probability < 1);
  router_.add_mutator(this);
}

PpmMarker::~PpmMarker() { router_.remove_mutator(this); }

void PpmMarker::mutate(sim::Packet& p, int in_port) {
  (void)in_port;
  if (rng_.bernoulli(params_.mark_probability)) {
    ++marks_;
    if (forged_space_ > 0) {
      // Compromised router: frame a fake upstream neighbor.
      p.edge_start = static_cast<std::int32_t>(rng_.below(
          static_cast<std::uint64_t>(forged_space_))) + 1'000'000;
      p.edge_end = frame_end_;
      p.edge_distance = 0;
      return;
    }
    p.edge_start = router_.id();
    p.edge_end = sim::kNoMark;
    p.edge_distance = 0;
    return;
  }
  if (p.edge_start != sim::kNoMark) {
    if (p.edge_distance == 0 && p.edge_end == sim::kNoMark &&
        forged_space_ == 0) {
      p.edge_end = router_.id();
    }
    ++p.edge_distance;
  }
}

void PpmCollector::collect(const sim::Packet& p) {
  ++packets_;
  if (p.edge_start == sim::kNoMark) return;
  ++marked_;
  edges_.insert(Edge{p.edge_start, p.edge_end, p.edge_distance});
}

std::vector<std::vector<std::int32_t>> PpmCollector::reconstruct_paths() const {
  // Edges at distance 1 start paths at the router adjacent to the victim
  // (its own mark travelled one hop: distance incremented by the next
  // router... in this topology the final mark reaches the victim with the
  // distance it accumulated; the closest router's fresh mark arrives with
  // distance 0).  Chain outward: an edge (s2, e2, d+1) extends a path
  // ending at router r when e2 == r.
  std::map<std::int32_t, std::vector<Edge>> by_distance;
  std::int32_t max_distance = 0;
  for (const Edge& e : edges_) {
    by_distance[e.distance].push_back(e);
    max_distance = std::max(max_distance, e.distance);
  }

  std::vector<std::vector<std::int32_t>> paths;
  // Seeds: distance-0 edges (marked by the last router before the victim).
  for (const Edge& seed : by_distance[0]) {
    paths.push_back({seed.start});
  }
  // Extend each path by matching edges at increasing distance: the edge at
  // distance d has end == the path's last (farthest known) router and
  // start == the next router outward.
  for (std::int32_t d = 1; d <= max_distance; ++d) {
    std::vector<std::vector<std::int32_t>> extended;
    for (const auto& path : paths) {
      bool grew = false;
      for (const Edge& e : by_distance[d]) {
        if (e.end == path.back()) {
          auto longer = path;
          longer.push_back(e.start);
          extended.push_back(std::move(longer));
          grew = true;
        }
      }
      if (!grew) extended.push_back(path);
    }
    paths = std::move(extended);
  }
  return paths;
}

bool PpmCollector::path_found(const std::vector<std::int32_t>& path) const {
  for (const auto& candidate : reconstruct_paths()) {
    if (candidate == path) return true;
  }
  return false;
}

std::size_t PpmCollector::false_paths(
    const std::set<std::int32_t>& real_routers) const {
  std::size_t count = 0;
  for (const auto& path : reconstruct_paths()) {
    for (const std::int32_t id : path) {
      if (!real_routers.contains(id)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

double expected_packets_for_path(double mark_probability, int distance) {
  HBP_ASSERT(distance >= 1);
  // E[packets] < ln(d) / (q (1-q)^{d-1})  (Savage et al., Section 4.2).
  const double q = mark_probability;
  return std::log(std::max(2.0, static_cast<double>(distance))) /
         (q * std::pow(1.0 - q, distance - 1));
}

}  // namespace hbp::marking
