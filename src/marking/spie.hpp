// SPIE-style hash-based single-packet traceback (Snoeren et al., SIGCOMM
// 2001) — the Section 2 "exception" among hop-by-hop schemes: "the
// single-packet traceback scheme, which can use a single attack packet as
// the signature.  However, it requires high storage overhead at routers or
// high bandwidth overhead."
//
// Every SPIE router inserts a digest of each forwarded packet into a
// time-windowed Bloom filter (the Digest Generation Agent).  Given one
// attack packet, the tracer walks the router graph asking "did you see
// this digest around time t?"; Bloom false positives implicate innocent
// branches, and the digest tables are the storage bill the paper objects
// to.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "net/network.hpp"
#include "net/router.hpp"
#include "util/bloom.hpp"

namespace hbp::marking {

struct SpieParams {
  sim::SimTime window = sim::SimTime::seconds(10);
  int windows_retained = 6;          // history available for queries
  std::size_t bits_per_window = 1u << 16;
  int hashes = 3;
};

class SpieAgent final : public net::ForwardTap {
 public:
  SpieAgent(net::Router& router, const SpieParams& params);
  ~SpieAgent() override;

  void on_forward(const sim::Packet& p, int in_port, int out_port) override;

  // Did this router (maybe) forward the digest in the window covering
  // `when` (or an adjacent one, to absorb boundary effects)?
  bool saw(std::uint64_t digest, sim::SimTime when) const;

  // Memory the digest tables occupy right now.
  std::size_t storage_bytes() const;
  std::uint64_t packets_recorded() const { return recorded_; }

  // The digest of a packet's invariant content.
  static std::uint64_t digest(const sim::Packet& p) {
    return util::mix64(p.uid * 0x9e3779b97f4a7c15ULL + 0x1234);
  }

 private:
  util::BloomFilter& window_for(std::int64_t index);

  net::Router& router_;
  SpieParams params_;
  // (window index, filter), newest at the back.
  std::deque<std::pair<std::int64_t, util::BloomFilter>> windows_;
  std::uint64_t recorded_ = 0;
};

// Victim-side tracer: explores the router graph from the victim's access
// router along agents that (maybe) saw the digest.
class SpieTracer {
 public:
  SpieTracer(net::Network& network,
             std::map<sim::NodeId, SpieAgent*> agents)
      : network_(network), agents_(std::move(agents)) {}

  // All routers implicated for the packet (connected region around
  // `start`); on a tree this is the true path plus any false branches.
  std::vector<sim::NodeId> trace(sim::NodeId start, std::uint64_t digest,
                                 sim::SimTime when) const;

 private:
  net::Network& network_;
  std::map<sim::NodeId, SpieAgent*> agents_;
};

}  // namespace hbp::marking
