#include "telemetry/instruments.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace hbp::telemetry {

std::size_t Log2Histogram::bucket_of(std::uint64_t v) {
  // 0 -> 0; otherwise 1 + floor(log2 v), i.e. the bit width.
  return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Log2Histogram::bucket_lo(std::size_t b) {
  HBP_ASSERT(b < kBuckets);
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t Log2Histogram::bucket_hi(std::size_t b) {
  HBP_ASSERT(b < kBuckets);
  if (b == 0) return 0;
  if (b == kBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

void Log2Histogram::record(std::uint64_t v) {
  ++buckets_[bucket_of(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += static_cast<double>(v);
}

double Log2Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (std::isnan(q)) return static_cast<double>(min_);  // clamp() keeps NaN
  q = std::clamp(q, 0.0, 1.0);
  // Exact endpoints: within-bucket interpolation can place q=0 above the
  // recorded minimum (or q=1 below the maximum) because a bucket's
  // population is assumed uniform over [lo, hi]; the extremes are tracked
  // exactly, so report them exactly.
  if (q == 0.0) return static_cast<double>(min_);
  if (q == 1.0) return static_cast<double>(max_);
  // Rank of the target sample, 1-based.
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[b];
    if (rank <= static_cast<double>(seen)) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double inside = (rank - before) / static_cast<double>(buckets_[b]);
      const double v = lo + (hi - lo) * inside;
      return std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

void Log2Histogram::merge(const Log2Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

TimeSeries::TimeSeries(sim::SimTime interval, Mode mode)
    : interval_(interval), mode_(mode) {
  HBP_ASSERT(interval > sim::SimTime::zero());
}

void TimeSeries::record(sim::SimTime t, double v) {
  HBP_ASSERT(t >= sim::SimTime::zero());
  const auto b = static_cast<std::size_t>(t.nanos() / interval_.nanos());
  if (bins_.size() <= b) bins_.resize(b + 1);
  Bin& bin = bins_[b];
  switch (mode_) {
    case Mode::kSum:
      bin.value += v;
      break;
    case Mode::kMax:
      bin.value = bin.touched ? std::max(bin.value, v) : v;
      break;
    case Mode::kLast:
      bin.value = v;
      break;
  }
  bin.touched = true;
}

double TimeSeries::bin_value(std::size_t b) const {
  return b < bins_.size() && bins_[b].touched ? bins_[b].value : 0.0;
}

std::vector<double> TimeSeries::values(std::size_t min_bins) const {
  std::vector<double> out(std::max(bins_.size(), min_bins), 0.0);
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    if (bins_[b].touched) out[b] = bins_[b].value;
  }
  return out;
}

void TimeSeries::merge(const TimeSeries& other) {
  HBP_ASSERT(interval_ == other.interval_ && mode_ == other.mode_);
  if (bins_.size() < other.bins_.size()) bins_.resize(other.bins_.size());
  for (std::size_t b = 0; b < other.bins_.size(); ++b) {
    const Bin& o = other.bins_[b];
    if (!o.touched) continue;
    Bin& bin = bins_[b];
    switch (mode_) {
      case Mode::kSum:
        bin.value += o.value;
        break;
      case Mode::kMax:
        bin.value = bin.touched ? std::max(bin.value, o.value) : o.value;
        break;
      case Mode::kLast:
        bin.value = o.value;
        break;
    }
    bin.touched = true;
  }
}

}  // namespace hbp::telemetry
