#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace hbp::telemetry {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  // Integral doubles inside the exactly-representable range print as
  // integers; everything else uses %.17g (round-trip exact, deterministic).
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(static_cast<std::size_t>(depth_) * 2, ' ');
}

void JsonWriter::prepare_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_) out_ += ',';
  if (depth_ > 0) newline_indent();
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_value();
  out_ += '{';
  ++depth_;
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HBP_ASSERT(depth_ > 0);
  --depth_;
  if (!first_in_scope_) newline_indent();
  out_ += '}';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_value();
  out_ += '[';
  ++depth_;
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HBP_ASSERT(depth_ > 0);
  --depth_;
  if (!first_in_scope_) newline_indent();
  out_ += ']';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  HBP_ASSERT_MSG(!after_key_, "two keys in a row");
  if (!first_in_scope_) out_ += ',';
  newline_indent();
  first_in_scope_ = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  prepare_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prepare_value();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prepare_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view rendered) {
  prepare_value();
  out_ += rendered;
  return *this;
}

}  // namespace hbp::telemetry
