// Typed instruments for the telemetry registry.
//
// All instruments are passive accumulators: recording never schedules
// events, never consumes randomness, and never touches the trace digest, so
// an instrumented run is bit-identical to an uninstrumented one.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace hbp::telemetry {

// Monotonic event count (drops, messages, dispatches, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written scalar (occupancy, fractions, configuration echoes).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log2-bucketed histogram over non-negative integer samples (latencies in
// ns/us, queue depths, message sizes).  Bucket 0 holds the value 0; bucket
// b >= 1 holds [2^(b-1), 2^b - 1].  Constant memory, O(1) record, exact
// count/sum/min/max plus bucket-interpolated quantile estimates.
class Log2Histogram {
 public:
  // 1 zero bucket + 64 power-of-two buckets covers all of uint64.
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  std::uint64_t max() const { return count_ > 0 ? max_ : 0; }
  std::uint64_t bucket_count(std::size_t b) const { return buckets_[b]; }

  // Bucket index a value lands in.
  static std::size_t bucket_of(std::uint64_t v);
  // Inclusive value range [lo, hi] of a bucket.
  static std::uint64_t bucket_lo(std::size_t b);
  static std::uint64_t bucket_hi(std::size_t b);

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the
  // bucket holding the q-th sample, clamped to the observed min/max.
  // Edge behavior: q outside [0, 1] is clamped, NaN is treated as 0,
  // q == 0 returns exactly min(), q == 1 returns exactly max(), and an
  // empty histogram returns 0.
  double quantile(double q) const;

  void merge(const Log2Histogram& other);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// Fixed-interval recorder over simulation time: sample (t, v) pairs are
// folded into bin floor(t / interval).  Recording is passive — the series
// is advanced by whatever events already happen, never by its own timer —
// so enabling it cannot perturb the event schedule.
class TimeSeries {
 public:
  enum class Mode {
    kSum,   // bin value = sum of samples (byte counts, message counts)
    kMax,   // bin value = max sample (peak depths)
    kLast,  // bin value = last sample (sampled gauges)
  };

  TimeSeries(sim::SimTime interval, Mode mode);

  void record(sim::SimTime t, double v);

  sim::SimTime interval() const { return interval_; }
  Mode mode() const { return mode_; }

  // Number of bins touched so far (trailing empty bins are not stored).
  std::size_t bin_count() const { return bins_.size(); }
  // Value of a bin; untouched bins read as 0.
  double bin_value(std::size_t b) const;
  // Dense copy padded with zeros up to max(bin_count, min_bins).
  std::vector<double> values(std::size_t min_bins = 0) const;

  void merge(const TimeSeries& other);

 private:
  struct Bin {
    double value = 0.0;
    bool touched = false;
  };

  sim::SimTime interval_;
  Mode mode_;
  std::vector<Bin> bins_;
};

}  // namespace hbp::telemetry
