// Machine-readable exporters: JSON run reports, BENCH_*.json perf records,
// and CSV time-series dumps.
//
// Layout contract shared by both schemas ("hbp-run-report/1" and
// "hbp-bench/1"): every host-dependent quantity (wall times, RSS, rates
// derived from wall time) lives exclusively inside the single top-level
// "perf" object, which is always the LAST key of the document.  Everything
// before "perf" is a pure function of (config, seed), so consumers — and
// the determinism tests — can truncate at `"perf":` and compare the rest
// byte-for-byte across runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/profiler.hpp"
#include "telemetry/registry.hpp"

namespace hbp::telemetry {

// Identifies a run: experiment name, seed, flattened config key/values,
// and the audit anchors (trace digest, event count, simulated horizon).
struct RunManifest {
  std::string name;
  std::uint64_t seed = 0;
  std::uint64_t trace_digest = 0;
  std::uint64_t events_executed = 0;
  double sim_seconds = 0.0;

  struct Field {
    std::string key;
    std::string rendered;  // pre-rendered JSON value
    bool quoted = false;
  };
  std::vector<Field> config;

  void set(std::string key, std::string value);
  void set_int(std::string key, std::int64_t value);
  void set_double(std::string key, double value);
  void set_bool(std::string key, bool value);
};

// Host-dependent measurements of one run or one bench invocation.
struct PerfStats {
  double wall_seconds = 0.0;
  std::uint64_t events_executed = 0;
  std::uint64_t peak_rss_bytes = 0;
  double sim_seconds = 0.0;  // 0 => omit wall-per-sim-second
  std::size_t peak_queue_depth = 0;
  std::vector<LoopProfiler::TypeStats> event_types;  // empty => not profiled

  double events_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(events_executed) / wall_seconds
               : 0.0;
  }
};

// Current process peak resident set size, in bytes (0 if unavailable).
std::uint64_t peak_rss_bytes();

// --- run report ("hbp-run-report/1") ---

struct ReportOptions {
  bool include_perf = true;
};

std::string render_run_report(const RunManifest& manifest,
                              const Registry* registry, const PerfStats* perf,
                              const ReportOptions& options = {});

// Writes the report to `path`; aborts if the file cannot be written.
void write_run_report(const std::string& path, const RunManifest& manifest,
                      const Registry* registry, const PerfStats* perf,
                      const ReportOptions& options = {});

// --- bench perf record ("hbp-bench/1") ---

// Flat deterministic headline numbers of a bench invocation.
struct BenchCounter {
  std::string key;
  double value = 0.0;
};

std::string render_bench_record(const std::string& name,
                                const std::vector<BenchCounter>& counters,
                                const Registry* metrics, const PerfStats& perf);

void write_bench_record(const std::string& path, const std::string& name,
                        const std::vector<BenchCounter>& counters,
                        const Registry* metrics, const PerfStats& perf);

// --- CSV time-series dump ---

// Long format: "series,bin_start_seconds,value" for every TimeSeries
// instrument in the registry, series in name order.
std::string render_timeseries_csv(const Registry& registry);
void write_timeseries_csv(const std::string& path, const Registry& registry);

// Writes `content` to `path`, aborting on failure (exporters share it).
void write_file_or_die(const std::string& path, const std::string& content);

}  // namespace hbp::telemetry
