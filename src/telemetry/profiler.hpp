// Event-loop profiling hooks.
//
// The Simulator owns an optional LoopProfiler; when absent (the default)
// the dispatch loop takes a single never-taken branch and performs no clock
// reads — compiled-in cost is zero.  When enabled, every dispatched event
// is attributed to the scheduling site's label (a string literal passed to
// Simulator::at/after) and timed with the steady clock.
//
// Per-label *counts* and the peak event-queue depth are functions of the
// simulation alone, hence deterministic; per-label *wall times* are
// host-dependent and are exported under the volatile "perf" section of the
// run report.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace hbp::telemetry {

class LoopProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  struct TypeStats {
    const char* label;  // scheduling-site literal; "other" for unlabeled
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0;
  };

  LoopProfiler() { start_ = Clock::now(); }

  // Hot path: one pointer compare in the common case (event chains reuse
  // the same label), a short linear scan over ~a dozen labels otherwise.
  void record(const char* label, std::chrono::nanoseconds wall) {
    TypeStats& s = label == cached_label_ && cached_ != nullptr
                       ? *cached_
                       : slot(label);
    ++s.count;
    s.wall_ns += static_cast<std::uint64_t>(wall.count());
  }

  void note_queue_depth(std::size_t depth) {
    if (depth > peak_queue_depth_) peak_queue_depth_ = depth;
  }

  std::size_t peak_queue_depth() const { return peak_queue_depth_; }

  // Wall time since construction (or the last reset), in seconds.
  double wall_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t total_events() const;
  std::uint64_t total_wall_ns() const;

  // Stats sorted by label for deterministic export.
  std::vector<TypeStats> by_type() const;

 private:
  TypeStats& slot(const char* label);

  std::vector<TypeStats> stats_;
  const char* cached_label_ = nullptr;
  TypeStats* cached_ = nullptr;
  std::size_t peak_queue_depth_ = 0;
  Clock::time_point start_;
};

}  // namespace hbp::telemetry
