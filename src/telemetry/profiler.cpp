#include "telemetry/profiler.hpp"

#include <algorithm>
#include <cstring>

namespace hbp::telemetry {

LoopProfiler::TypeStats& LoopProfiler::slot(const char* label) {
  if (label == nullptr) label = "other";
  // Identity compare first (labels are string literals shared by the
  // scheduling site), content compare as a fallback for identical literals
  // duplicated across translation units.
  for (TypeStats& s : stats_) {
    if (s.label == label || std::strcmp(s.label, label) == 0) {
      cached_label_ = label;
      cached_ = &s;
      return s;
    }
  }
  stats_.push_back(TypeStats{label, 0, 0});
  // Growth may have moved the vector; refresh the cache.
  cached_label_ = label;
  cached_ = &stats_.back();
  return stats_.back();
}

std::uint64_t LoopProfiler::total_events() const {
  std::uint64_t total = 0;
  for (const TypeStats& s : stats_) total += s.count;
  return total;
}

std::uint64_t LoopProfiler::total_wall_ns() const {
  std::uint64_t total = 0;
  for (const TypeStats& s : stats_) total += s.wall_ns;
  return total;
}

std::vector<LoopProfiler::TypeStats> LoopProfiler::by_type() const {
  std::vector<TypeStats> out = stats_;
  std::sort(out.begin(), out.end(), [](const TypeStats& a, const TypeStats& b) {
    return std::strcmp(a.label, b.label) < 0;
  });
  return out;
}

}  // namespace hbp::telemetry
