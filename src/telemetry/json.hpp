// Minimal streaming JSON writer (no external dependencies).
//
// Pretty-prints with two-space indentation and one key per line, and
// formats numbers deterministically, so two renders of the same data are
// byte-identical — the property the run-report determinism tests pin.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hbp::telemetry {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key inside an object; must be followed by a value or begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  // Splices an already-rendered JSON value (number, bool, null) verbatim.
  JsonWriter& raw(std::string_view rendered);

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

  // Escapes a string per RFC 8259 (quotes not included).
  static std::string escape(std::string_view s);
  // Shortest-roundtrip-ish decimal rendering used for all doubles.
  static std::string format_double(double v);

 private:
  void prepare_value();
  void newline_indent();

  std::string out_;
  int depth_ = 0;
  bool first_in_scope_ = true;
  bool after_key_ = false;
};

}  // namespace hbp::telemetry
