// Central registry of named telemetry instruments.
//
// Components register instruments by hierarchical dotted name
// ("net.queue.r3:1.drops", "core.hsm.7.requests") and keep the returned
// reference — lookups happen once at wiring time, never on the hot path.
// Instrument addresses are stable for the registry's lifetime.
//
// Iteration order is the lexicographic name order, so every export
// (JSON report, CSV dump) is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "telemetry/instruments.hpp"

namespace hbp::telemetry {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Each accessor creates the instrument on first use and returns the
  // existing one afterwards.  Reusing a name with a different type aborts.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Log2Histogram& histogram(std::string_view name);
  TimeSeries& time_series(std::string_view name, sim::SimTime interval,
                          TimeSeries::Mode mode);

  std::size_t size() const { return instruments_.size(); }
  bool contains(std::string_view name) const {
    return instruments_.find(name) != instruments_.end();
  }

  // Typed lookups for exporters/tests; null when absent or of another type.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Log2Histogram* find_histogram(std::string_view name) const;
  const TimeSeries* find_time_series(std::string_view name) const;

  // Folds another registry into this one: counters add, gauges take the
  // other's value, histograms and time-series merge.  Used by multi-run
  // bench emitters to aggregate per-run metric trees.
  void merge(const Registry& other);

  // Visits every instrument in name order; exactly one pointer is non-null
  // per call.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [name, slot] : instruments_) {
      fn(name, slot.counter.get(), slot.gauge.get(), slot.histogram.get(),
         slot.series.get());
    }
  }

 private:
  struct Slot {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Log2Histogram> histogram;
    std::unique_ptr<TimeSeries> series;
  };

  std::map<std::string, Slot, std::less<>> instruments_;
};

}  // namespace hbp::telemetry
