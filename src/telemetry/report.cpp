#include "telemetry/report.hpp"

#include <cstdio>

#include "telemetry/json.hpp"
#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hbp::telemetry {

void RunManifest::set(std::string key, std::string value) {
  config.push_back(Field{std::move(key), std::move(value), /*quoted=*/true});
}

void RunManifest::set_int(std::string key, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  config.push_back(Field{std::move(key), buf, /*quoted=*/false});
}

void RunManifest::set_double(std::string key, double value) {
  config.push_back(
      Field{std::move(key), JsonWriter::format_double(value), /*quoted=*/false});
}

void RunManifest::set_bool(std::string key, bool value) {
  config.push_back(Field{std::move(key), value ? "true" : "false",
                         /*quoted=*/false});
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void emit_manifest(JsonWriter& json, const RunManifest& manifest) {
  json.key("manifest").begin_object();
  json.kv("name", manifest.name);
  json.kv("seed", manifest.seed);
  json.kv("trace_digest", hex64(manifest.trace_digest));
  json.kv("events_executed", manifest.events_executed);
  json.kv("sim_seconds", manifest.sim_seconds);
  json.key("config").begin_object();
  for (const RunManifest::Field& f : manifest.config) {
    json.key(f.key);
    if (f.quoted) {
      json.value(f.rendered);
    } else {
      json.raw(f.rendered);
    }
  }
  json.end_object();
  json.end_object();
}

void emit_metrics(JsonWriter& json, const Registry& registry) {
  json.key("metrics").begin_object();
  registry.visit([&json](const std::string& name, const Counter* counter,
                         const Gauge* gauge, const Log2Histogram* histogram,
                         const TimeSeries* series) {
    json.key(name).begin_object();
    if (counter != nullptr) {
      json.kv("type", "counter");
      json.kv("value", counter->value());
    } else if (gauge != nullptr) {
      json.kv("type", "gauge");
      json.kv("value", gauge->value());
    } else if (histogram != nullptr) {
      json.kv("type", "histogram");
      json.kv("count", histogram->count());
      json.kv("sum", histogram->sum());
      json.kv("min", histogram->min());
      json.kv("max", histogram->max());
      json.kv("mean", histogram->mean());
      json.kv("p50", histogram->quantile(0.5));
      json.kv("p99", histogram->quantile(0.99));
      json.key("buckets").begin_array();
      for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
        if (histogram->bucket_count(b) == 0) continue;
        json.begin_object();
        json.kv("lo", Log2Histogram::bucket_lo(b));
        json.kv("hi", Log2Histogram::bucket_hi(b));
        json.kv("count", histogram->bucket_count(b));
        json.end_object();
      }
      json.end_array();
    } else if (series != nullptr) {
      json.kv("type", "time_series");
      json.kv("interval_seconds", series->interval().to_seconds());
      const char* mode = "sum";
      if (series->mode() == TimeSeries::Mode::kMax) mode = "max";
      if (series->mode() == TimeSeries::Mode::kLast) mode = "last";
      json.kv("mode", mode);
      json.key("values").begin_array();
      for (const double v : series->values()) json.value(v);
      json.end_array();
    }
    json.end_object();
  });
  json.end_object();
}

void emit_perf(JsonWriter& json, const PerfStats& perf) {
  json.key("perf").begin_object();
  json.kv("wall_seconds", perf.wall_seconds);
  json.kv("events_executed", perf.events_executed);
  json.kv("events_per_sec", perf.events_per_sec());
  if (perf.sim_seconds > 0.0) {
    json.kv("wall_per_sim_second", perf.wall_seconds / perf.sim_seconds);
  }
  json.kv("peak_rss_bytes", perf.peak_rss_bytes);
  if (perf.peak_queue_depth > 0) {
    json.kv("peak_event_queue_depth",
            static_cast<std::uint64_t>(perf.peak_queue_depth));
  }
  if (!perf.event_types.empty()) {
    json.key("event_types").begin_object();
    for (const LoopProfiler::TypeStats& s : perf.event_types) {
      json.key(s.label).begin_object();
      json.kv("count", s.count);
      json.kv("wall_seconds", static_cast<double>(s.wall_ns) * 1e-9);
      json.end_object();
    }
    json.end_object();
  }
  json.end_object();
}

}  // namespace

std::string render_run_report(const RunManifest& manifest,
                              const Registry* registry, const PerfStats* perf,
                              const ReportOptions& options) {
  JsonWriter json;
  json.begin_object();
  json.kv("schema", "hbp-run-report/1");
  emit_manifest(json, manifest);
  if (registry != nullptr) emit_metrics(json, *registry);
  if (perf != nullptr && options.include_perf) emit_perf(json, *perf);
  json.end_object();
  std::string out = json.str();
  out += '\n';
  return out;
}

void write_run_report(const std::string& path, const RunManifest& manifest,
                      const Registry* registry, const PerfStats* perf,
                      const ReportOptions& options) {
  write_file_or_die(path, render_run_report(manifest, registry, perf, options));
}

std::string render_bench_record(const std::string& name,
                                const std::vector<BenchCounter>& counters,
                                const Registry* metrics, const PerfStats& perf) {
  JsonWriter json;
  json.begin_object();
  json.kv("schema", "hbp-bench/1");
  json.kv("name", name);
  json.key("counters").begin_object();
  for (const BenchCounter& c : counters) json.kv(c.key, c.value);
  json.end_object();
  if (metrics != nullptr) emit_metrics(json, *metrics);
  emit_perf(json, perf);
  json.end_object();
  std::string out = json.str();
  out += '\n';
  return out;
}

void write_bench_record(const std::string& path, const std::string& name,
                        const std::vector<BenchCounter>& counters,
                        const Registry* metrics, const PerfStats& perf) {
  write_file_or_die(path, render_bench_record(name, counters, metrics, perf));
}

std::string render_timeseries_csv(const Registry& registry) {
  std::string out = "series,bin_start_seconds,value\n";
  registry.visit([&out](const std::string& name, const Counter*, const Gauge*,
                        const Log2Histogram*, const TimeSeries* series) {
    if (series == nullptr) return;
    const double interval = series->interval().to_seconds();
    const std::vector<double> values = series->values();
    for (std::size_t b = 0; b < values.size(); ++b) {
      char buf[64];
      std::snprintf(buf, sizeof buf, ",%s,%s\n",
                    JsonWriter::format_double(static_cast<double>(b) * interval)
                        .c_str(),
                    JsonWriter::format_double(values[b]).c_str());
      out += name;
      out += buf;
    }
  });
  return out;
}

void write_timeseries_csv(const std::string& path, const Registry& registry) {
  write_file_or_die(path, render_timeseries_csv(registry));
}

void write_file_or_die(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  HBP_ASSERT_MSG(f != nullptr, "cannot open output file for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  HBP_ASSERT_MSG(written == content.size() && close_rc == 0,
                 "short write to output file");
}

}  // namespace hbp::telemetry
