#include "telemetry/registry.hpp"

#include "util/assert.hpp"

namespace hbp::telemetry {

Counter& Registry::counter(std::string_view name) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(name), Slot{}).first;
    it->second.counter = std::make_unique<Counter>();
  }
  HBP_ASSERT_MSG(it->second.counter != nullptr,
                 "telemetry name already registered with a different type");
  return *it->second.counter;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(name), Slot{}).first;
    it->second.gauge = std::make_unique<Gauge>();
  }
  HBP_ASSERT_MSG(it->second.gauge != nullptr,
                 "telemetry name already registered with a different type");
  return *it->second.gauge;
}

Log2Histogram& Registry::histogram(std::string_view name) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(name), Slot{}).first;
    it->second.histogram = std::make_unique<Log2Histogram>();
  }
  HBP_ASSERT_MSG(it->second.histogram != nullptr,
                 "telemetry name already registered with a different type");
  return *it->second.histogram;
}

TimeSeries& Registry::time_series(std::string_view name, sim::SimTime interval,
                                  TimeSeries::Mode mode) {
  auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    it = instruments_.emplace(std::string(name), Slot{}).first;
    it->second.series = std::make_unique<TimeSeries>(interval, mode);
  }
  HBP_ASSERT_MSG(it->second.series != nullptr,
                 "telemetry name already registered with a different type");
  HBP_ASSERT_MSG(it->second.series->interval() == interval &&
                     it->second.series->mode() == mode,
                 "telemetry time series re-registered with different shape");
  return *it->second.series;
}

const Counter* Registry::find_counter(std::string_view name) const {
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.counter.get();
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.gauge.get();
}

const Log2Histogram* Registry::find_histogram(std::string_view name) const {
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.histogram.get();
}

const TimeSeries* Registry::find_time_series(std::string_view name) const {
  const auto it = instruments_.find(name);
  return it == instruments_.end() ? nullptr : it->second.series.get();
}

void Registry::merge(const Registry& other) {
  other.visit([this](const std::string& name, const Counter* c, const Gauge* g,
                     const Log2Histogram* h, const TimeSeries* s) {
    if (c != nullptr) {
      counter(name).add(c->value());
    } else if (g != nullptr) {
      gauge(name).set(g->value());
    } else if (h != nullptr) {
      histogram(name).merge(*h);
    } else if (s != nullptr) {
      time_series(name, s->interval(), s->mode()).merge(*s);
    }
  });
}

}  // namespace hbp::telemetry
