// The simulator's owning event closure.
//
// An Event stores its callable in a 120-byte in-place buffer — sized so the
// packet path's worst closure (a component pointer plus a full ~88-byte
// sim::Packet moved into the capture) stays inline — and never allocates
// for targets that fit.  Oversized targets (control-plane closures carrying
// signed messages) fall back to one heap allocation; packet-path scheduling
// sites enforce the inline contract with
//
//   static_assert(sim::Event::fits_inline<decltype(fn)>());
//
// so a Packet growing past the buffer is a compile error at the hot site
// rather than a silent allocation regression.
#pragma once

#include "util/small_fn.hpp"

namespace hbp::sim {

// The ISSUE/DESIGN contract is "at least 64 bytes, packet closures inline";
// see the static_asserts below and in net/link.cpp.
inline constexpr std::size_t kEventInlineBytes = 120;

using Event = util::SmallFn<kEventInlineBytes>;

static_assert(Event::kInlineSize >= 64,
              "event small-buffer contract: >= 64 inline bytes");

}  // namespace hbp::sim
