// Simulation time as an integer nanosecond count.
//
// Integer time makes event ordering exact and platform-independent; doubles
// would make tie-breaking (and therefore whole experiment tables) depend on
// accumulated rounding.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace hbp::sim {

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime millis(double ms) { return seconds(ms * 1e-3); }
  static constexpr SimTime micros(double us) { return seconds(us * 1e-6); }

  constexpr std::int64_t nanos() const { return nanos_; }
  constexpr double to_seconds() const { return static_cast<double>(nanos_) * 1e-9; }

  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.nanos_ + b.nanos_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.nanos_ - b.nanos_);
  }
  constexpr SimTime& operator+=(SimTime b) {
    nanos_ += b.nanos_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.nanos_ * k);
  }

 private:
  std::int64_t nanos_ = 0;
};

// Transmission (serialization) time of `bytes` at `bits_per_second`.
constexpr SimTime transmission_time(std::int64_t bytes, double bits_per_second) {
  return SimTime::seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace hbp::sim
