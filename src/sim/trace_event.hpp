// Causal trace events: the vocabulary shared by the simulator's trace sink
// and the src/trace subsystem that records and exports them.
//
// This is deliberately separate from sim/trace_digest.hpp: the digest is a
// one-way fingerprint folded unconditionally on every run (golden tests pin
// it); trace events are a *descriptive* record emitted only when a sink is
// installed.  Emitting them must never change the digest — hooks neither
// schedule events nor consume randomness, they only describe transitions
// that already happened.
//
// The emit idiom at every hook site is a single predicted-not-taken branch,
// so the disabled path costs one load + compare and allocates nothing:
//
//   if (simulator.tracing()) {
//     simulator.trace_event({simulator.now(), TraceVerb::kDeliver, node,
//                            p.uid, /*cause=*/0, in_port, -1});
//   }
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "util/function_ref.hpp"

namespace hbp::sim {

using NodeId = std::int32_t;  // matches sim/packet.hpp

// What happened.  Data-plane verbs carry the packet uid in `id`;
// control-plane verbs carry the uid of the packet that triggered the wave
// (the honeypot hit / diverted packet) so a whole HBP back-propagation wave
// can be reassembled as one causal tree by filtering on a single id.
enum class TraceVerb : std::uint8_t {
  // Data plane (src/net, src/transport).
  kSend = 0,        // host injected a packet       a=dst addr, b=type
  kReceive,         // host accepted a packet       a=in_port,  b=type
  kForward,         // router forwarded             a=in_port,  b=out_port
  kEnqueue,         // link queue accepted          a=to_node,  b=to_port
  kDequeue,         // link started serializing     a=to_node,  b=to_port
  kQueueDrop,       // link queue rejected (full)   a=to_node,  b=to_port
  kDeliver,         // link handed packet to node   a=in_port
  kTtlDrop,         // TTL expired at node
  kFilterDrop,      // filter/no-route drop at node
  kDivert,          // HBP divert filter consumed   a=in_port,  b=edge stamp
  kTcpFastRetransmit,  // a=snd_una (low bits), b=dupacks
  kTcpTimeout,         // a=snd_una (low bits), b=rto doublings? (impl-defined)
  // Honeypot / HBP control plane (src/honeypot, src/core).
  kWindowStart,     // honeypot window opened       a=server,   b=epoch
  kWindowEnd,       // honeypot window closed       a=server,   b=epoch
  kHoneypotHit,     // packet hit active honeypot   a=server,   b=is_attack
  kActivate,        // hit threshold crossed        a=server,   b=epoch
  kRequestSend,     // HoneypotRequest sent         a=from_as,  b=to_as
  kCancelSend,      // HoneypotCancel sent          a=from_as,  b=to_as
  kDirectRequest,   // progressive direct request   a=to_as,    b=epoch
  kReportSend,      // progressive intermediate rpt a=as,       b=epoch
  kSessionOpen,     // HSM installed a session      a=as,       b=epoch
  kSessionClose,    // HSM tore a session down      a=as,       b=epoch
  kUpstream,        // wave propagated to parent AS a=from_as,  b=to_as
  kIntraTrace,      // intra-AS input debugging     a=in_port
  kIngressReached,  // traceback hit ingress router a=in_port,  b=neighbor_as
  kLocalRequest,    // intra-AS local request       a=to_router
  kCapture,         // attacker host captured       a=dst addr
  // Pushback (src/pushback).
  kPushbackRequest,  // a=to_node, b=depth; id=aggregate
  kPushbackCancel,   // a=to_node;          id=aggregate
  kPushbackLimit,    // rate-limit drop     a=in_port; id=packet, cause=agg
};

inline constexpr std::size_t kTraceVerbCount =
    static_cast<std::size_t>(TraceVerb::kPushbackLimit) + 1;

constexpr const char* verb_name(TraceVerb v) {
  switch (v) {
    case TraceVerb::kSend: return "send";
    case TraceVerb::kReceive: return "receive";
    case TraceVerb::kForward: return "forward";
    case TraceVerb::kEnqueue: return "enqueue";
    case TraceVerb::kDequeue: return "dequeue";
    case TraceVerb::kQueueDrop: return "queue_drop";
    case TraceVerb::kDeliver: return "deliver";
    case TraceVerb::kTtlDrop: return "ttl_drop";
    case TraceVerb::kFilterDrop: return "filter_drop";
    case TraceVerb::kDivert: return "divert";
    case TraceVerb::kTcpFastRetransmit: return "tcp_fast_retransmit";
    case TraceVerb::kTcpTimeout: return "tcp_timeout";
    case TraceVerb::kWindowStart: return "window_start";
    case TraceVerb::kWindowEnd: return "window_end";
    case TraceVerb::kHoneypotHit: return "honeypot_hit";
    case TraceVerb::kActivate: return "hbp_activate";
    case TraceVerb::kRequestSend: return "honeypot_request";
    case TraceVerb::kCancelSend: return "honeypot_cancel";
    case TraceVerb::kDirectRequest: return "direct_request";
    case TraceVerb::kReportSend: return "intermediate_report";
    case TraceVerb::kSessionOpen: return "session_open";
    case TraceVerb::kSessionClose: return "session_close";
    case TraceVerb::kUpstream: return "upstream";
    case TraceVerb::kIntraTrace: return "intra_trace";
    case TraceVerb::kIngressReached: return "ingress_reached";
    case TraceVerb::kLocalRequest: return "local_request";
    case TraceVerb::kCapture: return "capture";
    case TraceVerb::kPushbackRequest: return "pushback_request";
    case TraceVerb::kPushbackCancel: return "pushback_cancel";
    case TraceVerb::kPushbackLimit: return "pushback_limit";
  }
  return "?";
}

// One span event.  Plain aggregate so hook sites can brace-init it; 40 bytes,
// trivially copyable — the recorder stores these in slabs without touching
// the heap per event.
struct TraceEvent {
  SimTime t;             // sim-time of the transition
  TraceVerb verb;
  NodeId node;           // where it happened; kInvalidNode for AS-level events
  std::uint64_t id;      // packet uid, or the wave's triggering uid
  std::uint64_t cause;   // uid of the causing packet (0 = none/root)
  std::int32_t a = -1;   // verb-specific (see enum comments)
  std::int32_t b = -1;
};

// Sink installed on the Simulator by trace::Tracer.  A function_ref keeps
// the Simulator free of any dependency on src/trace and makes the
// disabled-path check a null test.
using TraceSink = util::function_ref<void(const TraceEvent&)>;

// Flight-recorder dump hook: appends a human-readable tail of the last-N
// events to `out` (used by net::InvariantChecker diagnostics).
using TraceDumpFn = util::function_ref<void(std::string&)>;

}  // namespace hbp::sim
