// Running fingerprint of a simulation run.
//
// The event loop and the data plane fold (time, event kind, node, packet
// uid) records into a 64-bit digest.  Two runs that execute the same events
// in the same order at the same times produce the same digest; any
// divergence — a reordered event, a shifted timestamp, a lost or duplicated
// packet — changes it with overwhelming probability.  The digest is the
// determinism contract the golden regression tests pin down: every future
// optimisation (sharded runners, caching, parallel replication) must keep
// same-seed digests bit-identical.
//
// Folding costs a few arithmetic operations per record, so it stays enabled
// in every build, like the HBP_ASSERT invariants.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hbp::sim {

using NodeId = std::int32_t;  // matches sim/packet.hpp

enum class TraceKind : std::uint8_t {
  kEvent = 1,      // event-loop dispatch (node/uid unused)
  kTransmit,       // packet handed to a link
  kDeliver,        // packet delivered by a link
  kQueueDrop,      // rejected by an output queue
  kTtlDrop,        // TTL expired at a router
  kFilterDrop,     // dropped by a router filter or unroutable
};

class TraceDigest {
 public:
  // Absorbs one trace record; order-sensitive.
  void fold(SimTime t, TraceKind kind, NodeId node, std::uint64_t uid) {
    absorb(static_cast<std::uint64_t>(t.nanos()));
    absorb((static_cast<std::uint64_t>(kind) << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)));
    absorb(uid);
  }

  std::uint64_t value() const { return mix(state_ ^ records_); }
  std::uint64_t records() const { return records_; }

  void reset() {
    state_ = kSeed;
    records_ = 0;
  }

 private:
  static constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;

  // SplitMix64 finalizer: full-avalanche 64-bit mix.
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  void absorb(std::uint64_t word) {
    state_ = mix(state_ ^ word);
    ++records_;
  }

  std::uint64_t state_ = kSeed;
  std::uint64_t records_ = 0;
};

}  // namespace hbp::sim
