#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace hbp::sim {

EventQueue::EventQueue(SchedulerKind kind) : kind_(kind) {}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoFree) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  HBP_ASSERT_MSG(slots_.size() < 0xffffffffu, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.fn = Event();  // destroy the closure now, not when the record surfaces
  s.label = nullptr;
  s.occupied = false;
  ++s.gen;  // invalidates outstanding ids and ordering records
  s.next_free = free_head_;
  free_head_ = idx;
}

EventId EventQueue::push(SimTime at, Event fn, const char* label) {
  const std::uint32_t idx = acquire_slot();
  Slot& slot = slots_[idx];
  slot.fn = std::move(fn);
  slot.label = label;
  slot.occupied = true;

  const Item it{at.nanos(), next_seq_++, idx, slot.gen};
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_insert(it);
  } else {
    cal_insert(it);
  }
  ++live_count_;
  return (static_cast<EventId>(slot.gen) << 32) | idx;
}

SimTime EventQueue::next_time() const {
  HBP_ASSERT_MSG(!empty(), "next_time() on empty queue");
  return SimTime(peek_min().at_ns);
}

EventQueue::PoppedEvent EventQueue::pop() {
  HBP_ASSERT_MSG(!empty(), "pop() on empty queue");
  const Item it = take_min();
  Slot& s = slots_[it.slot];
  PoppedEvent out{SimTime(it.at_ns), std::move(s.fn), s.label};
  release_slot(it.slot);
  --live_count_;
  return out;
}

bool EventQueue::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  if (!s.occupied || s.gen != gen) return false;
  release_slot(idx);
  HBP_ASSERT(live_count_ > 0);
  --live_count_;
  ++stale_count_;       // its ordering record is still in the structure
  cal_found_valid_ = false;
  maybe_compact();
  return true;
}

std::size_t EventQueue::backlog_items() const {
  return kind_ == SchedulerKind::kBinaryHeap ? heap_.size() : cal_items_;
}

void EventQueue::maybe_compact() {
  // Amortised-O(1) bound on stale records: whenever cancellations have left
  // more dead index records than live ones, sweep them in one pass.
  if (stale_count_ <= 64 || stale_count_ <= live_count_) return;
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_compact();
  } else {
    cal_rebuild(cal_buckets_.size());
  }
}

EventQueue::Item EventQueue::take_min() {
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_prune_top();
    HBP_ASSERT(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const Item& a, const Item& b) { return a > b; });
    const Item it = heap_.back();
    heap_.pop_back();
    return it;
  }
  const Item* min = cal_find_min();
  HBP_ASSERT(min != nullptr);
  const Item it = *min;
  auto& bucket = cal_buckets_[cal_found_];
  bucket.erase(bucket.begin());
  --cal_items_;
  cal_found_valid_ = false;
  if (cal_items_ < cal_buckets_.size() / 8 && cal_buckets_.size() > 16) {
    cal_rebuild(cal_buckets_.size() / 2);
  }
  return it;
}

const EventQueue::Item& EventQueue::peek_min() const {
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_prune_top();
    HBP_ASSERT(!heap_.empty());
    return heap_.front();
  }
  const Item* min = cal_find_min();
  HBP_ASSERT(min != nullptr);
  return *min;
}

// --- binary-heap backend ----------------------------------------------------

void EventQueue::heap_insert(const Item& it) {
  heap_.push_back(it);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const Item& a, const Item& b) { return a > b; });
}

void EventQueue::heap_prune_top() const {
  while (!heap_.empty() && !item_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const Item& a, const Item& b) { return a > b; });
    heap_.pop_back();
    --stale_count_;
  }
}

void EventQueue::heap_compact() {
  std::erase_if(heap_, [this](const Item& it) { return !item_live(it); });
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const Item& a, const Item& b) { return a > b; });
  stale_count_ = 0;
}

// --- calendar backend -------------------------------------------------------

void EventQueue::cal_position(std::int64_t at_ns) const {
  const auto day = static_cast<std::uint64_t>(at_ns) >> cal_shift_;
  cal_cursor_ = static_cast<std::size_t>(day) & (cal_buckets_.size() - 1);
  cal_bucket_top_ = static_cast<std::int64_t>((day + 1) << cal_shift_);
}

void EventQueue::cal_insert(const Item& it) {
  HBP_ASSERT_MSG(it.at_ns >= 0, "calendar queue requires non-negative times");
  if (cal_buckets_.empty()) {
    cal_buckets_.resize(16);
  } else if (cal_items_ >= cal_buckets_.size() * 2) {
    cal_rebuild(cal_buckets_.size() * 2);
  }

  const bool was_empty = cal_items_ == 0;
  auto& bucket = cal_buckets_[cal_bucket_of(it.at_ns)];
  bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), it), it);
  ++cal_items_;

  const std::int64_t width = std::int64_t{1} << cal_shift_;
  if (was_empty || it.at_ns < cal_bucket_top_ - width) {
    // The new event precedes the scan position; rewind to its day so the
    // forward scan cannot step over it.
    cal_position(it.at_ns);
  }
  cal_found_valid_ = false;
}

void EventQueue::cal_rebuild(std::size_t bucket_count) {
  // Collect the live records, drop the stale ones.
  std::vector<Item> live;
  live.reserve(live_count_);
  for (auto& bucket : cal_buckets_) {
    for (const Item& it : bucket) {
      if (item_live(it)) live.push_back(it);
    }
    bucket.clear();
  }
  std::sort(live.begin(), live.end());

  // Re-tune the bucket width to the mean inter-event gap so one day holds
  // O(1) events.  Deterministic: depends only on the stored times.
  if (live.size() >= 2) {
    const auto span = static_cast<std::uint64_t>(live.back().at_ns -
                                                 live.front().at_ns);
    const std::uint64_t gap = span / live.size();
    if (gap > 0) {
      const int shift = std::bit_width(gap) - 1;
      cal_shift_ = static_cast<std::uint32_t>(std::clamp(shift, 4, 40));
    }
  }

  if (bucket_count < 16) bucket_count = 16;
  HBP_ASSERT(std::has_single_bit(bucket_count));
  cal_buckets_.assign(bucket_count, {});
  // Ascending append keeps every bucket internally sorted.
  for (const Item& it : live) {
    cal_buckets_[cal_bucket_of(it.at_ns)].push_back(it);
  }
  cal_items_ = live.size();
  stale_count_ = 0;
  cal_found_valid_ = false;
  if (!live.empty()) cal_position(live.front().at_ns);
}

const EventQueue::Item* EventQueue::cal_find_min() const {
  if (cal_found_valid_) return &cal_buckets_[cal_found_].front();
  if (cal_buckets_.empty()) return nullptr;

  const std::size_t n = cal_buckets_.size();
  const std::int64_t width = std::int64_t{1} << cal_shift_;

  auto prune_front = [this](std::vector<Item>& bucket) {
    while (!bucket.empty() && !item_live(bucket.front())) {
      bucket.erase(bucket.begin());
      --cal_items_;
      --stale_count_;
    }
  };

  // Walk day buckets from the scan position: the first bucket whose front
  // falls inside its current day holds the global minimum (equal times can
  // never split across buckets, so (time, seq) order is exact).
  for (std::size_t scanned = 0; scanned < n; ++scanned) {
    auto& bucket = cal_buckets_[cal_cursor_];
    prune_front(bucket);
    if (!bucket.empty() && bucket.front().at_ns < cal_bucket_top_) {
      cal_found_ = cal_cursor_;
      cal_found_valid_ = true;
      return &bucket.front();
    }
    cal_cursor_ = (cal_cursor_ + 1) & (n - 1);
    cal_bucket_top_ += width;
  }

  // A whole year without a hit (sparse far-future population): find the
  // minimum bucket front directly and jump the scan position to it.
  const Item* best = nullptr;
  std::size_t best_bucket = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto& bucket = cal_buckets_[i];
    prune_front(bucket);
    if (!bucket.empty() && (best == nullptr || bucket.front() < *best)) {
      best = &bucket.front();
      best_bucket = i;
    }
  }
  if (best != nullptr) {
    cal_position(best->at_ns);
    cal_found_ = best_bucket;
    cal_found_valid_ = true;
  }
  return best;
}

}  // namespace hbp::sim
