#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hbp::sim {

namespace {
struct EntryGreater {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    return a > b;
  }
};
}  // namespace

EventId EventQueue::push(SimTime at, EventFn fn, const char* label) {
  const EventId id = states_.size();
  states_.push_back(State::kPending);
  heap_.push_back(Entry{at, next_seq_++, id, std::move(fn), label});
  std::push_heap(heap_.begin(), heap_.end(), EntryGreater{});
  ++live_count_;
  return id;
}

void EventQueue::drop_cancelled_top() const {
  while (!heap_.empty() && states_[heap_.front().id] == State::kCancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_top();
  HBP_ASSERT_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().at;
}

EventQueue::PoppedEvent EventQueue::pop() {
  drop_cancelled_top();
  HBP_ASSERT_MSG(!heap_.empty(), "pop() on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  states_[e.id] = State::kFired;
  --live_count_;
  return PoppedEvent{e.at, std::move(e.fn), e.label};
}

bool EventQueue::cancel(EventId id) {
  if (id >= states_.size() || states_[id] != State::kPending) return false;
  states_[id] = State::kCancelled;
  HBP_ASSERT(live_count_ > 0);
  --live_count_;
  return true;
}

}  // namespace hbp::sim
