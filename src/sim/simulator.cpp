#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace hbp::sim {

EventId Simulator::at(SimTime when, Event fn, const char* label) {
  HBP_ASSERT_MSG(when >= now_, "cannot schedule an event in the past");
  return queue_.push(when, std::move(fn), label);
}

void Simulator::dispatch(EventQueue::PoppedEvent&& ev) {
  HBP_ASSERT(ev.at >= now_);
  now_ = ev.at;
  ++executed_;
  trace_.fold(ev.at, TraceKind::kEvent, /*node=*/-1, executed_);
  if (profiler_ == nullptr) {
    ev.fn();
    return;
  }
  // +1: the popped event itself was part of the pending set this instant.
  profiler_->note_queue_depth(queue_.size() + 1);
  const auto t0 = telemetry::LoopProfiler::Clock::now();
  ev.fn();
  profiler_->record(ev.label, telemetry::LoopProfiler::Clock::now() - t0);
}

void Simulator::run_until(SimTime horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    dispatch(queue_.pop());
  }
  if (now_ < horizon) now_ = horizon;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    dispatch(queue_.pop());
  }
}

telemetry::Registry& Simulator::telemetry() {
  if (telemetry_ == nullptr) {
    telemetry_ = std::make_shared<telemetry::Registry>();
  }
  return *telemetry_;
}

std::shared_ptr<telemetry::Registry> Simulator::telemetry_ptr() {
  telemetry();
  return telemetry_;
}

void Simulator::enable_profiling() {
  if (profiler_ == nullptr) {
    profiler_ = std::make_unique<telemetry::LoopProfiler>();
  }
}

}  // namespace hbp::sim
