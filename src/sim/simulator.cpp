#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace hbp::sim {

EventId Simulator::at(SimTime when, EventFn fn) {
  HBP_ASSERT_MSG(when >= now_, "cannot schedule an event in the past");
  return queue_.push(when, std::move(fn));
}

void Simulator::run_until(SimTime horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto [at, fn] = queue_.pop();
    HBP_ASSERT(at >= now_);
    now_ = at;
    ++executed_;
    trace_.fold(at, TraceKind::kEvent, /*node=*/-1, executed_);
    fn();
  }
  if (now_ < horizon) now_ = horizon;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    auto [at, fn] = queue_.pop();
    HBP_ASSERT(at >= now_);
    now_ = at;
    ++executed_;
    trace_.fold(at, TraceKind::kEvent, /*node=*/-1, executed_);
    fn();
  }
}

}  // namespace hbp::sim
