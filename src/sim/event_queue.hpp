// Pending-event set for the discrete-event engine.
//
// A binary min-heap keyed on (time, insertion sequence): events scheduled
// for the same instant fire in the order they were scheduled, which keeps
// simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace hbp::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  // Returns an id usable with cancel().  `label` is an optional static
  // string naming the event type for the loop profiler (scheduling sites
  // pass string literals; the queue only stores the pointer).
  EventId push(SimTime at, EventFn fn, const char* label = nullptr);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Time of the earliest live event; queue must be non-empty.
  SimTime next_time() const;

  struct PoppedEvent {
    SimTime at;
    EventFn fn;
    const char* label;  // as passed to push(); may be null
  };

  // Pops and returns the earliest live event.
  PoppedEvent pop();

  // Lazily cancels a pending event; cancelling an already-fired or unknown
  // id is a no-op and returns false.
  bool cancel(EventId id);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventId id;
    EventFn fn;
    const char* label;

    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  enum class State : std::uint8_t { kPending, kFired, kCancelled };

  void drop_cancelled_top() const;

  mutable std::vector<Entry> heap_;
  std::vector<State> states_;  // indexed by EventId
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace hbp::sim
