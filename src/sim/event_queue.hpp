// Pending-event set for the discrete-event engine.
//
// Two scheduler backends behind one interface, selectable per run:
//
//  - kBinaryHeap: a binary min-heap of 24-byte index records keyed on
//    (time, insertion sequence).
//  - kCalendar: a calendar queue (Brown 1988) — a power-of-two ring of
//    day-buckets, each kept sorted by (time, insertion sequence), with the
//    bucket count and width re-tuned as the population changes.
//
// Both backends realise the exact same total order — events fire by (time,
// insertion sequence) — so a run's trace digest is byte-identical under
// either; the golden regression tests pin that down.
//
// Event closures themselves never move through the ordering structure: they
// live in a slab of recycled slots addressed by the index records, and ids
// carry a per-slot generation so stale ids and stale index records are
// rejected in O(1).  Steady-state push/pop/cancel performs zero heap
// allocations once the slab and the ordering structure have reached their
// peak size.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace hbp::sim {

using EventId = std::uint64_t;

enum class SchedulerKind : std::uint8_t { kBinaryHeap, kCalendar };

class EventQueue {
 public:
  explicit EventQueue(SchedulerKind kind = SchedulerKind::kBinaryHeap);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SchedulerKind kind() const { return kind_; }

  // Returns an id usable with cancel().  `label` is an optional static
  // string naming the event type for the loop profiler (scheduling sites
  // pass string literals; the queue only stores the pointer).
  EventId push(SimTime at, Event fn, const char* label = nullptr);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Time of the earliest live event; queue must be non-empty.
  SimTime next_time() const;

  struct PoppedEvent {
    SimTime at;
    Event fn;
    const char* label;  // as passed to push(); may be null
  };

  // Pops and returns the earliest live event.
  PoppedEvent pop();

  // Cancels a pending event, destroying its closure and recycling its slot
  // immediately; cancelling an already-fired or unknown id is a no-op and
  // returns false.
  bool cancel(EventId id);

  // --- bounded-memory introspection (regression tests) ---

  // Slots ever created; bounded by the peak number of concurrently pending
  // events (slots recycle through a free list, never accumulate).
  std::size_t slot_capacity() const { return slots_.size(); }
  // Index records still inside the ordering structure, live + stale.
  // Stale records (from cancellations) are dropped when they surface and
  // compacted away whenever they outnumber the live ones.
  std::size_t backlog_items() const;
  std::size_t stale_items() const { return stale_count_; }

 private:
  // 24-byte ordering record; the closure stays in the slab.
  struct Item {
    std::int64_t at_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    bool operator<(const Item& o) const {
      if (at_ns != o.at_ns) return at_ns < o.at_ns;
      return seq < o.seq;
    }
    bool operator>(const Item& o) const { return o < *this; }
  };

  struct Slot {
    Event fn;
    const char* label = nullptr;
    std::uint32_t gen = 0;        // bumped on every free
    std::uint32_t next_free = 0;  // free-list link
    bool occupied = false;
  };

  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  bool item_live(const Item& it) const {
    const Slot& s = slots_[it.slot];
    return s.occupied && s.gen == it.gen;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void maybe_compact();

  // Removes and returns the earliest live item (backend dispatch).
  Item take_min();
  // Earliest live item without removing it.
  const Item& peek_min() const;

  // --- binary-heap backend ---
  void heap_insert(const Item& it);
  void heap_prune_top() const;
  void heap_compact();

  // --- calendar backend ---
  void cal_insert(const Item& it);
  void cal_rebuild(std::size_t bucket_count);
  void cal_position(std::int64_t at_ns) const;
  // Locates the bucket holding the minimum live item; returns nullptr when
  // no live item exists.  Prunes stale bucket fronts as it scans.
  const Item* cal_find_min() const;
  std::size_t cal_bucket_of(std::int64_t at_ns) const {
    return static_cast<std::size_t>(
               static_cast<std::uint64_t>(at_ns) >> cal_shift_) &
           (cal_buckets_.size() - 1);
  }

  SchedulerKind kind_;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  mutable std::size_t stale_count_ = 0;

  mutable std::vector<Item> heap_;

  mutable std::vector<std::vector<Item>> cal_buckets_;
  mutable std::size_t cal_items_ = 0;       // live + stale records stored
  std::uint32_t cal_shift_ = 20;            // bucket width = 2^shift ns
  mutable std::size_t cal_cursor_ = 0;      // current day bucket
  mutable std::int64_t cal_bucket_top_ = 0;  // upper time bound of cursor day
  mutable std::size_t cal_found_ = 0;       // bucket located by peek
  mutable bool cal_found_valid_ = false;
};

}  // namespace hbp::sim
