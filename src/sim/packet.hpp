// The simulated packet.
//
// The protocol-visible header carries a *spoofable* source address; the
// ground-truth origin node is carried separately and must never be read by
// protocol code (only by the metrics layer, to score captures).  Tests
// enforce this separation by spoofing every attack packet and checking that
// defenses still localise the true origin.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hbp::sim {

using Address = std::uint32_t;   // IPv4-like host address
using NodeId = std::int32_t;     // dense simulator-internal node index
inline constexpr NodeId kInvalidNode = -1;

enum class PacketType : std::uint8_t {
  kData,            // CBR payload (client or attacker)
  kRequest,         // service request (first packet of an exchange)
  kHandshakeSyn,    // connection handshake, client -> server
  kHandshakeAck,    // connection handshake, server -> client
  kCheckpoint,      // roaming-honeypots connection checkpoint
  kProbe,           // benign background probe (false-positive study)
  kTcpSyn,          // TCP-lite connection setup
  kTcpSynAck,
  kTcpData,         // TCP-lite segment (seq/ack fields below)
  kTcpAck,
};

// Marking field written by AS edge routers during honeypot sessions so the
// HSM can identify the ingress point (Section 5.1; uses the IP ID field of
// traffic that will be discarded anyway, lg n bits for n edge routers).
inline constexpr std::int32_t kNoMark = -1;

struct Packet {
  std::uint64_t uid = 0;           // unique per simulation, for tracing
  PacketType type = PacketType::kData;
  Address src = 0;                 // protocol-visible, possibly spoofed
  Address dst = 0;
  std::int32_t size_bytes = 1000;
  std::uint8_t ttl = 64;
  std::int32_t mark = kNoMark;     // edge-router id stamp (marking mode)
  std::int32_t tunnel_id = kNoMark;  // GRE-like tunnel ingress id (tunnel mode)
  std::uint32_t flow = 0;          // flow identifier for per-flow accounting
  std::int64_t seq = 0;            // TCP-lite sequence number (byte offset)
  std::int64_t ack = 0;            // TCP-lite cumulative acknowledgement

  // Probabilistic packet marking (Savage et al. edge sampling, used by the
  // PPM traceback baseline): an edge (start, end) plus the hop distance
  // from the marking router to the victim.
  std::int32_t edge_start = kNoMark;
  std::int32_t edge_end = kNoMark;
  std::int32_t edge_distance = 0;

  // --- ground truth, invisible to protocol logic ---
  NodeId origin_node = kInvalidNode;  // who really sent it
  bool is_attack = false;             // labeled by the traffic generator
  SimTime sent_at = SimTime::zero();
};

}  // namespace hbp::sim
