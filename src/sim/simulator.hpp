// The discrete-event simulator: a clock plus the pending-event set.
//
// All model components hold a reference to one Simulator and schedule
// closures on it; the main loop pops events in time order until the horizon
// or until the queue drains.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "sim/trace_digest.hpp"

namespace hbp::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  EventId at(SimTime when, EventFn fn);
  EventId after(SimTime delay, EventFn fn) { return at(now_ + delay, fn); }
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs events with time <= horizon; the clock ends at the horizon even if
  // the queue drained earlier.
  void run_until(SimTime horizon);

  // Runs until the event queue is empty.
  void run_all();

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  // Time of the earliest pending event, if any (invariant audits).
  std::optional<SimTime> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.next_time();
  }

  // Running fingerprint of this run: the event loop folds every dispatched
  // event and the data plane folds every packet transition.
  TraceDigest& trace() { return trace_; }
  const TraceDigest& trace() const { return trace_; }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
  TraceDigest trace_;
};

}  // namespace hbp::sim
