// The discrete-event simulator: a clock plus the pending-event set.
//
// All model components hold a reference to one Simulator and schedule
// closures on it; the main loop pops events in time order until the horizon
// or until the queue drains.
//
// Observability: every Simulator lazily owns a telemetry::Registry that
// components use to register always-on instruments, and an optional
// LoopProfiler (enable_profiling()) that attributes dispatch counts and
// wall time to the scheduling-site labels passed to at()/after().  Neither
// schedules events nor consumes randomness, so enabling them leaves trace
// digests bit-identical; with profiling disabled the dispatch loop pays a
// single never-taken branch.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "sim/trace_digest.hpp"
#include "sim/trace_event.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/registry.hpp"

namespace hbp::sim {

class Simulator {
 public:
  explicit Simulator(SchedulerKind scheduler = SchedulerKind::kBinaryHeap)
      : queue_(scheduler) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  SchedulerKind scheduler() const { return queue_.kind(); }

  // `label` names the event type for the loop profiler; pass a string
  // literal (the pointer is stored, not the contents).
  EventId at(SimTime when, Event fn, const char* label = nullptr);
  EventId after(SimTime delay, Event fn, const char* label = nullptr) {
    return at(now_ + delay, std::move(fn), label);
  }
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs events with time <= horizon; the clock ends at the horizon even if
  // the queue drained earlier.
  void run_until(SimTime horizon);

  // Runs until the event queue is empty.
  void run_all();

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  // Time of the earliest pending event, if any (invariant audits).
  std::optional<SimTime> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.next_time();
  }

  // Running fingerprint of this run: the event loop folds every dispatched
  // event and the data plane folds every packet transition.
  TraceDigest& trace() { return trace_; }
  const TraceDigest& trace() const { return trace_; }

  // Causal tracing sink (trace::Tracer::attach installs one).  Like
  // profiling, tracing is observational: hooks fire only behind tracing(),
  // never schedule events or consume randomness, so digests stay
  // bit-identical whether a sink is installed or not.
  void set_trace_sink(TraceSink sink) { trace_sink_ = sink; }
  bool tracing() const { return static_cast<bool>(trace_sink_); }
  void trace_event(const TraceEvent& e) {
    if (trace_sink_) trace_sink_(e);
  }

  // Flight-recorder dump hook: appends the recorder's last-N-events tail to
  // `out`.  Returns false (and leaves `out` alone) when no recorder is
  // attached — invariant-audit diagnostics degrade gracefully.
  void set_flight_dump(TraceDumpFn dump) { flight_dump_ = dump; }
  bool dump_flight(std::string& out) const {
    if (!flight_dump_) return false;
    flight_dump_(out);
    return true;
  }

  // Per-run instrument registry, created on first use (a Simulator that
  // never touches telemetry allocates nothing).
  telemetry::Registry& telemetry();
  // True once the lazy registry exists; lets tests assert that passive
  // observers (disabled profiler/tracer) never mutate telemetry state.
  bool has_telemetry() const { return telemetry_ != nullptr; }
  // Shared handle so results can outlive the Simulator (scenario runners
  // hand it to TreeResult/StringResult).
  std::shared_ptr<telemetry::Registry> telemetry_ptr();

  // Turns on event-loop profiling (dispatch counts + wall time per label,
  // peak queue depth).  Idempotent.
  void enable_profiling();
  bool profiling_enabled() const { return profiler_ != nullptr; }
  const telemetry::LoopProfiler* profiler() const { return profiler_.get(); }

 private:
  void dispatch(EventQueue::PoppedEvent&& ev);

  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
  TraceDigest trace_;
  TraceSink trace_sink_;
  TraceDumpFn flight_dump_;
  std::shared_ptr<telemetry::Registry> telemetry_;
  std::unique_ptr<telemetry::LoopProfiler> profiler_;
};

}  // namespace hbp::sim
