// The discrete-event simulator: a clock plus the pending-event set.
//
// All model components hold a reference to one Simulator and schedule
// closures on it; the main loop pops events in time order until the horizon
// or until the queue drains.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace hbp::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  EventId at(SimTime when, EventFn fn);
  EventId after(SimTime delay, EventFn fn) { return at(now_ + delay, fn); }
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs events with time <= horizon; the clock ends at the horizon even if
  // the queue drained earlier.
  void run_until(SimTime horizon);

  // Runs until the event queue is empty.
  void run_all();

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
};

}  // namespace hbp::sim
