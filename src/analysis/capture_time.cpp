#include "analysis/capture_time.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace hbp::analysis {

namespace {
void check(const Params& params) {
  HBP_ASSERT(params.m > 0 && params.p > 0 && params.p <= 1);
  HBP_ASSERT(params.r > 0 && params.tau >= 0 && params.h >= 1);
}
}  // namespace

double hop_time(const Params& params) { return 1.0 / params.r + params.tau; }

Estimate basic_continuous(const Params& params) {
  check(params);
  // Eq. (3): every honeypot epoch overlaps the attack for the full m
  // seconds; the basic scheme succeeds in one epoch iff m covers all h
  // hops.  Expected failures before the first success: (1-p)/p epochs.
  Estimate e;
  e.seconds = params.m * (1.0 / params.p - 1.0);
  e.valid = params.m >= params.h * hop_time(params);
  return e;
}

Estimate progressive_continuous(const Params& params) {
  check(params);
  // Eq. (4): each honeypot epoch advances m / (1/r + τ) hops; trials are m
  // seconds apart and succeed with probability p.
  Estimate e;
  const double hops_per_success = params.m / hop_time(params);
  e.seconds = (params.m / params.p) * params.h / hops_per_success;
  e.valid = params.m >= hop_time(params);
  return e;
}

OnOffCase classify_onoff(double m, double t_on, double t_off) {
  HBP_ASSERT(m > 0 && t_on > 0 && t_off >= 0);
  if (m <= t_on / 2.0) return OnOffCase::kCase1;
  if (m <= t_on + t_off) return OnOffCase::kCase2;
  return OnOffCase::kCase3;
}

Estimate basic_onoff(const Params& params, double t_on, double t_off) {
  check(params);
  Estimate e;
  const double period = t_on + t_off;
  const double needed = params.h * hop_time(params);
  switch (classify_onoff(params.m, t_on, t_off)) {
    case OnOffCase::kCase1: {
      // Eq. (5): trials are on-bursts; the expected attack-honeypot
      // overlap per burst is p(t_on - m).
      e.seconds = (1.0 / params.p - 1.0) * period;
      e.valid = params.p * (t_on - params.m) >= needed;
      break;
    }
    case OnOffCase::kCase2: {
      // Eq. (7, basic): each burst meets one epoch for at least t_on/2.
      e.seconds = (1.0 / params.p - 1.0) * period;
      e.valid = t_on / 2.0 >= needed;
      break;
    }
    case OnOffCase::kCase3: {
      // Eq. (10): each epoch overlaps bursts for T_m = t_on * floor(m/period).
      const double t_m = t_on * std::floor(params.m / period);
      e.seconds = params.m * (1.0 / params.p - 1.0);
      e.valid = t_m >= needed;
      break;
    }
  }
  return e;
}

Estimate progressive_onoff(const Params& params, double t_on, double t_off) {
  check(params);
  Estimate e;
  const double period = t_on + t_off;
  const double ht = hop_time(params);
  switch (classify_onoff(params.m, t_on, t_off)) {
    case OnOffCase::kCase1: {
      // Eq. (6): average overlap per burst p(t_on - m); hops per burst
      // p(t_on - m)/(1/r + τ); trials every t_on + t_off seconds.
      const double overlap = params.p * (t_on - params.m);
      e.seconds = period * params.h / (overlap / ht);
      e.valid = overlap >= ht;
      break;
    }
    case OnOffCase::kCase2: {
      // Eq. (7, progressive): overlap per successful burst >= t_on / 2.
      const double hops_per_success = (t_on / 2.0) / ht;
      e.seconds = (period / params.p) * params.h / hops_per_success;
      e.valid = t_on / 2.0 >= ht;
      break;
    }
    case OnOffCase::kCase3: {
      // Eq. (11): overlap per honeypot epoch T_m = t_on * floor(m/period).
      const double t_m = t_on * std::floor(params.m / period);
      const double hops_per_success = t_m / ht;
      e.seconds = (params.m / params.p) * params.h / hops_per_success;
      e.valid = t_m >= ht;
      break;
    }
  }
  return e;
}

double best_attack_t_on(const Params& params) {
  // Eq. (8): shrink the burst until one success advances exactly one hop.
  return 2.0 * hop_time(params);
}

double progressive_onoff_special(const Params& params, double t_off) {
  check(params);
  // Eq. (9): with t_on = 2(1/r + τ), hops_per_success == 1.
  return params.h * (best_attack_t_on(params) + t_off) / params.p;
}

Estimate progressive_follower(const Params& params, double d_follow) {
  check(params);
  HBP_ASSERT(d_follow >= 0);
  // Follower expression: overlap per honeypot epoch is d_follow, so each
  // success advances max(1, d_follow/(1/r + τ)) hops.
  Estimate e;
  const double hops_per_success =
      std::max(1.0, d_follow / hop_time(params));
  e.seconds = (params.m / params.p) * params.h / hops_per_success;
  e.valid = d_follow >= hop_time(params);
  return e;
}

}  // namespace hbp::analysis
