// Closed-form capture-time model (Section 7, Eqs. (1)-(11) plus the
// follower-attack expression).
//
// Honeypot epochs are Bernoulli trials with success probability p (the
// server is a honeypot).  Each success overlaps the attack stream for some
// time; sessions advance one hop per (1/r + τ) seconds of overlap — 1/r to
// receive an attack packet at rate r packets/s and τ to propagate one hop.
// The basic scheme must cover all h hops within a single overlap; the
// progressive scheme accumulates hops across epochs via the
// intermediate-AS list.
#pragma once

namespace hbp::analysis {

struct Params {
  double m = 10.0;    // epoch length (s)
  double p = 0.4;     // honeypot probability
  double r = 10.0;    // attack rate (packets/s)
  double tau = 1.0;   // one-hop session propagation time (s)
  int h = 10;         // attacker distance in back-propagation hops
};

// 1/r + τ: time to advance the session tree by one hop.
double hop_time(const Params& params);

// A capture-time prediction with its validity condition.
struct Estimate {
  double seconds = 0.0;
  bool valid = false;  // the equation's side condition holds
};

// --- continuous attack (Section 7.2) ---
Estimate basic_continuous(const Params& params);        // Eq. (3)
Estimate progressive_continuous(const Params& params);  // Eq. (4)

// --- on-off attack (Section 7.3) ---
enum class OnOffCase {
  kCase1,  // m <= t_on / 2           (bursts span multiple epochs)
  kCase2,  // t_on/2 < m <= t_on+t_off (each burst meets exactly one epoch)
  kCase3,  // m > t_on + t_off         (each epoch spans multiple bursts)
};
OnOffCase classify_onoff(double m, double t_on, double t_off);

Estimate basic_onoff(const Params& params, double t_on, double t_off);
Estimate progressive_onoff(const Params& params, double t_on, double t_off);

// Eq. (8)/(9): the attacker-optimal burst length t_on = 2(1/r + τ), where
// each success advances exactly one hop and E[CT] = h (t_on + t_off) / p.
double best_attack_t_on(const Params& params);
double progressive_onoff_special(const Params& params, double t_off);  // Eq. (9)

// --- follower attack (Section 7.3) ---
// The attacker stops d_follow seconds after each honeypot epoch begins.
Estimate progressive_follower(const Params& params, double d_follow);

}  // namespace hbp::analysis
