// Reproduces Fig. 5: "Performance of progressive back-propagation against
// continuous and on-off attacks" — analytical capture time vs burst length
// t_on, for t_off in {5, 10} s, against the continuous-attack line.
//
// Parameters (DESIGN.md reconstruction): m = 10 s, p = (N-k)/N = 0.4
// (N = 5, k = 3), r = 10 packets/s, tau = 1 s, h = 10 hops.  The curves
// annotate the active case of Section 7.3; the paper's observation is that
// the best attack strategy lands in the Eq. (9) special case around
// t_on = 2(1/r + tau) = 2.2 s.
#include <cstdio>

#include "analysis/capture_time.hpp"
#include "bench/bench_util.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

const char* case_name(hbp::analysis::OnOffCase c) {
  switch (c) {
    case hbp::analysis::OnOffCase::kCase1: return "case1";
    case hbp::analysis::OnOffCase::kCase2: return "case2";
    case hbp::analysis::OnOffCase::kCase3: return "case3";
  }
  return "?";
}

std::string cell(const hbp::analysis::Estimate& e,
                 hbp::analysis::OnOffCase c) {
  std::string s = hbp::util::Table::num(e.seconds, 1);
  s += " (";
  s += case_name(c);
  if (!e.valid) s += ", cond!";
  s += ")";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  analysis::Params params;
  params.m = flags.get_double("m", 10.0);
  params.p = flags.get_double("p", 0.4);
  params.r = flags.get_double("r", 10.0);
  params.tau = flags.get_double("tau", 1.0);
  params.h = static_cast<int>(flags.get_int("h", 10));
  const auto t_ons = flags.get_double_list(
      "t_on", {1.0, 1.5, 2.0, 2.2, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0,
               15.0, 20.0, 25.0, 30.0, 40.0});
  bench::BenchReport report("fig5_analysis", flags);
  flags.finish();

  util::print_banner("Fig. 5 — progressive back-propagation capture time "
                     "(analysis, Eqs. (4),(6),(7),(9),(11))");
  std::printf("m = %.0f s, p = %.2f, r = %.0f pkt/s, tau = %.1f s, h = %d\n",
              params.m, params.p, params.r, params.tau, params.h);
  std::printf("continuous attack (Eq. 4): E[CT] = %.1f s\n",
              analysis::progressive_continuous(params).seconds);
  std::printf("best attack burst (Eq. 8): t_on* = %.2f s\n\n",
              analysis::best_attack_t_on(params));

  util::Table table({"t_on (s)", "on-off, t_off=5 s", "on-off, t_off=10 s",
                     "continuous"});
  const double continuous = analysis::progressive_continuous(params).seconds;
  for (const double t_on : t_ons) {
    table.add_row(
        {util::Table::num(t_on, 1),
         cell(analysis::progressive_onoff(params, t_on, 5.0),
              analysis::classify_onoff(params.m, t_on, 5.0)),
         cell(analysis::progressive_onoff(params, t_on, 10.0),
              analysis::classify_onoff(params.m, t_on, 10.0)),
         util::Table::num(continuous, 1)});
  }
  table.print();

  std::printf("\nEq. (9) special-case value: t_off=5: %.1f s, t_off=10: %.1f s"
              "\n('cond!' marks points outside an equation's validity "
              "condition).\n",
              analysis::progressive_onoff_special(params, 5.0),
              analysis::progressive_onoff_special(params, 10.0));
  std::printf("Paper shape: capture time peaks at the Eq. (9) point and falls"
              " toward both\nlong bursts (approaching the continuous line) "
              "and very short bursts (case 3).\n");

  report.add_counter("continuous_capture_s", continuous);
  report.add_counter("best_t_on_s", analysis::best_attack_t_on(params));
  report.add_counter("onoff_special_toff5_s",
                     analysis::progressive_onoff_special(params, 5.0));
  report.add_counter("onoff_special_toff10_s",
                     analysis::progressive_onoff_special(params, 10.0));
  report.write();
  return 0;
}
