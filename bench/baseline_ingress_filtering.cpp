// Baseline comparison: ingress filtering (BCP 38) vs honeypot
// back-propagation — Section 2's prevention critique quantified: ingress
// filtering only suppresses spoofing where it is deployed, so a victim's
// protection depends on *global* deployment; and it breaks protocols that
// spoof legitimately (mobile IP).  HBP needs no third-party deployment to
// see benefit (Section 5.3's incentive argument) and never inspects source
// addresses at all.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "scenario/tree_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

// Fraction of attack traffic that reaches the bottleneck when a fraction f
// of access routers run ingress filtering (spoofing attackers behind
// filtering routers are silenced entirely; the rest are untouched).
double surviving_attack_fraction(double deploy_fraction, int n_attackers,
                                 std::uint64_t seed) {
  hbp::util::Rng rng(seed);
  int silenced = 0;
  for (int a = 0; a < n_attackers; ++a) {
    if (rng.bernoulli(deploy_fraction)) ++silenced;
  }
  return 1.0 - static_cast<double>(silenced) / n_attackers;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const int seeds = static_cast<int>(flags.get_int("seeds", 2));
  bench::BenchReport report("baseline_ingress_filtering", flags);
  flags.finish();

  util::print_banner("Baseline — ingress filtering (BCP 38) vs honeypot "
                     "back-propagation");

  // Effective attack load after f of the *world's* access networks filter,
  // fed into the tree scenario as a reduced attacker count.
  scenario::TreeExperimentConfig config;
  config.tree.leaf_count = 300;
  config.n_clients = 75;
  config.scheme = scenario::Scheme::kNoDefense;

  util::Table table(
      {"Filtering deployment", "Attack traffic surviving",
       "Client throughput (no other defense)", "HBP (0% filtering)"});
  // HBP column: full HBP with zero ingress filtering anywhere.
  scenario::TreeExperimentConfig hbp_config = config;
  hbp_config.scheme = scenario::Scheme::kHbp;
  hbp_config.n_attackers = 25;
  const auto hbp =
      scenario::run_replicated(hbp_config, seeds, seed);
  report.add_summary(hbp);
  report.add_counter("hbp_throughput", hbp.throughput.mean());
  const std::string hbp_cell = util::Table::percent(hbp.throughput.mean());

  for (const double f : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    const double surviving = surviving_attack_fraction(f, 25, seed + 11);
    config.n_attackers = std::max(1, static_cast<int>(25 * surviving + 0.5));
    const auto r = scenario::run_replicated(config, seeds, seed);
    report.add_summary(r);
    report.add_counter("throughput.deploy=" + util::Table::num(f, 2),
                       r.throughput.mean());
    table.add_row({util::Table::percent(f, 0),
                   util::Table::percent(surviving, 0),
                   surviving == 0.0 ? "90.0% (no attack)"
                                    : util::Table::percent(r.throughput.mean()),
                   hbp_cell});
  }
  table.print();

  std::printf("\nIngress filtering is all-or-nothing per attacker network "
              "and only pays off\nfor the victim at near-universal "
              "deployment; honeypot back-propagation\nreaches ~%s for the "
              "victim with zero third-party filtering.  It also breaks\n"
              "legitimate spoofing (mobile IP) — see "
              "tests/marking/ingress_filter_test.cpp.\n",
              hbp_cell.c_str());
  report.write();
  return 0;
}
