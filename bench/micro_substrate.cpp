// Micro-benchmarks (google-benchmark) of the substrate hot paths: event
// queue, SHA-256 / HMAC / hash-chain generation, router forwarding, and the
// max-min allocator.  These bound the simulator's throughput (events/s).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "honeypot/hash_chain.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "pushback/maxmin.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "telemetry/report.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hbp::util::Rng rng(1);
  for (auto _ : state) {
    hbp::sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(hbp::sim::SimTime(static_cast<std::int64_t>(rng.below(1'000'000))),
             [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventChain(benchmark::State& state) {
  for (auto _ : state) {
    hbp::sim::Simulator simulator;
    std::int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) {
        simulator.after(hbp::sim::SimTime::micros(10), tick);
      }
    };
    simulator.after(hbp::sim::SimTime::micros(10), tick);
    simulator.run_all();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbp::util::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSign(benchmark::State& state) {
  const auto key = hbp::util::Sha256::hash("key");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbp::util::hmac_sha256(key, "hbp-request;dst=42;epoch=7;"));
  }
}
BENCHMARK(BM_HmacSign);

void BM_HashChainGeneration(benchmark::State& state) {
  const auto tail = hbp::util::Sha256::hash("tail");
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    hbp::honeypot::HashChain chain(tail, n);
    benchmark::DoNotOptimize(chain.key(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HashChainGeneration)->Arg(1024)->Arg(8192);

void BM_RouterForwarding(benchmark::State& state) {
  hbp::sim::Simulator simulator;
  hbp::net::Network network(simulator);
  auto& a = network.add_node<hbp::net::Host>("a");
  auto& r = network.add_node<hbp::net::Router>("r");
  auto& b = network.add_node<hbp::net::Host>("b");
  hbp::net::LinkParams link;
  link.capacity_bps = 1e12;  // serialization negligible
  link.delay = hbp::sim::SimTime::micros(1);
  link.queue_bytes = 1'000'000'000;
  network.connect(a.id(), r.id(), link);
  network.connect(r.id(), b.id(), link);
  a.set_address(network.assign_address(a.id()));
  b.set_address(network.assign_address(b.id()));
  network.compute_routes();

  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      hbp::sim::Packet p;
      p.dst = b.address();
      p.size_bytes = 1000;
      a.send(std::move(p));
    }
    simulator.run_until(simulator.now() + hbp::sim::SimTime::seconds(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_RouterForwarding);

void BM_MaxMinAllocate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hbp::util::Rng rng(2);
  std::vector<double> demands(n);
  for (auto& d : demands) d = rng.uniform(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbp::pushback::maxmin_allocate(demands, 0.3 * 10.0 * n));
  }
}
BENCHMARK(BM_MaxMinAllocate)->Arg(8)->Arg(64)->Arg(512);

// Deterministic workload for the --json perf record: a fixed event chain
// plus a fixed router-forwarding run, timed with steady_clock.  The event
// count is a pure function of the workload; only the rates are host-bound.
void write_json_record(const std::string& path) {
  const auto wall_start = std::chrono::steady_clock::now();
  hbp::sim::Simulator simulator;
  std::int64_t count = 0;
  std::function<void()> tick = [&] {
    if (++count < 200000) {
      simulator.after(hbp::sim::SimTime::micros(10), tick);
    }
  };
  simulator.after(hbp::sim::SimTime::micros(10), tick);
  simulator.run_all();

  hbp::telemetry::PerfStats perf;
  perf.wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  perf.events_executed = simulator.events_executed();
  perf.peak_rss_bytes = hbp::telemetry::peak_rss_bytes();
  perf.sim_seconds = simulator.now().to_seconds();

  std::vector<hbp::telemetry::BenchCounter> counters;
  counters.push_back(
      {"chain_events", static_cast<double>(simulator.events_executed())});
  hbp::telemetry::write_bench_record(path, "micro_substrate", counters,
                                     nullptr, perf);
  std::printf("\nWrote %s\n", path.c_str());
}

}  // namespace

// Hand-rolled main instead of BENCHMARK_MAIN(): google-benchmark rejects
// unknown flags, so `--json <path>` / `--json=<path>` is peeled off argv
// before benchmark::Initialize sees it.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_json_record(json_path);
  return 0;
}
