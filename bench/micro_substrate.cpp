// Micro-benchmarks (google-benchmark) of the substrate hot paths: event
// queue, SHA-256 / HMAC / hash-chain generation, router forwarding, and the
// max-min allocator.  These bound the simulator's throughput (events/s).
#include <benchmark/benchmark.h>

#include "honeypot/hash_chain.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "pushback/maxmin.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hbp::util::Rng rng(1);
  for (auto _ : state) {
    hbp::sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(hbp::sim::SimTime(static_cast<std::int64_t>(rng.below(1'000'000))),
             [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventChain(benchmark::State& state) {
  for (auto _ : state) {
    hbp::sim::Simulator simulator;
    std::int64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) {
        simulator.after(hbp::sim::SimTime::micros(10), tick);
      }
    };
    simulator.after(hbp::sim::SimTime::micros(10), tick);
    simulator.run_all();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbp::util::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSign(benchmark::State& state) {
  const auto key = hbp::util::Sha256::hash("key");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbp::util::hmac_sha256(key, "hbp-request;dst=42;epoch=7;"));
  }
}
BENCHMARK(BM_HmacSign);

void BM_HashChainGeneration(benchmark::State& state) {
  const auto tail = hbp::util::Sha256::hash("tail");
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    hbp::honeypot::HashChain chain(tail, n);
    benchmark::DoNotOptimize(chain.key(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HashChainGeneration)->Arg(1024)->Arg(8192);

void BM_RouterForwarding(benchmark::State& state) {
  hbp::sim::Simulator simulator;
  hbp::net::Network network(simulator);
  auto& a = network.add_node<hbp::net::Host>("a");
  auto& r = network.add_node<hbp::net::Router>("r");
  auto& b = network.add_node<hbp::net::Host>("b");
  hbp::net::LinkParams link;
  link.capacity_bps = 1e12;  // serialization negligible
  link.delay = hbp::sim::SimTime::micros(1);
  link.queue_bytes = 1'000'000'000;
  network.connect(a.id(), r.id(), link);
  network.connect(r.id(), b.id(), link);
  a.set_address(network.assign_address(a.id()));
  b.set_address(network.assign_address(b.id()));
  network.compute_routes();

  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      hbp::sim::Packet p;
      p.dst = b.address();
      p.size_bytes = 1000;
      a.send(std::move(p));
    }
    simulator.run_until(simulator.now() + hbp::sim::SimTime::seconds(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_RouterForwarding);

void BM_MaxMinAllocate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hbp::util::Rng rng(2);
  std::vector<double> demands(n);
  for (auto& d : demands) d = rng.uniform(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hbp::pushback::maxmin_allocate(demands, 0.3 * 10.0 * n));
  }
}
BENCHMARK(BM_MaxMinAllocate)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
