// Reproduces Fig. 10: "Effect of attacker locations" — mean client
// throughput (% of the bottleneck) during the attack, for attackers placed
// at the closest leaves, evenly at random, and at the furthest leaves;
// 75 clients, 25 attackers at 1.0 Mb/s each.
//
// Expected shape (paper): honeypot back-propagation is insensitive to
// location; ACC/Pushback punishes legitimate traffic more as attackers get
// closer, and is worse than no defense for close attackers ("it actually
// protects attack traffic").
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  auto config = bench::default_tree_config();
  const auto common = bench::apply_common_flags(flags, config);
  config.n_attackers = static_cast<int>(flags.get_int("attackers", 25));
  config.attacker_rate_bps = flags.get_double("rate_mbps", 1.0) * 1e6;
  bench::BenchReport report("fig10_locations", flags);
  flags.finish();

  util::print_banner(
      "Fig. 10 — client throughput vs attacker location "
      "(75 clients x 0.12 Mb/s, 25 attackers x 1.0 Mb/s)");

  util::ThreadPool pool;
  util::Table table({"Attacker Location", "Honeypot Back-propagation",
                     "Pushback", "No Defense"});

  for (const auto placement :
       {scenario::AttackerPlacement::kFar, scenario::AttackerPlacement::kEven,
        scenario::AttackerPlacement::kClose}) {
    config.placement = placement;
    std::vector<std::string> row{scenario::to_string(placement)};
    for (const auto scheme :
         {scenario::Scheme::kHbp, scenario::Scheme::kPushback,
          scenario::Scheme::kNoDefense}) {
      config.scheme = scheme;
      const auto summary = scenario::run_replicated(config, common.seeds,
                                                    common.base_seed, &pool);
      report.add_summary(summary);
      report.add_counter("throughput." + scenario::to_string(placement) + "." +
                             scenario::to_string(scheme),
                         summary.throughput.mean());
      row.push_back(util::Table::percent(summary.throughput.mean()) + " +/- " +
                    util::Table::percent(summary.throughput.ci95_halfwidth()));
    }
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nPaper shape: HBP flat and high in all three columns; "
              "Pushback degrades toward 'Close'\nand drops below No Defense "
              "there.\n");
  report.write();
  return 0;
}
