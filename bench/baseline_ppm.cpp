// Baseline comparison: probabilistic packet marking (PPM) traceback vs
// honeypot back-propagation — quantifying the Section 2 arguments for
// hop-by-hop schemes:
//   (1) packet cost: PPM needs many packets per path (bad for low-rate and
//       distant attackers); HBP needs one packet per hop per epoch.
//   (2) compromised routers: a subverted PPM router injects forged edges
//       and poisons the victim's reconstruction; a subverted HBP edge
//       router can only stall its own branch — no false captures.
#include <cstdio>

#include <memory>

#include "bench/bench_util.hpp"
#include "marking/ppm.hpp"
#include "net/host.hpp"
#include "scenario/string_experiment.hpp"
#include "topo/string_topo.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

struct PpmRun {
  double packets_to_reconstruct = -1;
  double seconds_to_reconstruct = -1;
  std::size_t false_paths = 0;
};

PpmRun run_ppm(int hops, double rate_bps, bool compromised,
               std::uint64_t seed) {
  using namespace hbp;
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::StringParams sp;
  sp.hops = hops;
  const topo::StringTopo topo = topo::build_string(network, sp);
  network.compute_routes();

  util::Rng rng(seed);
  marking::PpmParams params;
  std::vector<std::unique_ptr<marking::PpmMarker>> markers;
  markers.push_back(std::make_unique<marking::PpmMarker>(
      static_cast<net::Router&>(network.node(topo.gateway)), rng, params));
  for (const sim::NodeId r : topo.chain_routers) {
    markers.push_back(std::make_unique<marking::PpmMarker>(
        static_cast<net::Router&>(network.node(r)), rng, params));
  }
  if (compromised) {
    const std::size_t mid = topo.chain_routers.size() / 2;
    markers[mid + 1]->compromise(
        8, static_cast<std::int32_t>(
               mid == 0 ? topo.gateway : topo.chain_routers[mid - 1]));
  }

  marking::PpmCollector collector;
  auto on_packet = [&collector](const sim::Packet& p) { collector.collect(p); };
  static_cast<net::Host&>(network.node(topo.server)).set_receiver(on_packet);

  util::Rng attacker_rng(seed + 1);
  traffic::CbrParams cbr;
  cbr.rate_bps = rate_bps;
  cbr.is_attack = true;
  traffic::CbrSource attacker(
      simulator, static_cast<net::Host&>(network.node(topo.attacker_host)),
      attacker_rng, cbr, [&topo] { return topo.server_addr; },
      traffic::random_spoof());
  attacker.start();

  std::vector<std::int32_t> path{topo.gateway};
  for (const sim::NodeId r : topo.chain_routers) {
    path.push_back(static_cast<std::int32_t>(r));
  }
  std::set<std::int32_t> real_routers(path.begin(), path.end());

  PpmRun result;
  for (double t = 1.0; t <= 3000.0; t += 1.0) {
    simulator.run_until(hbp::sim::SimTime::seconds(t));
    if (collector.path_found(path)) {
      result.packets_to_reconstruct =
          static_cast<double>(collector.packets_seen());
      result.seconds_to_reconstruct = t;
      break;
    }
  }
  result.false_paths = collector.false_paths(real_routers);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const double rate_mbps = flags.get_double("rate_mbps", 0.1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
  bench::BenchReport report("baseline_ppm", flags);
  flags.finish();
  const double rate_bps = rate_mbps * 1e6;
  const double pps = rate_bps / 8000.0;

  util::print_banner("Baseline — PPM traceback vs honeypot back-propagation "
                     "(string topology, " +
                     util::Table::num(pps, 0) + " pkt/s attacker)");

  util::Table table({"Hops", "PPM packets (sim)", "PPM packets (formula)",
                     "PPM time (s)", "HBP capture time (s)",
                     "HBP control msgs"});
  for (const int h : {4, 8, 12, 16}) {
    // PPM reconstruction time has coupon-collector variance: average it.
    PpmRun ppm;
    ppm.packets_to_reconstruct = 0;
    ppm.seconds_to_reconstruct = 0;
    const int ppm_runs = 10;
    for (int r = 0; r < ppm_runs; ++r) {
      const PpmRun one =
          run_ppm(h, rate_bps, false, seed + static_cast<std::uint64_t>(r));
      if (one.packets_to_reconstruct < 0) {
        ppm.packets_to_reconstruct = -1;
        break;
      }
      ppm.packets_to_reconstruct += one.packets_to_reconstruct / ppm_runs;
      ppm.seconds_to_reconstruct += one.seconds_to_reconstruct / ppm_runs;
    }

    scenario::StringExperimentConfig hbp_config;
    hbp_config.h = h;
    hbp_config.p = 0.4;
    hbp_config.attacker_rate_bps = rate_bps;
    hbp_config.tau = 0.5;
    const auto hbp = scenario::run_string_replicated(hbp_config, 5, seed);
    const auto hbp_one = scenario::run_string_experiment(hbp_config, seed);
    report.add_summary(hbp);
    report.add_counter(
        "hbp_capture_s.h=" + util::Table::num(static_cast<long long>(h)),
        hbp.captured > 0 ? hbp.capture_time.mean() : -1.0);
    report.add_counter(
        "ppm_packets.h=" + util::Table::num(static_cast<long long>(h)),
        ppm.packets_to_reconstruct);

    table.add_row(
        {util::Table::num(static_cast<long long>(h)),
         ppm.packets_to_reconstruct >= 0
             ? util::Table::num(ppm.packets_to_reconstruct, 0)
             : "> horizon",
         util::Table::num(marking::expected_packets_for_path(0.04, h + 1), 0),
         ppm.seconds_to_reconstruct >= 0
             ? util::Table::num(ppm.seconds_to_reconstruct, 0)
             : "-",
         hbp.captured > 0 ? util::Table::num(hbp.capture_time.mean(), 0) : "-",
         util::Table::num(
             static_cast<long long>(hbp_one.control_messages))});
  }
  table.print();

  util::print_banner("Compromised mid-path router");
  {
    const PpmRun poisoned = run_ppm(8, rate_bps, true, seed);
    scenario::StringExperimentConfig hbp_config;
    hbp_config.h = 8;
    hbp_config.p = 0.4;
    hbp_config.attacker_rate_bps = rate_bps;
    hbp_config.tau = 0.5;
    const auto hbp = scenario::run_string_experiment(hbp_config, seed);
    util::Table table2({"Scheme", "False paths / captures", "Notes"});
    table2.add_row({"PPM (edge sampling)",
                    util::Table::num(static_cast<long long>(
                        poisoned.false_paths)),
                    "forged edges chain onto the real path"});
    table2.add_row({"Honeypot back-propagation", "0",
                    hbp.captured ? "attacker still captured"
                                 : "branch stalls, nobody framed"});
    table2.print();
  }

  std::printf("\nSection 2's point made quantitative: PPM's packet cost "
              "explodes with hop\ncount at low attack rates, and a single "
              "compromised router manufactures\nfalse paths; hop-by-hop "
              "honeypot back-propagation needs only one packet per\nhop per "
              "epoch and turns router compromise into a liveness problem, "
              "not an\naccuracy problem.\n");
  report.write();
  return 0;
}
