// Baseline comparison: StackPi-style victim-side mark filtering vs
// honeypot back-propagation (Section 2: "the scheme's accuracy, in terms
// of false positive and false negative rates, deteriorates with a large
// number of dispersed attackers").
//
// Setup: StackPi markers on every router of the Fig. 7 tree; the victim
// learns the marks of packets that hit honeypot windows (the same exact
// signature source HBP uses) and then filters.  False positives =
// legitimate clients whose path fingerprint collides with a blacklisted
// mark; HBP's switch-port captures have no analogous collision mode.
#include <cstdio>

#include "bench/bench_util.hpp"

#include <memory>

#include "marking/stackpi.hpp"
#include "net/host.hpp"
#include "topo/tree.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Accuracy {
  double false_positive_rate = 0.0;  // legit clients collaterally dropped
  double false_negative_rate = 0.0;  // attackers whose marks were missed
  std::size_t marks = 0;
};

Accuracy run(int n_attackers, int n_clients, std::size_t leaves,
             std::uint64_t seed) {
  using namespace hbp;
  sim::Simulator simulator;
  net::Network network(simulator);
  topo::TreeParams tp;
  tp.leaf_count = leaves;
  util::Rng rng(seed);
  const topo::Tree tree = topo::build_tree(network, rng, tp);
  network.compute_routes();

  marking::StackPiParams params;
  std::vector<std::unique_ptr<marking::PiMarker>> markers;
  auto install = [&](sim::NodeId r) {
    markers.push_back(std::make_unique<marking::PiMarker>(
        static_cast<net::Router&>(network.node(r)), params));
  };
  install(tree.gateway);
  for (const sim::NodeId r : tree.interior_routers) install(r);
  for (const sim::NodeId r : tree.access_routers) install(r);

  util::Rng place(seed + 1);
  const auto attacker_slots =
      place.choose(leaves, static_cast<std::size_t>(n_attackers));
  std::set<std::size_t> attacker_set(attacker_slots.begin(),
                                     attacker_slots.end());
  std::vector<std::size_t> client_slots;
  for (std::size_t i = 0; i < leaves && client_slots.size() <
                                            static_cast<std::size_t>(n_clients);
       ++i) {
    if (!attacker_set.contains(i)) client_slots.push_back(i);
  }

  auto& victim = static_cast<net::Host&>(network.node(tree.servers[0]));
  sim::Packet last;
  auto on_packet = [&](const sim::Packet& p) { last = p; };
  victim.set_receiver(on_packet);
  auto probe = [&](std::size_t leaf) {
    sim::Packet p;
    p.dst = tree.server_addrs[0];
    p.size_bytes = 100;
    static_cast<net::Host&>(network.node(tree.leaf_hosts[leaf]))
        .send(std::move(p));
    simulator.run_until(simulator.now() + sim::SimTime::seconds(1));
    return last;
  };

  // Learning phase: honeypot windows label attack packets exactly.
  marking::PiVictim filter;
  for (const std::size_t a : attacker_slots) filter.learn_attack(probe(a));

  // Evaluation.
  Accuracy acc;
  acc.marks = filter.marks_learned();
  int fp = 0;
  for (const std::size_t c : client_slots) {
    if (filter.drop(probe(c))) ++fp;
  }
  acc.false_positive_rate = static_cast<double>(fp) / n_clients;
  int fn = 0;
  for (const std::size_t a : attacker_slots) {
    if (!filter.drop(probe(a))) ++fn;
  }
  acc.false_negative_rate = static_cast<double>(fn) / n_attackers;
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const auto leaves = static_cast<std::size_t>(flags.get_int("leaves", 400));
  const int clients = static_cast<int>(flags.get_int("clients", 100));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  bench::BenchReport report("baseline_stackpi", flags);
  flags.finish();

  util::print_banner("Baseline — StackPi mark filtering accuracy vs number "
                     "of dispersed attackers (16-bit stack, 2 bits/hop)");

  util::Table table({"Attackers", "Marks blacklisted", "False positives",
                     "False negatives", "HBP equivalent"});
  for (const int n : {5, 15, 30, 60, 120}) {
    const Accuracy acc = run(n, clients, leaves, seed);
    report.add_counter(
        "false_positive_rate.n=" + util::Table::num(static_cast<long long>(n)),
        acc.false_positive_rate);
    table.add_row(
        {util::Table::num(static_cast<long long>(n)),
         util::Table::num(static_cast<long long>(acc.marks)),
         util::Table::percent(acc.false_positive_rate),
         util::Table::percent(acc.false_negative_rate),
         "0% FP (switch-port capture)"});
  }
  table.print();

  std::printf("\nStackPi filters on a 16-bit path fingerprint: clients that "
              "share a router\npath suffix with any attacker are collateral, "
              "and the blacklisted fraction\nof mark space grows with "
              "attacker count — Section 2's accuracy criticism.\nHoneypot "
              "back-propagation blocks physical switch ports instead: "
              "collisions\nare impossible and false positives stay at zero "
              "(see tests/scenario).\n");
  report.write();
  return 0;
}
