// Baseline comparison: SOS-style overlay routing latency vs direct paths —
// Section 2's mitigation critique: "the latency caused by the hash-based
// routing in SOS can be up to 10 times the direct communication latency.
// Our work aims at providing a more efficient solution by avoiding
// hash-based routing and by taking actions only when attacks occur."
//
// Model: an SOS overlay of O nodes placed on random routers of the Fig. 7
// tree.  A client's request enters at its nearest SOAP, takes ~log2(O)
// Chord hops (each one a real underlay journey between overlay nodes),
// reaches the beacon, is forwarded to the secret servlet, and finally to
// the target.  Stretch = overlay route latency / direct latency.  HBP adds
// zero data-path latency: traffic flows directly, always.
#include <cstdio>

#include <algorithm>
#include <cmath>

#include "bench/bench_util.hpp"

#include "net/network.hpp"
#include "topo/tree.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

// Propagation delay along the unique path from node `from` to address `to`.
double path_delay_seconds(hbp::net::Network& network, hbp::sim::NodeId from,
                          hbp::sim::Address to) {
  double total = 0.0;
  hbp::sim::NodeId node = from;
  const hbp::sim::NodeId target = network.node_of(to);
  int guard = 0;
  while (node != target) {
    const int port = network.route_port(node, to);
    if (port < 0) return -1.0;
    total += network.link(node, port).delay().to_seconds();
    node = network.node(node).neighbor(static_cast<std::size_t>(port));
    if (++guard > 128) return -1.0;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const auto leaves = static_cast<std::size_t>(flags.get_int("leaves", 400));
  const int samples = static_cast<int>(flags.get_int("samples", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  bench::BenchReport report("baseline_sos_latency", flags);
  flags.finish();

  sim::Simulator simulator;
  net::Network network(simulator);
  topo::TreeParams tp;
  tp.leaf_count = leaves;
  util::Rng rng(seed);
  const topo::Tree tree = topo::build_tree(network, rng, tp);
  // Overlay nodes need addresses to route between: give every router one.
  std::vector<sim::Address> router_addrs;
  std::vector<sim::NodeId> routers = tree.interior_routers;
  routers.insert(routers.end(), tree.access_routers.begin(),
                 tree.access_routers.end());
  for (const sim::NodeId r : routers) {
    router_addrs.push_back(network.assign_address(r));
  }
  network.compute_routes();

  util::print_banner("Baseline — SOS overlay latency stretch vs direct "
                     "communication (Section 2)");

  util::Table table({"Overlay size", "Chord hops", "Mean stretch",
                     "Median-ish (p50 of samples)", "Max stretch",
                     "HBP data path"});
  for (const std::size_t overlay_size : {16u, 64u, 256u}) {
    util::Rng overlay_rng(seed + overlay_size);
    const auto overlay_idx = overlay_rng.choose(routers.size(), overlay_size);
    const int chord_hops =
        static_cast<int>(std::ceil(std::log2(static_cast<double>(overlay_size))));

    util::RunningStats stretch;
    std::vector<double> values;
    for (int s = 0; s < samples; ++s) {
      const std::size_t client =
          overlay_rng.below(tree.leaf_hosts.size());
      const sim::Address target = tree.server_addrs[overlay_rng.below(5)];
      const double direct =
          path_delay_seconds(network, tree.leaf_hosts[client], target);
      if (direct <= 0) continue;

      // Client -> nearest SOAP (cheapest overlay entry).
      double best_entry = 1e9;
      std::size_t entry = 0;
      for (std::size_t probe = 0; probe < 8; ++probe) {
        const std::size_t cand = overlay_idx[overlay_rng.below(overlay_size)];
        const double d = path_delay_seconds(network, tree.leaf_hosts[client],
                                            router_addrs[cand]);
        if (d >= 0 && d < best_entry) {
          best_entry = d;
          entry = cand;
        }
      }

      // Chord hops between random overlay nodes (id-space jumps land on
      // underlay-random nodes), then beacon -> secret servlet -> target.
      double overlay_delay = best_entry;
      sim::NodeId at = routers[entry];
      for (int hop = 0; hop < chord_hops + 1; ++hop) {  // +1: servlet hop
        const std::size_t next = overlay_idx[overlay_rng.below(overlay_size)];
        const double d = path_delay_seconds(network, at, router_addrs[next]);
        if (d >= 0) overlay_delay += d;
        at = routers[next];
      }
      overlay_delay += path_delay_seconds(network, at, target);

      const double ratio = overlay_delay / direct;
      stretch.add(ratio);
      values.push_back(ratio);
    }
    std::sort(values.begin(), values.end());
    report.add_counter("mean_stretch.overlay=" +
                           util::Table::num(static_cast<long long>(overlay_size)),
                       stretch.mean());
    table.add_row(
        {util::Table::num(static_cast<long long>(overlay_size)),
         util::Table::num(static_cast<long long>(chord_hops)),
         util::Table::num(stretch.mean(), 1) + "x",
         util::Table::num(values[values.size() / 2], 1) + "x",
         util::Table::num(stretch.max(), 1) + "x", "1.0x (direct)"});
  }
  table.print();

  std::printf("\nSection 2's \"up to 10 times the direct communication "
              "latency\" reproduced:\nhash-based overlay routing pays "
              "log2(O)+2 underlay journeys on every packet,\nall the time; "
              "honeypot back-propagation leaves the data path untouched and\n"
              "acts only when attacks occur.\n");
  report.write();
  return 0;
}
