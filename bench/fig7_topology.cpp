// Reproduces Fig. 7: hop-count and node-degree distributions of the
// simulated tree topology.  Prints the target distributions alongside the
// histograms measured on an actually-built tree.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/tree.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const auto leaves = static_cast<std::size_t>(flags.get_int("leaves", 1000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  bench::BenchReport report("fig7_topology", flags);
  flags.finish();

  sim::Simulator simulator;
  net::Network network(simulator);
  topo::TreeParams params;
  params.leaf_count = leaves;
  util::Rng rng(seed);
  const topo::Tree tree = topo::build_tree(network, rng, params);

  // --- hop counts ---
  util::IntCounter hops;
  for (const int h : tree.leaf_hopcount) hops.add(h);

  const auto hop_dist = topo::fig7_hop_count_distribution();
  util::print_banner("Fig. 7 (left) — hop count distribution");
  util::Table hop_table({"Hop Count", "Target freq", "Built freq", "Bar"});
  for (std::size_t i = 0; i < hop_dist.values().size(); ++i) {
    const auto v = hop_dist.values()[i];
    const double measured = hops.frequency(v);
    std::string bar(static_cast<std::size_t>(measured * 200), '#');
    hop_table.add_row({util::Table::num(static_cast<long long>(v)),
                       util::Table::num(hop_dist.probability(i), 3),
                       util::Table::num(measured, 3), bar});
  }
  hop_table.print();
  std::printf("mean hop count: target %.2f, built %.2f\n", hop_dist.mean(),
              hops.mean());

  // --- node degrees of interior routers ---
  util::IntCounter degrees;
  for (const sim::NodeId r : tree.interior_routers) {
    degrees.add(static_cast<std::int64_t>(network.node(r).port_count()));
  }
  util::print_banner("Fig. 7 (right) — interior router degree distribution");
  util::Table deg_table({"Node Degree", "Built freq", "Bar"});
  for (const auto& [degree, count] : degrees.counts()) {
    const double f =
        static_cast<double>(count) / static_cast<double>(degrees.total());
    std::string bar(static_cast<std::size_t>(f * 200), '#');
    deg_table.add_row({util::Table::num(static_cast<long long>(degree)),
                       util::Table::num(f, 3), bar});
  }
  deg_table.print();
  std::printf("mean interior degree: %.2f over %llu routers\n",
              degrees.mean(),
              static_cast<unsigned long long>(degrees.total()));

  // --- summary of the built network ---
  util::print_banner("built topology summary");
  std::printf("leaf hosts: %zu   access routers: %zu   interior routers: %zu\n"
              "switches: %zu   autonomous systems: %zu   total nodes: %zu\n",
              tree.leaf_hosts.size(), tree.access_routers.size(),
              tree.interior_routers.size(), tree.switches.size(),
              tree.as_map.count(), network.node_count());
  int transit = 0, stub = 0;
  for (std::size_t a = 0; a < tree.as_map.count(); ++a) {
    (tree.as_map.info(static_cast<net::AsId>(a)).transit ? transit : stub) += 1;
  }
  std::printf("transit ASs: %d   stub ASs: %d\n", transit, stub);

  report.add_counter("mean_hop_count", hops.mean());
  report.add_counter("mean_interior_degree", degrees.mean());
  report.add_counter("total_nodes", static_cast<double>(network.node_count()));
  report.add_counter("transit_as", transit);
  report.add_counter("stub_as", stub);
  report.write();
  return 0;
}
