// Reproduces Fig. 6: validation of Eq. (3) — simulated average capture time
// of basic honeypot back-propagation on a string topology against the
// analytical upper bound m(1/p - 1), in three sweeps:
//   (a) honeypot probability p   (m = 10 s, h = 10)
//   (b) epoch length m           (p = 0.3, h = 10)
//   (c) attacker hop distance h  (m = 10 s, p = 0.3)
// Each point averages --runs simulation runs (paper: 10).
#include <cstdio>

#include "analysis/capture_time.hpp"
#include "bench/bench_util.hpp"
#include "scenario/string_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

void sweep(const char* title, const char* column,
           const std::vector<double>& xs,
           const std::function<hbp::scenario::StringExperimentConfig(double)>&
               config_for,
           int runs, hbp::util::ThreadPool& pool,
           hbp::bench::BenchReport& report) {
  hbp::util::print_banner(title);
  hbp::util::Table table({column, "Simulation (s)", "95% CI", "Eq. (3) (s)",
                          "Eq. (3) + traversal (s)", "captured"});
  for (const double x : xs) {
    const auto config = config_for(x);
    const auto summary =
        hbp::scenario::run_string_replicated(config, runs, 42, &pool);
    report.add_summary(summary);
    report.add_counter(std::string("capture_s.") + column + "=" +
                           hbp::util::Table::num(x, 2),
                       summary.capture_time.mean());
    hbp::analysis::Params params;
    params.m = config.m;
    params.p = config.p;
    params.h = config.h;
    params.r = config.attacker_rate_bps / (config.packet_size * 8.0);
    params.tau = config.tau;
    const double eq3 = hbp::analysis::basic_continuous(params).seconds;
    // Eq. (3) counts the waiting time for the first honeypot epoch; the
    // full capture time adds the in-window traversal of the h hops.
    const double traversal = params.h * hbp::analysis::hop_time(params);
    table.add_row(
        {hbp::util::Table::num(x, 2),
         hbp::util::Table::num(summary.capture_time.mean(), 1),
         "+/- " + hbp::util::Table::num(summary.capture_time.ci95_halfwidth(), 1),
         hbp::util::Table::num(eq3, 1),
         hbp::util::Table::num(eq3 + traversal, 1),
         hbp::util::Table::num(static_cast<long long>(summary.captured)) + "/" +
             hbp::util::Table::num(static_cast<long long>(summary.runs))});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 10));
  const double tau = flags.get_double("tau", 0.3);
  const double rate = flags.get_double("rate_mbps", 0.1) * 1e6;
  bench::BenchReport report("fig6_validation", flags);
  flags.finish();

  util::ThreadPool pool;

  auto base = [&](double m, double p, int h) {
    scenario::StringExperimentConfig config;
    config.m = m;
    config.p = p;
    config.h = h;
    config.tau = tau;
    config.attacker_rate_bps = rate;
    config.progressive = false;  // basic scheme, as in the paper's Fig. 6
    return config;
  };

  sweep("Fig. 6 (a) — effect of honeypot probability p (m=10 s, h=10)",
        "p", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
        [&](double p) { return base(10.0, p, 10); }, runs, pool, report);

  sweep("Fig. 6 (b) — effect of epoch length m (p=0.3, h=10)",
        "m (s)", {6, 8, 10, 12, 14, 16, 20},
        [&](double m) { return base(m, 0.3, 10); }, runs, pool, report);

  sweep("Fig. 6 (c) — effect of attacker hop distance h (m=10 s, p=0.3)",
        "h", {2, 5, 10, 15, 20},
        [&](double h) { return base(10.0, 0.3, static_cast<int>(h)); }, runs,
        pool, report);

  std::printf("\nPaper shape: the simulated capture time tracks Eq. (3) plus "
              "the in-window\ntraversal h(1/r+tau); it falls with p, grows "
              "with m, and is roughly flat in h\nwhile m >= h(1/r+tau) (the "
              "basic scheme's validity condition).\n");
  report.write();
  return 0;
}
