// Reproduces Fig. 11: "Effect of number of attackers" — mean client
// throughput during the attack vs the number of evenly-distributed
// attackers at 0.5 Mb/s each, for the three schemes.
//
// Expected shape: HBP stays flat and high; Pushback and no defense degrade
// as attackers multiply, with Pushback's advantage shrinking because more
// attackers sit close to the victim, where max-min protects them.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  auto config = bench::default_tree_config();
  const auto common = bench::apply_common_flags(flags, config);
  config.attacker_rate_bps = flags.get_double("rate_mbps", 0.5) * 1e6;
  const auto counts =
      flags.get_double_list("counts", {10, 25, 50, 75, 100});
  bench::BenchReport report("fig11_num_attackers", flags);
  flags.finish();

  util::print_banner(
      "Fig. 11 — client throughput vs number of attackers "
      "(0.5 Mb/s per attacker, evenly distributed)");

  util::ThreadPool pool;
  util::Table table({"Attackers", "Honeypot Back-propagation", "Pushback",
                     "No Defense", "HBP captured"});
  for (const double n : counts) {
    config.n_attackers = static_cast<int>(n);
    std::vector<std::string> row{util::Table::num(static_cast<long long>(n))};
    double captured = 0;
    for (const auto scheme :
         {scenario::Scheme::kHbp, scenario::Scheme::kPushback,
          scenario::Scheme::kNoDefense}) {
      config.scheme = scheme;
      const auto summary =
          scenario::run_replicated(config, common.seeds, common.base_seed,
                                   &pool);
      report.add_summary(summary);
      report.add_counter("throughput.n=" +
                             util::Table::num(static_cast<long long>(n)) + "." +
                             scenario::to_string(scheme),
                         summary.throughput.mean());
      row.push_back(util::Table::percent(summary.throughput.mean()) +
                    " +/- " +
                    util::Table::percent(summary.throughput.ci95_halfwidth()));
      if (scheme == scenario::Scheme::kHbp) {
        captured = summary.capture_fraction.mean();
      }
    }
    row.push_back(util::Table::percent(captured));
    table.add_row(std::move(row));
  }
  table.print();

  std::printf("\nPaper shape: HBP roughly flat; Pushback and No Defense fall "
              "as the attacker\ncount grows.\n");
  report.write();
  return 0;
}
