// Shared helpers for the figure-regeneration benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "scenario/string_experiment.hpp"
#include "scenario/tree_experiment.hpp"
#include "telemetry/report.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace hbp::bench {

// Machine-readable perf record shared by every bench binary: constructing
// one registers the `--json <path>` flag, and write() emits an
// "hbp-bench/1" BENCH_<name>.json record there (no-op when the flag was
// not passed).  Deterministic headline counters and merged run metrics come
// first; wall time / RSS / rates live in the trailing "perf" object (see
// telemetry/report.hpp for the layout contract).
class BenchReport {
 public:
  BenchReport(std::string name, util::Flags& flags)
      : name_(std::move(name)),
        path_(flags.get_string("json", "")),
        wall_start_(std::chrono::steady_clock::now()) {}

  bool enabled() const { return !path_.empty(); }

  // Deterministic headline number (capture fraction, mean throughput, ...).
  void add_counter(std::string key, double value) {
    counters_.push_back({std::move(key), value});
  }

  // Accumulates one experiment run: event totals, simulated time, and the
  // run's instrument tree.
  void add_run(const scenario::TreeResult& r) {
    add_events(r.events_executed, r.perf.sim_seconds);
    if (r.telemetry) metrics_.merge(*r.telemetry);
  }
  void add_run(const scenario::StringResult& r) {
    add_events(r.events_executed, r.perf.sim_seconds);
    if (r.telemetry) metrics_.merge(*r.telemetry);
  }
  void add_events(std::uint64_t events, double sim_seconds) {
    events_ += events;
    sim_seconds_ += sim_seconds;
  }
  // Accumulates a replicated sweep's totals and merged metrics.
  void add_summary(const scenario::TreeSummary& s) {
    add_events(s.events_executed, s.sim_seconds);
    if (s.metrics) metrics_.merge(*s.metrics);
  }
  void add_summary(const scenario::StringSummary& s) {
    add_events(s.events_executed, s.sim_seconds);
    if (s.metrics) metrics_.merge(*s.metrics);
  }

  void write() const {
    if (path_.empty()) return;
    telemetry::PerfStats perf;
    perf.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start_)
                            .count();
    perf.events_executed = events_;
    perf.peak_rss_bytes = telemetry::peak_rss_bytes();
    perf.sim_seconds = sim_seconds_;
    telemetry::write_bench_record(path_, name_, counters_,
                                  metrics_.size() > 0 ? &metrics_ : nullptr,
                                  perf);
    std::printf("\nWrote %s\n", path_.c_str());
  }

 private:
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point wall_start_;
  std::vector<telemetry::BenchCounter> counters_;
  telemetry::Registry metrics_;
  std::uint64_t events_ = 0;
  double sim_seconds_ = 0.0;
};

// The Fig. 9 simulation defaults (see DESIGN.md for the OCR parameter
// reconstruction).  Bench binaries start from these and apply flags.
inline scenario::TreeExperimentConfig default_tree_config() {
  scenario::TreeExperimentConfig config;
  config.tree.leaf_count = 300;
  config.n_clients = 75;
  config.n_attackers = 25;
  config.attacker_rate_bps = 1.0e6;
  return config;
}

// Applies the shared sweep flags: --leaves, --seeds, --seed.
struct CommonFlags {
  int seeds = 3;
  std::uint64_t base_seed = 1;
};

inline CommonFlags apply_common_flags(util::Flags& flags,
                                      scenario::TreeExperimentConfig& config) {
  config.tree.leaf_count =
      static_cast<std::size_t>(flags.get_int("leaves",
                                             static_cast<std::int64_t>(
                                                 config.tree.leaf_count)));
  CommonFlags out;
  out.seeds = static_cast<int>(flags.get_int("seeds", out.seeds));
  out.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  return out;
}

}  // namespace hbp::bench
