// Shared helpers for the figure-regeneration benches.
#pragma once

#include <cstdio>

#include "scenario/tree_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace hbp::bench {

// The Fig. 9 simulation defaults (see DESIGN.md for the OCR parameter
// reconstruction).  Bench binaries start from these and apply flags.
inline scenario::TreeExperimentConfig default_tree_config() {
  scenario::TreeExperimentConfig config;
  config.tree.leaf_count = 300;
  config.n_clients = 75;
  config.n_attackers = 25;
  config.attacker_rate_bps = 1.0e6;
  return config;
}

// Applies the shared sweep flags: --leaves, --seeds, --seed.
struct CommonFlags {
  int seeds = 3;
  std::uint64_t base_seed = 1;
};

inline CommonFlags apply_common_flags(util::Flags& flags,
                                      scenario::TreeExperimentConfig& config) {
  config.tree.leaf_count =
      static_cast<std::size_t>(flags.get_int("leaves",
                                             static_cast<std::int64_t>(
                                                 config.tree.leaf_count)));
  CommonFlags out;
  out.seeds = static_cast<int>(flags.get_int("seeds", out.seeds));
  out.base_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  return out;
}

}  // namespace hbp::bench
