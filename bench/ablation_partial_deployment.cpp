// Ablation A2: incremental deployment (Section 5.3).  Sweeps the fraction
// of ASs running an HSM; non-deploying gaps are bridged by piggybacking
// honeypot requests on routing announcements.  Reports captured fraction,
// throughput, and bridge-message overhead.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  auto config = bench::default_tree_config();
  const auto common = bench::apply_common_flags(flags, config);
  const auto fractions =
      flags.get_double_list("fractions", {1.0, 0.8, 0.6, 0.4, 0.2});
  bench::BenchReport report("ablation_partial_deployment", flags);
  flags.finish();

  config.scheme = scenario::Scheme::kHbp;
  config.n_attackers = 25;

  util::print_banner("Ablation — partial deployment of honeypot "
                     "back-propagation (fraction of ASs with an HSM)");

  util::ThreadPool pool;
  util::Table table({"Deployed ASs", "Captured attackers", "Client throughput",
                     "False captures"});
  for (const double f : fractions) {
    config.hbp_deploy_fraction = f;
    const auto summary =
        scenario::run_replicated(config, common.seeds, common.base_seed, &pool);
    report.add_summary(summary);
    report.add_counter("capture_fraction.f=" + util::Table::num(f, 1),
                       summary.capture_fraction.mean());
    table.add_row({util::Table::percent(f, 0),
                   util::Table::percent(summary.capture_fraction.mean()),
                   util::Table::percent(summary.throughput.mean()),
                   util::Table::num(summary.false_captures.mean(), 1)});
  }
  table.print();

  std::printf("\nSection 5.3's claim: partial deployment retains partial "
              "benefit — captures\n(and throughput) degrade gracefully with "
              "the deployment fraction, and\nfalse captures stay at zero "
              "because accuracy never depends on coverage.\n");
  report.write();
  return 0;
}
