// Section 8.4's third axis: the effect of the per-attacker rate.  The
// surviving text announces the study ("... and the attack rate per attack
// host"); the figure itself was lost in the source scan, so this bench
// reconstructs the series: 25 evenly-distributed attackers sweeping their
// per-host rate.
//
// Expected shape: no defense degrades with total attack volume; HBP is
// roughly flat (higher rates even speed up signature collection); low-rate
// attackers take HBP longer to trace (fewer packets per honeypot window).
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  auto config = bench::default_tree_config();
  const auto common = bench::apply_common_flags(flags, config);
  config.n_attackers = static_cast<int>(flags.get_int("attackers", 25));
  const auto rates =
      flags.get_double_list("rates_mbps", {0.1, 0.25, 0.5, 1.0, 2.0});
  bench::BenchReport report("fig12_attack_rate", flags);
  flags.finish();

  util::print_banner("Fig. 12 (reconstructed) — client throughput vs attack "
                     "rate per host (25 attackers)");

  util::ThreadPool pool;
  util::Table table({"Rate (Mb/s)", "Honeypot Back-propagation", "Pushback",
                     "No Defense", "HBP capture delay"});
  for (const double rate : rates) {
    config.attacker_rate_bps = rate * 1e6;
    std::vector<std::string> row{util::Table::num(rate, 2)};
    double delay = -1;
    for (const auto scheme :
         {scenario::Scheme::kHbp, scenario::Scheme::kPushback,
          scenario::Scheme::kNoDefense}) {
      config.scheme = scheme;
      const auto summary =
          scenario::run_replicated(config, common.seeds, common.base_seed,
                                   &pool);
      report.add_summary(summary);
      report.add_counter("throughput.rate=" + util::Table::num(rate, 2) + "." +
                             scenario::to_string(scheme),
                         summary.throughput.mean());
      row.push_back(util::Table::percent(summary.throughput.mean()) +
                    " +/- " +
                    util::Table::percent(summary.throughput.ci95_halfwidth()));
      if (scheme == scenario::Scheme::kHbp) {
        delay = summary.capture_delay.count() > 0
                    ? summary.capture_delay.mean()
                    : -1;
      }
    }
    row.push_back(delay >= 0 ? util::Table::num(delay, 1) + " s" : "-");
    table.add_row(std::move(row));
  }
  table.print();
  report.write();
  return 0;
}
