// Baseline comparison: SPIE single-packet traceback vs honeypot
// back-propagation — quantifying Section 2's objection: "it requires high
// storage overhead at routers or high bandwidth overhead."
//
// Setup: SPIE agents on every router of the Fig. 7 tree while the normal
// legitimate load (~90% of the bottleneck) flows for a retention period;
// then a single spoofed attack packet is traced.  The digest tables must
// be provisioned for the *total* traffic a core router forwards; undersize
// them and Bloom saturation implicates innocent branches.
#include <cstdio>

#include <algorithm>
#include <memory>

#include "bench/bench_util.hpp"

#include "marking/spie.hpp"
#include "net/host.hpp"
#include "topo/tree.hpp"
#include "traffic/cbr.hpp"
#include "traffic/spoof.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const auto leaves = static_cast<std::size_t>(flags.get_int("leaves", 200));
  const int clients = static_cast<int>(flags.get_int("clients", 50));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 6));
  bench::BenchReport report("baseline_spie", flags);
  flags.finish();

  util::print_banner("Baseline — SPIE single-packet traceback: storage vs "
                     "accuracy (Fig. 7 tree, 60 s retention at ~90% "
                     "bottleneck load)");

  util::Table table({"Bloom bits/window", "Core-router storage",
                     "Bits per recorded packet", "Implicated routers",
                     "False (off-path) routers"});

  for (const std::size_t bits : {1u << 12, 1u << 16, 1u << 20}) {
    sim::Simulator simulator;
    net::Network network(simulator);
    topo::TreeParams tp;
    tp.leaf_count = leaves;
    util::Rng rng(seed);
    const topo::Tree tree = topo::build_tree(network, rng, tp);
    network.compute_routes();

    marking::SpieParams params;
    params.bits_per_window = bits;
    std::vector<std::unique_ptr<marking::SpieAgent>> agents;
    std::map<sim::NodeId, marking::SpieAgent*> agent_map;
    auto install = [&](sim::NodeId r) {
      agents.push_back(std::make_unique<marking::SpieAgent>(
          static_cast<net::Router&>(network.node(r)), params));
      agent_map[r] = agents.back().get();
    };
    install(tree.gateway);
    for (const sim::NodeId r : tree.interior_routers) install(r);
    for (const sim::NodeId r : tree.access_routers) install(r);
    marking::SpieTracer tracer(network, agent_map);

    // Legitimate background load.
    std::vector<std::unique_ptr<util::Rng>> rngs;
    std::vector<std::unique_ptr<traffic::CbrSource>> sources;
    for (int c = 0; c < clients; ++c) {
      rngs.push_back(std::make_unique<util::Rng>(
          util::derive_seed(seed, 100 + static_cast<std::uint64_t>(c))));
      traffic::CbrParams cbr;
      cbr.rate_bps = 0.9 * tp.bottleneck_bps / clients;
      const sim::Address target =
          tree.server_addrs[rngs.back()->below(5)];
      // Spread clients across the whole tree so every branch carries load.
      const std::size_t leaf =
          static_cast<std::size_t>(c) * (leaves / static_cast<std::size_t>(clients));
      sources.push_back(std::make_unique<traffic::CbrSource>(
          simulator,
          static_cast<net::Host&>(network.node(tree.leaf_hosts[leaf])),
          *rngs.back(), cbr, [target] { return target; }));
      sources.back()->start();
    }
    simulator.run_until(sim::SimTime::seconds(60));

    // One spoofed attack packet from the farthest leaf.
    const std::size_t attacker = tree.leaves_by_distance.back();
    sim::Packet victim_copy;
    sim::SimTime arrival;
    auto on_packet = [&](const sim::Packet& p) {
      // Evaluator-level ground truth: pick out the probe among the
      // still-flowing client traffic.
      if (!p.is_attack) return;
      victim_copy = p;
      arrival = simulator.now();
    };
    static_cast<net::Host&>(network.node(tree.servers[0]))
        .set_receiver(on_packet);
    sim::Packet attack;
    attack.dst = tree.server_addrs[0];
    attack.src = 0xbad;
    attack.size_bytes = 900;
    attack.is_attack = true;
    static_cast<net::Host&>(network.node(tree.leaf_hosts[attacker]))
        .send(std::move(attack));
    simulator.run_until(simulator.now() + sim::SimTime::seconds(2));

    const auto implicated = tracer.trace(
        tree.gateway, marking::SpieAgent::digest(victim_copy), arrival);

    // The true path: routers from the gateway to the attacker's access.
    std::set<sim::NodeId> true_path;
    sim::NodeId node = tree.gateway;
    const sim::Address back_addr = tree.leaf_addrs[attacker];
    while (network.node(node).kind() == net::NodeKind::kRouter) {
      true_path.insert(node);
      const int port = network.route_port(node, back_addr);
      node = network.node(node).neighbor(static_cast<std::size_t>(port));
    }
    int false_routers = 0;
    for (const sim::NodeId r : implicated) {
      if (!true_path.contains(r)) ++false_routers;
    }

    report.add_events(simulator.events_executed(),
                      simulator.now().to_seconds());
    const auto storage = agent_map[tree.gateway]->storage_bytes();
    const double bits_per_packet =
        static_cast<double>(bits) * params.windows_retained * 8.0 /
        std::max<std::uint64_t>(1,
                                agent_map[tree.gateway]->packets_recorded());
    report.add_counter(
        "false_routers.bits=" + util::Table::num(static_cast<long long>(bits)),
        false_routers);
    table.add_row(
        {util::Table::num(static_cast<long long>(bits)),
         util::Table::num(static_cast<double>(storage) / 1024.0, 1) + " KiB",
         util::Table::num(bits_per_packet, 2),
         util::Table::num(static_cast<long long>(implicated.size())),
         util::Table::num(static_cast<long long>(false_routers))});
  }
  table.print();

  std::printf("\nSPIE needs digest tables sized to the full forwarding "
              "volume of every core\nrouter (Snoeren et al. recommend ~14 "
              "bits/packet of SRAM) — undersized\ntables saturate and "
              "implicate innocent branches.  Honeypot back-propagation\n"
              "keeps per-session state only (a honeypot session is ~100 "
              "bytes per victim\naddress), because the roaming honeypot "
              "makes the *traffic itself* the\nsignature instead of a "
              "per-packet history.\n");
  report.write();
  return 0;
}
