// Reproduces Fig. 8: time plot of one simulation run — legitimate client
// throughput (% of the bottleneck) vs time for honeypot back-propagation,
// Pushback, and no defense.  Attack from t = 5 s to t = 95 s; 25 evenly
// distributed attackers at 1.0 Mb/s each.
//
// Expected shape: all three dip when the attack starts; only HBP recovers
// (staircase-like, as each honeypot epoch captures another wave of
// attackers), Pushback recovers partially, no defense stays down.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "telemetry/report.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  auto config = bench::default_tree_config();
  const auto common = bench::apply_common_flags(flags, config);
  config.n_attackers = static_cast<int>(flags.get_int("attackers", 25));
  config.attacker_rate_bps = flags.get_double("rate_mbps", 1.0) * 1e6;
  bench::BenchReport report("fig8_timeplot", flags);
  // Full hbp-run-report/1 + CSV time-series dump of the HBP run.
  const std::string report_path = flags.get_string("report", "");
  const std::string csv_path = flags.get_string("csv", "");
  flags.finish();

  util::print_banner("Fig. 8 — client throughput over time (one run, attack "
                     "from t=5 s to t=95 s)");

  std::vector<std::vector<scenario::ThroughputMeter::Point>> lines;
  std::vector<std::string> names;
  std::vector<scenario::TreeResult> results;
  for (const auto scheme :
       {scenario::Scheme::kHbp, scenario::Scheme::kPushback,
        scenario::Scheme::kNoDefense}) {
    config.scheme = scheme;
    auto result = scenario::run_tree_experiment(config, common.base_seed);
    report.add_run(result);
    report.add_counter("throughput." + scenario::to_string(scheme),
                       result.mean_client_throughput);
    names.push_back(scenario::to_string(scheme));
    lines.push_back(result.timeline);
    results.push_back(std::move(result));
  }

  util::Table table({"t (s)", "HBP %", "Pushback %", "No Defense %"});
  for (std::size_t bin = 0; bin < lines[0].size(); ++bin) {
    if (bin % 2 != 0) continue;  // print every 2 s
    table.add_row({util::Table::num(lines[0][bin].t_seconds, 0),
                   util::Table::num(lines[0][bin].fraction * 100, 1),
                   util::Table::num(lines[1][bin].fraction * 100, 1),
                   util::Table::num(lines[2][bin].fraction * 100, 1)});
  }
  table.print();

  std::printf("\nHBP: %zu/%zu attackers captured (first %.1f s, last %.1f s "
              "after attack start).\n",
              results[0].captured, results[0].attackers,
              results[0].mean_capture_delay, results[0].max_capture_delay);
  std::printf("Mean during attack: HBP %.1f%%, Pushback %.1f%%, "
              "No Defense %.1f%%.\n",
              results[0].mean_client_throughput * 100,
              results[1].mean_client_throughput * 100,
              results[2].mean_client_throughput * 100);

  if (!report_path.empty() || !csv_path.empty()) {
    const scenario::TreeResult& hbp = results[0];
    telemetry::RunManifest manifest;
    manifest.name = "fig8_timeplot";
    manifest.seed = common.base_seed;
    manifest.trace_digest = hbp.trace_digest;
    manifest.events_executed = hbp.events_executed;
    manifest.sim_seconds = config.sim_seconds;
    manifest.set("scheme", scenario::to_string(scenario::Scheme::kHbp));
    manifest.set_int("leaves",
                     static_cast<std::int64_t>(config.tree.leaf_count));
    manifest.set_int("n_clients", config.n_clients);
    manifest.set_int("n_attackers", config.n_attackers);
    manifest.set_double("attacker_rate_bps", config.attacker_rate_bps);
    manifest.set_double("attack_start", config.attack_start);
    manifest.set_double("attack_end", config.attack_end);
    manifest.set_double("sim_seconds", config.sim_seconds);
    if (!report_path.empty()) {
      telemetry::write_run_report(report_path, manifest, hbp.telemetry.get(),
                                  &hbp.perf);
      std::printf("Wrote %s\n", report_path.c_str());
    }
    if (!csv_path.empty() && hbp.telemetry) {
      telemetry::write_timeseries_csv(csv_path, *hbp.telemetry);
      std::printf("Wrote %s\n", csv_path.c_str());
    }
  }
  report.write();
  return 0;
}
