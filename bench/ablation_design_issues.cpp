// Ablation A3: the Section 5.3 design issues.
//  (a) ingress identification by packet marking vs GRE-style tunneling;
//  (b) the activation threshold against benign background probes (false
//      positives: "honeypots receive a large amount of benign traffic");
//  (c) Level-k max-min weighting for Pushback (Section 2, Mitigation).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "scenario/string_experiment.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  auto config = bench::default_tree_config();
  const auto common = bench::apply_common_flags(flags, config);
  bench::BenchReport report("ablation_design_issues", flags);
  flags.finish();

  util::ThreadPool pool;

  // (a) marking vs tunneling: identical captures expected — the two
  // mechanisms carry the same bit of information.
  util::print_banner("(a) ingress identification: packet marking vs tunneling");
  {
    util::Table table({"Mode", "Captured", "Throughput", "Capture delay"});
    for (const auto mode : {core::HbpParams::IngressMode::kMarking,
                            core::HbpParams::IngressMode::kTunneling}) {
      config.scheme = scenario::Scheme::kHbp;
      config.hbp.ingress_mode = mode;
      const auto summary = scenario::run_replicated(config, common.seeds,
                                                    common.base_seed, &pool);
      report.add_summary(summary);
      report.add_counter(
          std::string("capture_fraction.") +
              (mode == core::HbpParams::IngressMode::kMarking ? "marking"
                                                              : "tunneling"),
          summary.capture_fraction.mean());
      table.add_row(
          {mode == core::HbpParams::IngressMode::kMarking ? "marking"
                                                          : "tunneling",
           util::Table::percent(summary.capture_fraction.mean()),
           util::Table::percent(summary.throughput.mean()),
           util::Table::num(summary.capture_delay.mean(), 1) + " s"});
    }
    table.print();
    config.hbp.ingress_mode = core::HbpParams::IngressMode::kMarking;
  }

  // (b) activation threshold vs benign probes: on the string topology, a
  // benign prober pokes the server pool while no attack runs; count
  // defense activations (all of them false).
  util::print_banner("(b) activation threshold vs benign background probes");
  {
    util::Table table({"Threshold (pkts/window)", "Activations over 40 epochs",
                       "Note"});
    for (const std::uint64_t threshold : {1ull, 3ull, 10ull, 30ull}) {
      // Probes at ~2/s hit a honeypot window (~9.2 s) ~18 times.
      scenario::StringExperimentConfig sc;
      sc.h = 4;
      sc.p = 0.4;
      sc.m = 10.0;
      sc.horizon_seconds = 400.0;
      // Reuse the string harness in probe mode by shaping a low-rate
      // "attack" of benign probes: is_attack=false equivalent is what the
      // false_activation counter keys on, so here we run the tree scenario
      // instead with zero attackers and a benign prober.
      (void)sc;
      auto probe_config = config;
      probe_config.scheme = scenario::Scheme::kHbp;
      probe_config.n_attackers = 0;
      probe_config.hbp.activation_threshold = threshold;
      probe_config.sim_seconds = 100.0;
      // Zero attackers: run_tree_experiment requires n_attackers >= 1 for
      // placement; use 1 attacker with a start beyond the horizon.
      probe_config.n_attackers = 1;
      probe_config.attack_start = 99.0;
      probe_config.attack_end = 99.5;
      probe_config.benign_probe_rate = 2.0;
      const auto r =
          scenario::run_tree_experiment(probe_config, common.base_seed);
      report.add_run(r);
      report.add_counter(
          "false_activations.threshold=" +
              util::Table::num(static_cast<long long>(threshold)),
          static_cast<double>(r.hbp_false_activations));
      table.add_row(
          {util::Table::num(static_cast<long long>(threshold)),
           util::Table::num(static_cast<long long>(r.hbp_false_activations)),
           threshold == 1 ? "every stray probe wakes the defense"
                          : "probes suppressed"});
    }
    table.print();
  }

  // (c) Level-k max-min weighting for Pushback, close attackers.
  util::print_banner("(c) Pushback vs host-weighted (Level-k) max-min, close "
                     "attackers");
  {
    util::Table table({"Allocator", "Client throughput"});
    config.scheme = scenario::Scheme::kPushback;
    config.placement = scenario::AttackerPlacement::kClose;
    for (const bool weighted : {false, true}) {
      config.pb_weighted_by_hosts = weighted;
      const auto summary = scenario::run_replicated(config, common.seeds,
                                                    common.base_seed, &pool);
      report.add_summary(summary);
      report.add_counter(std::string("throughput.") +
                             (weighted ? "weighted" : "plain"),
                         summary.throughput.mean());
      table.add_row({weighted ? "host-weighted (Level-k style)"
                              : "per-port max-min (plain Pushback)",
                     util::Table::percent(summary.throughput.mean())});
    }
    table.print();
  }

  // (d) Pushback propagation depth: deeper pushback pushes the limiting
  // closer to the sources, where attack and legitimate traffic no longer
  // share ports — less collateral damage.
  util::print_banner("(d) Pushback propagation depth (evenly distributed "
                     "attackers)");
  {
    util::Table table({"max_depth", "Client throughput"});
    config.scheme = scenario::Scheme::kPushback;
    config.placement = scenario::AttackerPlacement::kEven;
    config.pb_weighted_by_hosts = false;
    for (const int depth : {0, 1, 2, 4, 8, 12}) {
      config.pb.max_depth = depth;
      const auto summary = scenario::run_replicated(config, common.seeds,
                                                    common.base_seed, &pool);
      report.add_summary(summary);
      report.add_counter(
          "throughput.depth=" + util::Table::num(static_cast<long long>(depth)),
          summary.throughput.mean());
      table.add_row({util::Table::num(static_cast<long long>(depth)),
                     util::Table::percent(summary.throughput.mean())});
    }
    table.print();
  }

  report.write();
  return 0;
}
