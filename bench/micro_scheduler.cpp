// Micro-benchmarks (google-benchmark) of the pending-event set: push/pop
// throughput with and without packet payloads, cancellation churn, and a
// classic hold-model steady state — each measured under both scheduler
// backends (binary heap and calendar queue).  `--json <path>` additionally
// writes an hbp-bench/1 record with deterministic packet-event throughput
// counters for tools/bench_diff.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/report.hpp"
#include "util/rng.hpp"

namespace {

hbp::sim::SchedulerKind kind_of(std::int64_t arg) {
  return arg == 0 ? hbp::sim::SchedulerKind::kBinaryHeap
                  : hbp::sim::SchedulerKind::kCalendar;
}

// Fill-then-drain of n empty events.
void BM_PushPop(benchmark::State& state) {
  const auto kind = kind_of(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  hbp::util::Rng rng(1);
  for (auto _ : state) {
    hbp::sim::EventQueue q(kind);
    for (std::size_t i = 0; i < n; ++i) {
      q.push(hbp::sim::SimTime(static_cast<std::int64_t>(rng.below(1'000'000))),
             [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PushPop)
    ->ArgsProduct({{0, 1}, {1024, 16384}})
    ->ArgNames({"cal", "n"});

// The packet path's event shape: each event owns a moved-in sim::Packet.
// This is the allocation-sensitive case — the closure must stay inside the
// event's inline buffer and the queue slot must recycle.
void BM_PushPopPacket(benchmark::State& state) {
  const auto kind = kind_of(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  hbp::util::Rng rng(2);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    hbp::sim::EventQueue q(kind);
    for (std::size_t i = 0; i < n; ++i) {
      hbp::sim::Packet p;
      p.uid = i;
      p.size_bytes = 1000;
      q.push(hbp::sim::SimTime(static_cast<std::int64_t>(rng.below(1'000'000))),
             [&sink, p = std::move(p)] { sink += p.uid; },
             "bench.packet");
    }
    while (!q.empty()) q.pop().fn();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PushPopPacket)
    ->ArgsProduct({{0, 1}, {1024, 16384}})
    ->ArgNames({"cal", "n"});

// Retransmit-timer shape: every scheduled event is cancelled before firing
// (TCP RTO, honeypot window guards).  Exercises slot recycling plus stale-
// record compaction in the ordering structure.
void BM_PushCancel(benchmark::State& state) {
  const auto kind = kind_of(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  hbp::util::Rng rng(3);
  hbp::sim::EventQueue q(kind);
  std::vector<hbp::sim::EventId> ids;
  ids.reserve(n);
  for (auto _ : state) {
    ids.clear();
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(q.push(
          hbp::sim::SimTime(static_cast<std::int64_t>(rng.below(1'000'000))),
          [] {}));
    }
    for (const auto id : ids) benchmark::DoNotOptimize(q.cancel(id));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PushCancel)
    ->ArgsProduct({{0, 1}, {4096}})
    ->ArgNames({"cal", "n"});

// Classic hold model: constant population, each pop schedules one push a
// random increment ahead.  This is the scheduler's steady-state regime in a
// long simulation run.
void BM_Hold(benchmark::State& state) {
  const auto kind = kind_of(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  hbp::util::Rng rng(4);
  hbp::sim::EventQueue q(kind);
  for (std::size_t i = 0; i < n; ++i) {
    q.push(hbp::sim::SimTime(static_cast<std::int64_t>(rng.below(1'000'000))),
           [] {});
  }
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      const auto ev = q.pop();
      q.push(ev.at + hbp::sim::SimTime(
                         static_cast<std::int64_t>(1 + rng.below(2'000'000))),
             [] {});
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_Hold)
    ->ArgsProduct({{0, 1}, {1024, 16384}})
    ->ArgNames({"cal", "n"});

// Deterministic workload for the --json perf record: a fixed number of
// packet-carrying events pushed and drained through each backend, timed
// with steady_clock.  The counters (events) are pure functions of the
// workload; the rates are what tools/bench_diff tracks across commits.
void write_json_record(const std::string& path) {
  constexpr std::size_t kEvents = 400'000;
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<hbp::telemetry::BenchCounter> counters;
  double total_seconds = 0.0;

  for (const auto kind : {hbp::sim::SchedulerKind::kBinaryHeap,
                          hbp::sim::SchedulerKind::kCalendar}) {
    hbp::util::Rng rng(7);
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    hbp::sim::EventQueue q(kind);
    // Hold model at population 4096 with packet payloads.
    constexpr std::size_t kPopulation = 4096;
    for (std::size_t i = 0; i < kPopulation; ++i) {
      hbp::sim::Packet p;
      p.uid = i;
      q.push(hbp::sim::SimTime(static_cast<std::int64_t>(rng.below(1'000'000))),
             [&sink, p] { sink += p.uid; });
    }
    for (std::size_t i = 0; i < kEvents; ++i) {
      auto ev = q.pop();
      ev.fn();
      hbp::sim::Packet p;
      p.uid = i;
      q.push(ev.at + hbp::sim::SimTime(
                         static_cast<std::int64_t>(1 + rng.below(2'000'000))),
             [&sink, p] { sink += p.uid; });
    }
    while (!q.empty()) q.pop().fn();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    total_seconds += seconds;
    const char* name = kind == hbp::sim::SchedulerKind::kBinaryHeap
                           ? "heap"
                           : "calendar";
    counters.push_back({std::string("packet_events_") + name,
                        static_cast<double>(kEvents + kPopulation)});
    counters.push_back({std::string("packet_events_per_sec_") + name,
                        static_cast<double>(kEvents + kPopulation) / seconds});
    benchmark::DoNotOptimize(sink);
  }

  hbp::telemetry::PerfStats perf;
  perf.wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();
  perf.events_executed = 2 * kEvents;
  perf.peak_rss_bytes = hbp::telemetry::peak_rss_bytes();
  perf.sim_seconds = total_seconds;
  hbp::telemetry::write_bench_record(path, "micro_scheduler", counters,
                                     nullptr, perf);
  std::printf("\nWrote %s\n", path.c_str());
}

}  // namespace

// Hand-rolled main (same idiom as micro_substrate): peel `--json` off argv
// before google-benchmark rejects it as unknown.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) write_json_record(json_path);
  return 0;
}
