// Reproduces Fig. 9: the table of simulation parameters, with the values we
// reconstructed (DESIGN.md) and the values each bench actually uses.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  auto config = bench::default_tree_config();
  bench::apply_common_flags(flags, config);
  bench::BenchReport report("fig9_params", flags);
  flags.finish();

  util::print_banner("Fig. 9 — simulation parameters");
  util::Table table({"Parameter", "Value", "Source"});
  auto row = [&](const char* name, std::string value, const char* src) {
    table.add_row({name, std::move(value), src});
  };

  row("servers (N)", util::Table::num(static_cast<long long>(
                        config.tree.server_count)), "paper: 5");
  row("active servers (k)", util::Table::num(static_cast<long long>(
                               config.k_active)), "paper: 3");
  row("honeypot probability p", util::Table::num(0.4, 2), "(N-k)/N");
  row("epoch length m", util::Table::num(config.epoch_seconds, 0) + " s",
      "reconstructed: 10 s");
  row("bottleneck capacity",
      util::Table::num(config.tree.bottleneck_bps / 1e6, 0) + " Mb/s",
      "reconstructed: 10 Mb/s");
  row("leaf nodes", util::Table::num(static_cast<long long>(
                       config.tree.leaf_count)),
      "paper: 1000 (bench default reduced; --leaves)");
  row("clients", util::Table::num(static_cast<long long>(config.n_clients)),
      "paper Fig. 10: 75");
  row("total legitimate load",
      util::Table::percent(config.legit_load, 0) + " of bottleneck",
      "paper: ~90%");
  row("attackers", util::Table::num(static_cast<long long>(
                      config.n_attackers)), "paper: 25 (Fig. 8/10)");
  row("attack rate per host",
      util::Table::num(config.attacker_rate_bps / 1e6, 1) + " Mb/s",
      "paper: 1.0 (Fig. 10), 0.5 (Fig. 11)");
  row("packet size", util::Table::num(static_cast<long long>(
                        config.packet_size)) + " B", "CBR");
  row("run length", util::Table::num(config.sim_seconds, 0) + " s",
      "paper: 100 s");
  row("attack window",
      util::Table::num(config.attack_start, 0) + " - " +
          util::Table::num(config.attack_end, 0) + " s",
      "paper: 5 - 95 s");
  row("clock sync bound (delta)",
      util::Table::num(config.delta.to_seconds() * 1000, 0) + " ms",
      "Section 4");
  row("delay estimate (gamma)",
      util::Table::num(config.gamma.to_seconds() * 1000, 0) + " ms",
      "Section 4");
  row("attacker locations", "close / evenly distributed / far",
      "Section 8.4.1");
  row("spoofing", "uniform random source per packet", "Section 3");
  table.print();

  report.add_counter("servers", config.tree.server_count);
  report.add_counter("k_active", config.k_active);
  report.add_counter("leaves", static_cast<double>(config.tree.leaf_count));
  report.add_counter("clients", config.n_clients);
  report.add_counter("attackers", config.n_attackers);
  report.write();
  return 0;
}
