// Ablation A5: the Section 3 damage model on TCP — bulk downloads whose
// ACKs cross the attacked direction of the bottleneck, under the three
// defenses.  Repeatable multi-seed version of examples/tcp_download.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  auto config = bench::default_tree_config();
  const auto common = bench::apply_common_flags(flags, config);
  config.tcp_downloads = static_cast<int>(flags.get_int("downloads", 3));
  config.n_attackers = static_cast<int>(flags.get_int("attackers", 25));
  bench::BenchReport report("ablation_tcp_impact", flags);
  flags.finish();

  config.sim_seconds = 150.0;
  config.attack_start = 30.0;
  config.attack_end = 140.0;

  util::print_banner("Ablation — TCP download goodput across the bottleneck "
                     "(ACK-path damage, Section 3)");

  util::Table table({"Defense", "Before attack (Mb/s)", "During attack (Mb/s)",
                     "Retained"});
  for (const auto scheme :
       {scenario::Scheme::kNoDefense, scenario::Scheme::kPushback,
        scenario::Scheme::kHbp}) {
    config.scheme = scheme;
    util::RunningStats before, during;
    for (int s = 0; s < common.seeds; ++s) {
      const auto r = scenario::run_tree_experiment(
          config, common.base_seed + static_cast<std::uint64_t>(s));
      before.add(r.tcp_goodput_before);
      during.add(r.tcp_goodput_during);
      report.add_run(r);
    }
    report.add_counter("tcp_goodput_during." + scenario::to_string(scheme),
                       during.mean());
    table.add_row({scenario::to_string(scheme),
                   util::Table::num(before.mean() / 1e6, 2),
                   util::Table::num(during.mean() / 1e6, 2),
                   util::Table::percent(during.mean() /
                                        std::max(1.0, before.mean()))});
  }
  table.print();

  std::printf("\nThe data direction is never congested: the no-defense "
              "collapse is pure ACK\nloss — \"if TCP ACK packets from "
              "clients to servers get dropped due to the\nattack, the "
              "throughput of TCP flows is degraded\" (Section 3).\n");
  report.write();
  return 0;
}
