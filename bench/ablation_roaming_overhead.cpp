// Ablation A4: the cost of roaming itself (Section 5.3, "Overhead of the
// scheme") under NO attack.  The paper attributes a 4%-10% degradation to
// three factors: load concentrating on k < N servers, connections
// re-establishing and re-entering TCP slow-start at migration, and clients
// flocking to the new actives.  UDP/CBR clients barely notice roaming; the
// overhead is a TCP phenomenon, so this bench runs bulk TCP clients
// against the roaming pool and sweeps k and the epoch length.
#include <cstdio>

#include <memory>

#include "bench/bench_util.hpp"
#include "honeypot/tcp_client.hpp"
#include "net/network.hpp"
#include "net/router.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

struct Result {
  double goodput_bps = 0.0;
  double migrations = 0.0;
  double handshakes = 0.0;
  std::uint64_t events = 0;
  double sim_seconds = 0.0;
};

Result run(int k, double epoch_seconds, int n_clients, double horizon,
           std::uint64_t seed) {
  using namespace hbp;
  sim::Simulator simulator;
  net::Network network(simulator);

  auto& gateway = network.add_node<net::Router>("gateway");
  auto& root = network.add_node<net::Router>("root");
  net::LinkParams bottleneck;
  bottleneck.capacity_bps = 10e6;
  bottleneck.delay = sim::SimTime::millis(10);
  network.connect(gateway.id(), root.id(), bottleneck);

  net::LinkParams edge;
  edge.capacity_bps = 100e6;
  edge.delay = sim::SimTime::millis(5);

  std::vector<sim::NodeId> servers;
  std::vector<sim::Address> server_addrs;
  for (int s = 0; s < 5; ++s) {
    auto& server = network.add_node<net::Host>("server" + std::to_string(s));
    network.connect(gateway.id(), server.id(), edge);
    server.set_address(network.assign_address(server.id()));
    servers.push_back(server.id());
    server_addrs.push_back(server.address());
  }
  std::vector<net::Host*> client_hosts;
  for (int c = 0; c < n_clients; ++c) {
    auto& host = network.add_node<net::Host>("client" + std::to_string(c));
    network.connect(root.id(), host.id(), edge);
    host.set_address(network.assign_address(host.id()));
    client_hosts.push_back(&host);
  }
  network.compute_routes();

  auto chain = std::make_shared<honeypot::HashChain>(
      util::Sha256::hash("overhead"), 4096);
  honeypot::RoamingSchedule schedule(chain, 5, k,
                                     sim::SimTime::seconds(epoch_seconds));
  honeypot::CheckpointStore store;
  honeypot::ServerPoolParams pool_params;
  honeypot::ServerPool pool(simulator, network, schedule, servers,
                            server_addrs, store, pool_params);
  pool.enable_tcp();
  pool.start();

  std::vector<std::unique_ptr<util::Rng>> rngs;
  std::vector<std::unique_ptr<honeypot::RoamingTcpClient>> clients;
  for (int c = 0; c < n_clients; ++c) {
    rngs.push_back(std::make_unique<util::Rng>(
        util::derive_seed(seed, 10 + static_cast<std::uint64_t>(c))));
    clients.push_back(std::make_unique<honeypot::RoamingTcpClient>(
        simulator, *client_hosts[c], *rngs.back(), schedule, pool));
    clients.back()->start();
  }

  simulator.run_until(sim::SimTime::seconds(horizon));

  Result r;
  for (const auto& client : clients) {
    r.goodput_bps +=
        static_cast<double>(client->sender().bytes_acked()) * 8.0 / horizon;
    r.migrations += static_cast<double>(client->migrations());
    r.handshakes += static_cast<double>(client->sender().handshakes());
  }
  r.migrations /= n_clients;
  r.handshakes /= n_clients;
  r.events = simulator.events_executed();
  r.sim_seconds = horizon;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const int n_clients = static_cast<int>(flags.get_int("clients", 6));
  const double horizon = flags.get_double("horizon", 120.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  bench::BenchReport report("ablation_roaming_overhead", flags);
  flags.finish();

  util::print_banner("Ablation — roaming overhead under no attack "
                     "(bulk TCP clients over a 10 Mb/s bottleneck)");

  const Result baseline = run(5, 10.0, n_clients, horizon, seed);
  util::Table table({"Configuration", "Aggregate TCP goodput",
                     "vs no roaming", "Migrations/client"});
  auto row = [&](const std::string& name, const Result& r) {
    report.add_events(r.events, r.sim_seconds);
    report.add_counter("goodput_mbps." + name, r.goodput_bps / 1e6);
    table.add_row({name, util::Table::num(r.goodput_bps / 1e6, 2) + " Mb/s",
                   util::Table::percent(r.goodput_bps / baseline.goodput_bps),
                   util::Table::num(r.migrations, 1)});
  };
  row("k=5 of 5 (no roaming)", baseline);
  row("k=4 of 5, m=10 s", run(4, 10.0, n_clients, horizon, seed));
  row("k=3 of 5, m=10 s", run(3, 10.0, n_clients, horizon, seed));
  row("k=3 of 5, m=5 s", run(3, 5.0, n_clients, horizon, seed));
  row("k=3 of 5, m=3 s", run(3, 3.0, n_clients, horizon, seed));
  row("k=2 of 5, m=10 s", run(2, 10.0, n_clients, horizon, seed));
  table.print();

  std::printf("\nPaper: roaming costs ~4%%-10%% depending on load — the "
              "slow-start restarts\nof migrated connections; shorter epochs "
              "and fewer active servers cost more.\nThe overhead is "
              "avoidable by roaming only while attacks are detected.\n");
  report.write();
  return 0;
}
