// Ablation A1: basic vs progressive honeypot back-propagation against
// low-rate on-off attacks (the simulation counterpart of Sections 6/7.3 and
// Fig. 5).  Sweeps the burst length t_on on the string topology and
// measures capture time and capture rate for both schemes, alongside the
// analytical prediction, plus a follower-attack row.
#include <cstdio>

#include "analysis/capture_time.hpp"
#include "bench/bench_util.hpp"
#include "scenario/string_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);
  const int runs = static_cast<int>(flags.get_int("runs", 6));
  const int h = static_cast<int>(flags.get_int("h", 6));
  const double t_off = flags.get_double("t_off", 7.0);
  const auto t_ons = flags.get_double_list("t_on", {1.5, 3.0, 6.0, 12.0, 25.0});
  bench::BenchReport report("ablation_progressive", flags);
  flags.finish();

  util::ThreadPool pool;

  scenario::StringExperimentConfig base;
  base.m = 10.0;
  base.p = 0.4;
  base.h = h;
  base.tau = 0.5;
  base.attacker_rate_bps = 0.1e6;  // 12.5 packets/s — low-rate attacker
  base.horizon_seconds = 3000.0;

  util::print_banner("Ablation — basic vs progressive against on-off attacks "
                     "(string topology, h=" + std::to_string(h) +
                     ", t_off=" + util::Table::num(t_off, 0) + " s)");

  util::Table table({"t_on (s)", "basic: captured", "basic: time (s)",
                     "progressive: captured", "progressive: time (s)",
                     "Eq. prediction (s)"});

  auto run = [&](scenario::StringExperimentConfig config) {
    return scenario::run_string_replicated(config, runs, 7, &pool);
  };

  for (const double t_on : t_ons) {
    auto config = base;
    config.onoff_t_on = t_on;
    config.onoff_t_off = t_off;

    config.progressive = false;
    const auto basic = run(config);
    config.progressive = true;
    const auto progressive = run(config);
    report.add_summary(basic);
    report.add_summary(progressive);
    report.add_counter("captured.basic.t_on=" + util::Table::num(t_on, 1),
                       static_cast<double>(basic.captured));
    report.add_counter("captured.progressive.t_on=" + util::Table::num(t_on, 1),
                       static_cast<double>(progressive.captured));

    analysis::Params params;
    params.m = base.m;
    params.p = base.p;
    params.h = base.h;
    params.r = base.attacker_rate_bps / 8000.0;
    params.tau = base.tau;
    const auto predicted = analysis::progressive_onoff(params, t_on, t_off);

    auto frac = [&](const scenario::StringSummary& s) {
      return util::Table::num(static_cast<long long>(s.captured)) + "/" +
             util::Table::num(static_cast<long long>(s.runs));
    };
    auto time = [&](const scenario::StringSummary& s) {
      return s.captured > 0 ? util::Table::num(s.capture_time.mean(), 0) : "-";
    };
    table.add_row({util::Table::num(t_on, 1), frac(basic), time(basic),
                   frac(progressive), time(progressive),
                   util::Table::num(predicted.seconds, 0) +
                       (predicted.valid ? "" : " (cond!)")});
  }
  table.print();

  // Follower attack (Section 7.3): the attacker goes quiet d_follow seconds
  // into each honeypot epoch.
  util::print_banner("Follower attack (d_follow sweep, progressive scheme)");
  util::Table follower_table({"d_follow (s)", "captured", "time (s)",
                              "Eq. prediction (s)"});
  for (const double d : {1.0, 2.0, 4.0}) {
    auto config = base;
    config.progressive = true;
    config.follower_delay = d;
    const auto summary = run(config);
    report.add_summary(summary);
    report.add_counter("captured.follower.d=" + util::Table::num(d, 1),
                       static_cast<double>(summary.captured));
    analysis::Params params;
    params.m = base.m;
    params.p = base.p;
    params.h = base.h;
    params.r = base.attacker_rate_bps / 8000.0;
    params.tau = base.tau;
    const auto predicted = analysis::progressive_follower(params, d);
    follower_table.add_row(
        {util::Table::num(d, 1),
         util::Table::num(static_cast<long long>(summary.captured)) + "/" +
             util::Table::num(static_cast<long long>(summary.runs)),
         summary.captured > 0 ? util::Table::num(summary.capture_time.mean(), 0)
                              : "-",
         util::Table::num(predicted.seconds, 0) +
             (predicted.valid ? "" : " (cond!)")});
  }
  follower_table.print();

  std::printf("\nPaper shape: with short bursts the basic scheme stalls "
              "(sessions restart from\nscratch every epoch) while the "
              "progressive scheme keeps converging via the\nintermediate-AS "
              "list; slower followers are captured faster.\n");
  report.write();
  return 0;
}
