// Quickstart: build the paper's scenario in a few lines — a tree topology
// with five roaming servers, legitimate clients, spoofing attackers — run
// honeypot back-propagation, and print what happened.
//
//   ./build/examples/quickstart [--attackers=10] [--seed=7]
#include <cstdio>

#include "scenario/tree_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hbp::util::Flags flags(argc, argv);
  const auto attackers = flags.get_int("attackers", 10);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto leaves = flags.get_int("leaves", 200);
  flags.finish();

  hbp::scenario::TreeExperimentConfig config;
  config.scheme = hbp::scenario::Scheme::kHbp;
  config.tree.leaf_count = static_cast<std::size_t>(leaves);
  config.n_clients = 45;
  config.n_attackers = static_cast<int>(attackers);
  config.attacker_rate_bps = 1.0e6;
  config.sim_seconds = 100.0;

  std::printf("Running honeypot back-propagation against %d spoofing "
              "attackers (seed %llu)...\n",
              config.n_attackers, static_cast<unsigned long long>(seed));

  const auto result = hbp::scenario::run_tree_experiment(config, seed);

  std::printf("\nSimulated %llu events.\n",
              static_cast<unsigned long long>(result.events_executed));
  std::printf("Client throughput before attack : %5.1f%% of bottleneck\n",
              result.baseline_throughput * 100.0);
  std::printf("Client throughput during attack : %5.1f%% of bottleneck\n",
              result.mean_client_throughput * 100.0);
  std::printf("Attackers captured              : %zu / %zu\n", result.captured,
              result.attackers);
  std::printf("False captures (innocent hosts) : %zu\n", result.false_captures);
  if (result.mean_capture_delay >= 0) {
    std::printf("Capture delay (mean / max)      : %.1f s / %.1f s\n",
                result.mean_capture_delay, result.max_capture_delay);
  }
  std::printf("Control messages                : %llu\n",
              static_cast<unsigned long long>(result.control_messages));

  hbp::util::print_banner("throughput timeline (1 s bins)");
  for (const auto& point : result.timeline) {
    if (static_cast<int>(point.t_seconds) % 5 != 0) continue;
    std::printf("  t=%5.0fs  %5.1f%%  |", point.t_seconds,
                point.fraction * 100.0);
    const int bars = static_cast<int>(point.fraction * 50.0);
    for (int i = 0; i < bars; ++i) std::putchar('#');
    std::putchar('\n');
  }
  return 0;
}
