// The Section 3 damage model on real TCP flows: bulk downloads from
// servers behind the bottleneck to clients in the tree.  The spoofing
// attack congests the client->server direction, so the downloads' ACKs die
// — "if TCP ACK packets from clients to servers get dropped due to the
// attack, the throughput of TCP flows is degraded" — even though the data
// direction has spare capacity.
//
//   ./build/examples/tcp_download [--downloads=3] [--attackers=25]
#include <cstdio>

#include "scenario/tree_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hbp::util::Flags flags(argc, argv);
  const auto downloads = static_cast<int>(flags.get_int("downloads", 3));
  const auto attackers = static_cast<int>(flags.get_int("attackers", 25));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 4));
  flags.finish();

  hbp::scenario::TreeExperimentConfig config;
  config.tree.leaf_count = 300;
  config.n_clients = 75;
  config.n_attackers = attackers;
  config.tcp_downloads = downloads;
  // Long pre-attack phase so the flows are in steady state (RTT across the
  // tree is ~300 ms; slow start needs a few seconds).
  config.sim_seconds = 150.0;
  config.attack_start = 30.0;
  config.attack_end = 140.0;

  std::printf("%d bulk TCP downloads (server -> client) sharing the "
              "bottleneck's reverse\ndirection with the roaming pool; %d "
              "spoofing attackers flood the forward\ndirection from t=%.0f s "
              "to t=%.0f s.\n\n",
              downloads, attackers, config.attack_start, config.attack_end);

  hbp::util::Table table({"Defense", "TCP goodput before attack",
                          "TCP goodput during attack", "Retained"});
  for (const auto scheme :
       {hbp::scenario::Scheme::kNoDefense, hbp::scenario::Scheme::kPushback,
        hbp::scenario::Scheme::kHbp}) {
    config.scheme = scheme;
    const auto r = hbp::scenario::run_tree_experiment(config, seed);
    table.add_row(
        {hbp::scenario::to_string(scheme),
         hbp::util::Table::num(r.tcp_goodput_before / 1e6, 2) + " Mb/s",
         hbp::util::Table::num(r.tcp_goodput_during / 1e6, 2) + " Mb/s",
         hbp::util::Table::percent(
             r.tcp_goodput_before > 0
                 ? r.tcp_goodput_during / r.tcp_goodput_before
                 : 0.0)});
  }
  table.print();

  std::printf("\nThe downloads' data direction is never congested — the "
              "collapse comes\nentirely from ACK loss on the attacked "
              "direction, and honeypot\nback-propagation restores it by "
              "cutting the attackers off.\n");
  return 0;
}
