// Incremental deployment (Section 5.3): what an ISP gains by deploying an
// HSM, and how the scheme bridges non-deploying gaps by piggybacking on
// routing announcements.
//
//   ./build/examples/partial_deployment [--fraction=0.5]
#include <cstdio>

#include "scenario/tree_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hbp::util::Flags flags(argc, argv);
  const double fraction = flags.get_double("fraction", 0.5);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
  flags.finish();

  hbp::scenario::TreeExperimentConfig config;
  config.scheme = hbp::scenario::Scheme::kHbp;
  config.tree.leaf_count = 300;
  config.n_clients = 75;
  config.n_attackers = 25;

  std::printf("Spoofing DDoS against a roaming server pool; honeypot "
              "back-propagation\ndeployed in a fraction of the autonomous "
              "systems.\n\n");

  hbp::util::Table table({"Deployment", "Attackers captured",
                          "Client throughput under attack", "False captures"});
  for (const double f : {1.0, fraction}) {
    config.hbp_deploy_fraction = f;
    const auto r = hbp::scenario::run_tree_experiment(config, seed);
    table.add_row(
        {hbp::util::Table::percent(f, 0) + " of ASs",
         hbp::util::Table::num(static_cast<long long>(r.captured)) + "/" +
             hbp::util::Table::num(static_cast<long long>(r.attackers)),
         hbp::util::Table::percent(r.mean_client_throughput),
         hbp::util::Table::num(static_cast<long long>(r.false_captures))});
  }
  table.print();

  std::printf(
      "\nDeployment gaps are bridged by broadcasting honeypot requests over\n"
      "routing announcements until a deploying AS resumes normal propagation\n"
      "(Section 5.3).  Captures degrade gracefully with coverage, and the\n"
      "scheme never cuts off an innocent host regardless of deployment --\n"
      "the attack signature (traffic to a honeypot) stays exact.\n");
  return 0;
}
