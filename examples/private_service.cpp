// A subscription-based private service under a spoofing DDoS attack — the
// paper's motivating scenario (Section 3).  Runs the same attack against
// all three defenses and prints the comparison.
//
//   ./build/examples/private_service [--attackers=25] [--rate_mbps=1.0]
#include <cstdio>

#include "scenario/tree_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hbp::util::Flags flags(argc, argv);
  const auto attackers = static_cast<int>(flags.get_int("attackers", 25));
  const double rate_mbps = flags.get_double("rate_mbps", 1.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto leaves = flags.get_int("leaves", 300);
  flags.finish();

  hbp::scenario::TreeExperimentConfig config;
  config.tree.leaf_count = static_cast<std::size_t>(leaves);
  config.n_clients = 75;
  config.n_attackers = attackers;
  config.attacker_rate_bps = rate_mbps * 1e6;

  std::printf("Private service: 5 servers, %d subscribed clients (%.1f Mb/s "
              "legitimate load), %d spoofing attackers at %.1f Mb/s each.\n",
              config.n_clients,
              config.legit_load * config.tree.bottleneck_bps / 1e6, attackers,
              rate_mbps);

  hbp::util::Table table({"Defense", "Throughput during attack", "Captured",
                          "False captures", "Mean capture delay"});
  for (const auto scheme :
       {hbp::scenario::Scheme::kNoDefense, hbp::scenario::Scheme::kPushback,
        hbp::scenario::Scheme::kHbp}) {
    config.scheme = scheme;
    const auto r = hbp::scenario::run_tree_experiment(config, seed);
    table.add_row(
        {hbp::scenario::to_string(scheme),
         hbp::util::Table::percent(r.mean_client_throughput),
         hbp::util::Table::num(static_cast<long long>(r.captured)) + "/" +
             hbp::util::Table::num(static_cast<long long>(r.attackers)),
         hbp::util::Table::num(static_cast<long long>(r.false_captures)),
         r.mean_capture_delay >= 0
             ? hbp::util::Table::num(r.mean_capture_delay, 1) + " s"
             : "-"});
  }
  std::printf("\n");
  table.print();
  std::printf("\nHoneypot back-propagation blocks attack hosts at their access"
              " switches;\nPushback rate-limits the aggregate and collaterally"
              " damages legitimate flows.\n");
  return 0;
}
