// Low-rate on-off attackers (Section 6): short bursts starve conventional
// traceback of packets.  This example pits the basic scheme against
// progressive back-propagation on a string topology, then shows the
// intermediate-AS list converging hop by hop.
//
//   ./build/examples/low_rate_onoff [--t_on=2] [--t_off=8] [--h=8]
#include <cstdio>

#include "analysis/capture_time.hpp"
#include "scenario/string_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hbp::util::Flags flags(argc, argv);
  hbp::scenario::StringExperimentConfig config;
  config.m = 10.0;
  config.p = 0.4;
  config.h = static_cast<int>(flags.get_int("h", 8));
  config.tau = 0.5;
  config.attacker_rate_bps = 0.1e6;
  config.onoff_t_on = flags.get_double("t_on", 2.0);
  config.onoff_t_off = flags.get_double("t_off", 8.0);
  config.horizon_seconds = 3000.0;
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  flags.finish();

  std::printf("Low-rate on-off attacker: bursts of %.1f s every %.1f s at "
              "12.5 packets/s,\n%d back-propagation hops from the server.\n\n",
              *config.onoff_t_on, *config.onoff_t_on + config.onoff_t_off,
              config.h);

  hbp::util::Table table(
      {"Scheme", "Captured?", "Capture time", "Control messages",
       "Intermediate reports"});
  for (const bool progressive : {false, true}) {
    config.progressive = progressive;
    const auto r = hbp::scenario::run_string_experiment(config, seed);
    table.add_row(
        {progressive ? "progressive back-propagation" : "basic back-propagation",
         r.captured ? "yes" : "no (gave up after 3000 s)",
         r.captured ? hbp::util::Table::num(r.capture_seconds, 1) + " s" : "-",
         hbp::util::Table::num(static_cast<long long>(r.control_messages)),
         hbp::util::Table::num(static_cast<long long>(r.reports))});
  }
  table.print();

  hbp::analysis::Params params;
  params.m = config.m;
  params.p = config.p;
  params.h = config.h;
  params.r = 12.5;
  params.tau = config.tau;
  const auto predicted = hbp::analysis::progressive_onoff(
      params, *config.onoff_t_on, config.onoff_t_off);
  std::printf("\nSection 7.3 prediction for the progressive scheme: %.0f s"
              "%s.\nThe attacker-optimal burst (Eq. 8) would be t_on = %.2f s"
              " -> E[CT] = %.0f s (Eq. 9).\n",
              predicted.seconds, predicted.valid ? "" : " (outside validity)",
              hbp::analysis::best_attack_t_on(params),
              hbp::analysis::progressive_onoff_special(params,
                                                       config.onoff_t_off));
  return 0;
}
