// General experiment driver: every knob of the Section-8 scenario exposed
// as a flag, with an optional CSV timeline for plotting.
//
//   ./build/examples/simulate --scheme=hbp --attackers=50 --rate_mbps=0.5
//       --placement=close --leaves=500 --csv=timeline.csv
#include <cstdio>
#include <string>

#include "scenario/tree_experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hbp;
  util::Flags flags(argc, argv);

  scenario::TreeExperimentConfig config;
  const std::string scheme = flags.get_string("scheme", "hbp");
  if (scheme == "hbp") {
    config.scheme = scenario::Scheme::kHbp;
  } else if (scheme == "pushback") {
    config.scheme = scenario::Scheme::kPushback;
  } else if (scheme == "none") {
    config.scheme = scenario::Scheme::kNoDefense;
  } else {
    std::fprintf(stderr, "unknown --scheme=%s (hbp|pushback|none)\n",
                 scheme.c_str());
    return 2;
  }
  const std::string placement = flags.get_string("placement", "even");
  if (placement == "close") {
    config.placement = scenario::AttackerPlacement::kClose;
  } else if (placement == "far") {
    config.placement = scenario::AttackerPlacement::kFar;
  } else if (placement == "even") {
    config.placement = scenario::AttackerPlacement::kEven;
  } else {
    std::fprintf(stderr, "unknown --placement=%s (close|far|even)\n",
                 placement.c_str());
    return 2;
  }

  config.tree.leaf_count =
      static_cast<std::size_t>(flags.get_int("leaves", 300));
  config.n_clients = static_cast<int>(flags.get_int("clients", 75));
  config.legit_load = flags.get_double("legit_load", 0.9);
  config.n_attackers = static_cast<int>(flags.get_int("attackers", 25));
  config.attacker_rate_bps = flags.get_double("rate_mbps", 1.0) * 1e6;
  config.sim_seconds = flags.get_double("duration", 100.0);
  config.attack_start = flags.get_double("attack_start", 5.0);
  config.attack_end =
      flags.get_double("attack_end", config.sim_seconds - 5.0);
  config.epoch_seconds = flags.get_double("epoch", 10.0);
  config.k_active = static_cast<int>(flags.get_int("k", 3));
  if (flags.has("t_on")) {
    config.onoff_t_on = flags.get_double("t_on", 2.0);
    config.onoff_t_off = flags.get_double("t_off", 8.0);
  }
  if (flags.has("follower")) {
    config.follower_delay = flags.get_double("follower", 1.0);
  }
  config.hbp_deploy_fraction = flags.get_double("deploy", 1.0);
  config.hbp.progressive = flags.get_bool("progressive", true);
  config.hbp.activation_threshold =
      static_cast<std::uint64_t>(flags.get_int("threshold", 1));
  config.pb_weighted_by_hosts = flags.get_bool("level_k", false);
  config.tcp_downloads = static_cast<int>(flags.get_int("tcp_downloads", 0));
  config.benign_probe_rate = flags.get_double("probe_rate", 0.0);
  const std::string scheduler = flags.get_string("scheduler", "heap");
  if (scheduler == "calendar") {
    config.scheduler = sim::SchedulerKind::kCalendar;
  } else if (scheduler != "heap") {
    std::fprintf(stderr, "unknown --scheduler '%s' (heap|calendar)\n",
                 scheduler.c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string csv = flags.get_string("csv", "");
  // Causal tracing: --trace=run.json (Perfetto / chrome://tracing) or
  // --trace=run.csv; --trace_flight sets the flight-recorder depth.
  config.trace_path = flags.get_string("trace", "");
  config.trace_flight =
      static_cast<std::size_t>(flags.get_int("trace_flight", 256));
  flags.finish();

  const auto result = scenario::run_tree_experiment(config, seed);

  util::print_banner("result — " + scenario::to_string(config.scheme));
  util::Table table({"Metric", "Value"});
  table.add_row({"client throughput (baseline)",
                 util::Table::percent(result.baseline_throughput)});
  table.add_row({"client throughput (attack window)",
                 util::Table::percent(result.mean_client_throughput)});
  table.add_row({"attackers captured",
                 util::Table::num(static_cast<long long>(result.captured)) +
                     "/" +
                     util::Table::num(static_cast<long long>(result.attackers))});
  table.add_row({"false captures",
                 util::Table::num(static_cast<long long>(result.false_captures))});
  if (result.mean_capture_delay >= 0) {
    table.add_row({"capture delay mean/max",
                   util::Table::num(result.mean_capture_delay, 1) + " s / " +
                       util::Table::num(result.max_capture_delay, 1) + " s"});
  }
  if (config.tcp_downloads > 0) {
    table.add_row({"tcp goodput before/during",
                   util::Table::num(result.tcp_goodput_before / 1e6, 2) +
                       " / " +
                       util::Table::num(result.tcp_goodput_during / 1e6, 2) +
                       " Mb/s"});
  }
  table.add_row({"control messages",
                 util::Table::num(static_cast<long long>(result.control_messages))});
  table.add_row({"events executed",
                 util::Table::num(static_cast<long long>(result.events_executed))});
  table.print();

  if (!config.trace_path.empty()) {
    std::printf("trace written to %s\n", config.trace_path.c_str());
  }

  if (!csv.empty()) {
    std::FILE* f = std::fopen(csv.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", csv.c_str());
      return 1;
    }
    std::fprintf(f, "t_seconds,throughput_fraction\n");
    for (const auto& p : result.timeline) {
      std::fprintf(f, "%.1f,%.4f\n", p.t_seconds, p.fraction);
    }
    std::fclose(f);
    std::printf("\ntimeline written to %s\n", csv.c_str());
  }
  return 0;
}
