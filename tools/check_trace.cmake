# Validates a Chrome trace-event / Perfetto JSON export (from
# `--trace=run.json`): the document must parse as JSON, hold a non-empty
# traceEvents array, and every entry must carry the fields Perfetto needs
# (ph, pid, tid; name+ts for instant events).  Pure CMake (string(JSON)) so
# CI can gate on it with no extra deps.
#
#   cmake -DTRACE=run.json -P tools/check_trace.cmake
cmake_minimum_required(VERSION 3.20)

if(NOT DEFINED TRACE)
  message(FATAL_ERROR "usage: cmake -DTRACE=<trace.json> -P check_trace.cmake")
endif()
if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR "no such file: ${TRACE}")
endif()

file(READ ${TRACE} doc)
string(JSON n_events ERROR_VARIABLE err LENGTH "${doc}" traceEvents)
if(NOT err STREQUAL "NOTFOUND")
  message(FATAL_ERROR "${TRACE}: not a trace-event document: ${err}")
endif()
if(n_events EQUAL 0)
  message(FATAL_ERROR "${TRACE}: traceEvents is empty")
endif()

# Spot-check a handful of entries: metadata events ("ph":"M") name a
# thread; instant events ("ph":"i") must have a verb name and a timestamp.
# Every string(JSON GET) re-parses the whole document, so the sample count
# is bounded (~16) to keep validation fast on multi-MB traces.
math(EXPR stride "${n_events} / 15 + 1")
set(n_instant 0)
math(EXPR last "${n_events} - 1")
foreach(i RANGE 0 ${last} ${stride})
  string(JSON entry GET "${doc}" traceEvents ${i})
  string(JSON ph GET "${entry}" ph)
  string(JSON pid GET "${entry}" pid)
  string(JSON tid GET "${entry}" tid)
  if(ph STREQUAL "i")
    string(JSON name GET "${entry}" name)
    string(JSON ts GET "${entry}" ts)
    if(name STREQUAL "" OR ts STREQUAL "")
      message(FATAL_ERROR "${TRACE}: traceEvents[${i}] lacks name/ts")
    endif()
    math(EXPR n_instant "${n_instant} + 1")
  elseif(NOT ph STREQUAL "M")
    message(FATAL_ERROR "${TRACE}: traceEvents[${i}] has unexpected ph '${ph}'")
  endif()
endforeach()
if(n_instant EQUAL 0)
  message(FATAL_ERROR "${TRACE}: no instant events sampled")
endif()

message(STATUS
  "${TRACE}: OK (${n_events} traceEvents, sampled every ${stride})")
