# Compares two hbp-bench/1 records (BENCH_*.json) and prints the headline
# perf deltas: wall time, events/sec, wall-per-sim-second, peak RSS, plus
# every deterministic counter, flagging values that moved.  Pure CMake
# (string(JSON)) so it needs nothing beyond the toolchain the build already
# requires.
#
#   cmake -DBENCH_A=old.json -DBENCH_B=new.json -P tools/bench_diff.cmake
#
# (or use the `tools/bench_diff A B` wrapper).
cmake_minimum_required(VERSION 3.20)

if(NOT DEFINED BENCH_A OR NOT DEFINED BENCH_B)
  message(FATAL_ERROR
    "usage: cmake -DBENCH_A=<old.json> -DBENCH_B=<new.json> -P bench_diff.cmake")
endif()

foreach(side A B)
  if(NOT EXISTS ${BENCH_${side}})
    message(FATAL_ERROR "no such file: ${BENCH_${side}}")
  endif()
  file(READ ${BENCH_${side}} doc_${side})
  string(JSON schema_${side} GET "${doc_${side}}" schema)
  if(NOT schema_${side} STREQUAL "hbp-bench/1")
    message(FATAL_ERROR
      "${BENCH_${side}}: schema is '${schema_${side}}', expected 'hbp-bench/1'")
  endif()
  string(JSON name_${side} GET "${doc_${side}}" name)
endforeach()

if(NOT name_A STREQUAL name_B)
  message(WARNING "comparing different benches: '${name_A}' vs '${name_B}'")
endif()

# Converts a plain non-negative decimal ("12.5", "3") to micro-units in
# `out` (integer, so CMake's integer-only math() can take ratios), or "" if
# the value doesn't parse (exponent notation, negative, non-numeric).
function(to_micro value out)
  if(NOT value MATCHES "^[0-9]+(\\.[0-9]*)?$")
    set(${out} "" PARENT_SCOPE)
    return()
  endif()
  string(REPLACE "." ";" parts "${value}")
  list(GET parts 0 int_part)
  list(LENGTH parts n)
  if(n GREATER 1)
    list(GET parts 1 frac_part)
  else()
    set(frac_part "")
  endif()
  string(SUBSTRING "${frac_part}000000" 0 6 frac_part)
  math(EXPR micro "${int_part} * 1000000 + ${frac_part}")
  set(${out} ${micro} PARENT_SCOPE)
endfunction()

# Prints "  key: a -> b  (+x.xx%)"; the percentage is omitted when either
# value doesn't parse as a plain decimal or a is zero.
function(print_delta key a b)
  set(suffix "")
  to_micro("${a}" a_micro)
  to_micro("${b}" b_micro)
  if(NOT a_micro STREQUAL "" AND NOT b_micro STREQUAL "" AND a_micro GREATER 0)
    math(EXPR delta_bp "(${b_micro} - ${a_micro}) * 10000 / ${a_micro}")
    math(EXPR whole "${delta_bp} / 100")
    math(EXPR cents "${delta_bp} % 100")
    if(cents LESS 0)
      math(EXPR cents "0 - ${cents}")
    endif()
    if(delta_bp GREATER_EQUAL 0)
      set(sign "+")
    elseif(whole EQUAL 0)
      set(sign "-")  # e.g. -0.42%: whole is 0, sign lost without this
    else()
      set(sign "")
    endif()
    if(cents LESS 10)
      set(cents "0${cents}")
    endif()
    set(suffix "  (${sign}${whole}.${cents}%)")
  endif()
  message("  ${key}: ${a} -> ${b}${suffix}")
endfunction()

message("bench_diff: ${name_A}")
message("  A: ${BENCH_A}")
message("  B: ${BENCH_B}")
message("")
message("perf:")
foreach(key wall_seconds events_executed events_per_sec wall_per_sim_second
        peak_rss_bytes peak_event_queue_depth)
  string(JSON va ERROR_VARIABLE ea GET "${doc_A}" perf ${key})
  string(JSON vb ERROR_VARIABLE eb GET "${doc_B}" perf ${key})
  if(ea STREQUAL "NOTFOUND" AND eb STREQUAL "NOTFOUND")
    print_delta(${key} "${va}" "${vb}")
  endif()
endforeach()

# Deterministic counters should only move when the code or config changed;
# flag any drift loudly.
string(JSON counters_a ERROR_VARIABLE err_a GET "${doc_A}" counters)
string(JSON counters_b ERROR_VARIABLE err_b GET "${doc_B}" counters)
if(err_a STREQUAL "NOTFOUND" AND err_b STREQUAL "NOTFOUND")
  message("")
  message("counters:")
  set(moved 0)
  string(JSON n LENGTH "${counters_a}")
  if(n GREATER 0)
    math(EXPR last "${n} - 1")
    foreach(i RANGE ${last})
      string(JSON key MEMBER "${counters_a}" ${i})
      string(JSON va GET "${counters_a}" ${key})
      string(JSON vb ERROR_VARIABLE eb GET "${counters_b}" ${key})
      if(NOT eb STREQUAL "NOTFOUND")
        set(vb "<missing>")
      endif()
      if(va STREQUAL vb)
        message("  ${key}: ${va}")
      else()
        message("  ${key}: ${va} -> ${vb}  [MOVED]")
        set(moved 1)
      endif()
    endforeach()
  endif()
  if(moved)
    message("")
    message(WARNING "deterministic counters moved between the two records")
  endif()
endif()
