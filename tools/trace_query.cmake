# Filters an exported causal trace (the long-format CSV written by
# `--trace=run.csv`: t_ns,verb,node,node_name,id,cause,a,b) by node id,
# trace id, and/or verb, prints the matching events, and summarises the
# back-propagation wave they form (first/last time, verbs seen, control
# milestones in order).  Pure CMake (file(STRINGS) + string ops) so it needs
# nothing beyond the toolchain the build already requires.
#
#   cmake -DTRACE=run.csv [-DNODE=<id>] [-DID=<uid>] [-DVERB=<verb>]
#         [-DLIMIT=<n>] -P tools/trace_query.cmake
#
# -DID matches the event's id OR cause column, so querying the uid of the
# packet that triggered a wave pulls every control event it caused.
# (or use the `tools/trace_query run.csv [node] [id] [verb]` wrapper).
cmake_minimum_required(VERSION 3.20)

if(NOT DEFINED TRACE)
  message(FATAL_ERROR
    "usage: cmake -DTRACE=<trace.csv> [-DNODE=<id>] [-DID=<uid>] "
    "[-DVERB=<verb>] [-DLIMIT=<n>] -P trace_query.cmake")
endif()
if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR "no such file: ${TRACE}")
endif()
if(NOT DEFINED LIMIT)
  set(LIMIT 40)
endif()

# Formats integer nanoseconds as zero-padded seconds ("0.003000000").
function(fmt_seconds ns out)
  string(LENGTH "${ns}" len)
  if(len LESS 10)
    math(EXPR need "10 - ${len}")
    string(REPEAT "0" ${need} zeros)
    set(ns "${zeros}${ns}")
    set(len 10)
  endif()
  math(EXPR cut "${len} - 9")
  string(SUBSTRING "${ns}" 0 ${cut} whole)
  string(SUBSTRING "${ns}" ${cut} 9 frac)
  set(${out} "${whole}.${frac}" PARENT_SCOPE)
endfunction()

# Control-plane verbs that mark back-propagation wave milestones, in the
# order the protocol emits them (used only for labelling the summary).
set(wave_verbs
  window_start honeypot_hit hbp_activate honeypot_request direct_request
  session_open divert upstream intra_trace ingress_reached local_request
  intermediate_report capture honeypot_cancel session_close window_end
  pushback_request pushback_limit pushback_cancel)

file(STRINGS ${TRACE} lines)
list(POP_FRONT lines header)
if(NOT header STREQUAL "t_ns,verb,node,node_name,id,cause,a,b")
  message(FATAL_ERROR
    "${TRACE}: not a trace CSV (header is '${header}'); export one with "
    "--trace=run.csv")
endif()

set(matched 0)
set(shown 0)
set(first_t "")
set(last_t "")
set(seen_verbs "")
set(seen_nodes "")
set(milestones "")

foreach(line IN LISTS lines)
  string(REPLACE "," ";" f "${line}")
  list(LENGTH f n)
  if(NOT n EQUAL 8)
    continue()
  endif()
  list(GET f 0 t_ns)
  list(GET f 1 verb)
  list(GET f 2 node)
  list(GET f 3 node_name)
  list(GET f 4 id)
  list(GET f 5 cause)
  list(GET f 6 a)
  list(GET f 7 b)

  if(DEFINED NODE AND NOT node STREQUAL "${NODE}")
    continue()
  endif()
  if(DEFINED VERB AND NOT verb STREQUAL "${VERB}")
    continue()
  endif()
  if(DEFINED ID AND NOT id STREQUAL "${ID}" AND NOT cause STREQUAL "${ID}")
    continue()
  endif()

  math(EXPR matched "${matched} + 1")
  if(first_t STREQUAL "")
    set(first_t ${t_ns})
  endif()
  set(last_t ${t_ns})
  if(NOT verb IN_LIST seen_verbs)
    list(APPEND seen_verbs ${verb})
  endif()
  if(NOT node IN_LIST seen_nodes)
    list(APPEND seen_nodes ${node})
  endif()

  fmt_seconds(${t_ns} t_sec)
  set(where "node=${node}")
  if(NOT node_name STREQUAL "")
    set(where "node=${node}(${node_name})")
  endif()
  if(verb IN_LIST wave_verbs)
    list(APPEND milestones
      "  t=${t_sec}s ${verb} ${where} id=${id} cause=${cause} a=${a} b=${b}")
  endif()
  if(shown LESS LIMIT)
    math(EXPR shown "${shown} + 1")
    message(
      "  t=${t_sec}s ${verb} ${where} id=${id} cause=${cause} a=${a} b=${b}")
  endif()
endforeach()

if(matched EQUAL 0)
  message(FATAL_ERROR "no events matched the filter")
endif()
if(shown LESS matched)
  math(EXPR hidden "${matched} - ${shown}")
  message("  ... ${hidden} more (raise -DLIMIT to show them)")
endif()

message("")
message("summary:")
fmt_seconds(${first_t} first_sec)
fmt_seconds(${last_t} last_sec)
list(LENGTH seen_nodes node_count)
list(JOIN seen_verbs ", " verb_list)
message("  ${matched} events over t=[${first_sec}s, ${last_sec}s]")
message("  nodes touched: ${node_count}")
message("  verbs seen: ${verb_list}")

list(LENGTH milestones n_milestones)
if(n_milestones GREATER 0)
  message("")
  message("back-propagation wave milestones:")
  set(wave_shown 0)
  foreach(m IN LISTS milestones)
    if(wave_shown LESS 30)
      message("${m}")
      math(EXPR wave_shown "${wave_shown} + 1")
    endif()
  endforeach()
  if(n_milestones GREATER 30)
    math(EXPR hidden "${n_milestones} - 30")
    message("  ... ${hidden} more")
  endif()
endif()
